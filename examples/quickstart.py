#!/usr/bin/env python
"""Quickstart: smoothed online resource allocation in 60 lines.

Builds a small two-tier cloud network, feeds it a diurnal workload,
and compares three controllers:

* greedy one-shot optimization (ignores reconfiguration),
* the paper's regularized online algorithm (no prediction),
* the offline optimum (full hindsight — the lower bound).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cloud,
    CloudNetwork,
    GreedyOneShot,
    Instance,
    SubproblemConfig,
    RegularizedOnline,
    SLAEdge,
    check_trajectory,
    evaluate_cost,
    solve_offline,
    theorem1_ratio,
)

# ---------------------------------------------------------------------------
# 1. Topology: 3 core clouds, 5 edge clouds, each edge cloud may use
#    its 2 SLA-feasible core clouds.
# ---------------------------------------------------------------------------
tier2 = [Cloud(f"core-{i}", capacity=12.0, recon_price=40.0) for i in range(3)]
tier1 = [Cloud(f"edge-{j}", capacity=np.inf) for j in range(5)]
edges = [
    SLAEdge(tier2=(j + m) % 3, tier1=j, capacity=8.0, recon_price=25.0)
    for j in range(5)
    for m in range(2)
]
network = CloudNetwork(tier2, tier1, edges)

# ---------------------------------------------------------------------------
# 2. Inputs: 3 days of hourly diurnal demand and mildly volatile prices.
# ---------------------------------------------------------------------------
T = 72
rng = np.random.default_rng(7)
hours = np.arange(T)
diurnal = 1.0 + 0.8 * np.cos(2 * np.pi * (hours - 14) / 24)
workload = np.clip(diurnal[:, None] * (1 + 0.1 * rng.random((T, 5))), 0.05, None)
tier2_price = 1.0 + 0.3 * rng.random((T, 3))          # e.g. electricity
link_price = np.full((T, len(edges)), 0.25)           # e.g. bandwidth
instance = Instance(network, workload, tier2_price, link_price)

# ---------------------------------------------------------------------------
# 3. Run the three controllers.
# ---------------------------------------------------------------------------
online = RegularizedOnline(SubproblemConfig(epsilon=1e-2))
trajectory = online.run(instance)
assert check_trajectory(instance, trajectory).ok

greedy = GreedyOneShot().run(instance)
offline = solve_offline(instance)

cost_online = evaluate_cost(instance, trajectory).total
cost_greedy = evaluate_cost(instance, greedy).total
cost_offline = offline.objective

print("Smoothed online resource allocation — quickstart")
print("-" * 52)
print(f"horizon                 : {T} hours")
print(f"network                 : {network}")
print(f"offline optimum         : {cost_offline:10.2f}")
print(f"regularized online      : {cost_online:10.2f}  "
      f"({cost_online / cost_offline:.3f}x offline)")
print(f"greedy one-shot         : {cost_greedy:10.2f}  "
      f"({cost_greedy / cost_offline:.3f}x offline)")
print(f"Theorem-1 worst case    : {theorem1_ratio(network, 1e-2):10.2f}x")
print()
print("The online algorithm follows demand on the way up and releases")
print("resources along an exponential-decay curve on the way down —")
print("hedging against the next demand spike without hindsight.")
