#!/usr/bin/env python
"""Spatio-temporal electricity arbitrage under reconfiguration costs.

Data centers' dominant operating expense is energy, and wholesale
prices differ across regional markets hour by hour (Table I).  A
*reconfiguration-oblivious* policy — the first category of related
work the paper criticizes — simply serves all demand from whichever
market is cheapest this hour.  That is optimal when switching is free
and disastrous when it is not.  The regularized online algorithm never
sees future prices either, yet adapts its churn to the switching
price: it chases when chasing is cheap and holds when it is not.

Run:  python examples/electricity_arbitrage.py
"""

import numpy as np

from repro import (
    Cloud,
    CloudNetwork,
    Instance,
    SubproblemConfig,
    RegularizedOnline,
    SLAEdge,
    Trajectory,
    evaluate_cost,
    solve_offline,
)
from repro.evaluation import format_table
from repro.pricing import ElectricityPriceModel

T = 96  # four days, hourly
DEMAND = 1.5  # steady per-edge demand: all dynamics come from prices

elec = ElectricityPriceModel()
by_name = {m.name: m for m in elec.markets}
locations = [by_name["CAISO"].location, by_name["PJM"].location]
prices = elec.series(locations, T, seed=20)


def build_instance(recon_weight: float) -> Instance:
    tier2 = [
        Cloud("west-caiso", 8.0, recon_weight * prices[:, 0].mean(), locations[0]),
        Cloud("east-pjm", 8.0, recon_weight * prices[:, 1].mean(), locations[1]),
    ]
    tier1 = [Cloud(f"edge-{j}", np.inf) for j in range(3)]
    edges = [SLAEdge(i, j, 6.0, 0.0) for j in range(3) for i in (0, 1)]
    net = CloudNetwork(tier2, tier1, edges)
    lam = np.full((T, 3), DEMAND)
    return Instance(net, lam, prices, np.zeros((T, len(edges))))


def price_chaser(inst: Instance) -> Trajectory:
    """Reconfiguration-oblivious: everything on this hour's cheapest market."""
    net = inst.network
    cheapest = np.argmin(inst.tier2_price, axis=1)  # (T,)
    s = np.zeros((T, net.n_edges))
    on_cheapest = net.edge_i[None, :] == cheapest[:, None]
    s[on_cheapest] = DEMAND
    return Trajectory(s.copy(), s.copy(), s.copy())


def churn(traj: Trajectory, net) -> float:
    X = traj.tier2_totals(net)
    return float(np.abs(np.diff(X, axis=0)).sum())


def main() -> None:
    rows = []
    for weight in (0.1, 1.0, 10.0, 100.0):
        inst = build_instance(weight)
        net = inst.network
        off = solve_offline(inst)
        chaser = price_chaser(inst)
        online = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
        rows.append(
            (
                f"{weight:g}",
                evaluate_cost(inst, chaser).total / off.objective,
                evaluate_cost(inst, online).total / off.objective,
                churn(chaser, net),
                churn(online, net),
            )
        )
    print("steady demand; all dynamics from hourly market prices\n")
    print(
        format_table(
            [
                "recon weight",
                "chaser / offline",
                "online / offline",
                "chaser churn",
                "online churn",
            ],
            rows,
        )
    )
    print()
    print("The price-chaser's churn is constant — it ignores switching")
    print("costs entirely, so its ratio blows up as they grow.  The")
    print("regularized online algorithm throttles its own churn as the")
    print("reconfiguration weight rises and stays near the offline optimum")
    print("at both extremes, without ever seeing a future price.")


if __name__ == "__main__":
    main()
