#!/usr/bin/env python
"""Fault-tolerant serving of a real hourly trace, end to end.

The serve loop (`repro.serve`) is the operational wrapper around the
engine: it decides every slot even when the primary solver stalls or
raises, checkpoints after each slot, and logs every transition to a
JSONL event stream.  This example tells the whole story on the bundled
24-hour diurnal trace:

1. serve the trace with aggressive fault injection — every slot is
   still served, through the primary/hold/greedy fallback chain;
2. kill the run halfway (simulated via ``max_slots``), resume it from
   the checkpoint, and verify the stitched trajectory is **bitwise
   identical** to the uninterrupted run's;
3. replay the event log into the report tables without re-running
   anything.

Run:  python examples/serve_trace.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SubproblemConfig, RegularizedOnline
from repro.evaluation.reporting import render_serve_events
from repro.serve import (
    EventLog,
    FaultInjector,
    ServeConfig,
    ServeLoop,
    TraceCSVSource,
    read_events,
)

TRACE = Path(__file__).parent / "data" / "hourly_24.csv"
EPS = SubproblemConfig(epsilon=1e-2)
# Stall 30% of slots and fail another 20% — deterministic per slot, so
# the resumed run below replays the exact same faults.
INJECT = FaultInjector(stall_prob=0.3, fail_prob=0.2, seed=7)
SMALL = dict(n_tier2=6, n_tier1=12, k=2)  # shrink the paper topology

workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
ckpt = workdir / "run.ckpt"
events_path = workdir / "run.jsonl"

# --- 1. the uninterrupted reference run ------------------------------
source = TraceCSVSource(TRACE, **SMALL)
with EventLog(events_path) as log:
    report = ServeLoop(
        RegularizedOnline(EPS),
        source,
        ServeConfig(injector=INJECT),
        log,
    ).run()
print("uninterrupted:", report.describe())
assert report.summary["unserved"] == 0

# --- 2. kill halfway, resume from the checkpoint ---------------------
kill_at = source.horizon // 2
ServeLoop(
    RegularizedOnline(EPS),
    TraceCSVSource(TRACE, **SMALL),
    ServeConfig(
        injector=INJECT,
        checkpoint_path=ckpt,
        checkpoint_every=1,  # a SIGKILL would leave exactly this file
        max_slots=kill_at,
    ),
).run()
resumed = ServeLoop.resume(
    RegularizedOnline(EPS),
    TraceCSVSource(TRACE, **SMALL),
    ckpt,
    config=ServeConfig(injector=INJECT),
).run()
print(f"killed at slot {kill_at}, resumed:", resumed.describe())
assert np.array_equal(resumed.trajectory.x, report.trajectory.x)
assert np.array_equal(resumed.trajectory.y, report.trajectory.y)
assert np.array_equal(resumed.trajectory.s, report.trajectory.s)
assert resumed.paths == report.paths
print("resume is bitwise identical to the uninterrupted run")

# --- 3. replay the event log -----------------------------------------
print()
print(render_serve_events(read_events(events_path)))
