#!/usr/bin/env python
"""Three-tier hierarchy: metro edge -> regional -> core (Section III-E).

Builds a 3-tier layered network in which workloads enter at metro edge
clouds, traverse a regional aggregation tier and are served at core
clouds.  Every regional/core node and every inter-tier link carries
allocation and reconfiguration costs; the N-tier regularized online
algorithm smooths all of them jointly.

Run:  python examples/ntier_hierarchy.py
"""

import numpy as np

from repro.core.competitive import ntier_ratio
from repro.model import Cloud
from repro.ntier import (
    LayeredNetwork,
    LayerLink,
    NTierConfig,
    NTierGreedy,
    NTierInstance,
    NTierRegularizedOnline,
    solve_ntier_offline,
)

# ---------------------------------------------------------------------------
# Topology: 6 metro edges, 4 regional clouds, 2 core clouds.
# ---------------------------------------------------------------------------
metros = [Cloud(f"metro-{j}", capacity=np.inf) for j in range(6)]
regional = [Cloud(f"regional-{u}", capacity=9.0, recon_price=50.0) for u in range(4)]
core = [Cloud(f"core-{u}", capacity=15.0, recon_price=80.0) for u in range(2)]

links = []
for j in range(6):  # each metro reaches 2 regional clouds
    for u in (j % 4, (j + 1) % 4):
        links.append(LayerLink(stage=1, lower=j, upper=u, capacity=7.0, recon_price=30.0))
for u in range(4):  # each regional cloud reaches both cores
    for v in range(2):
        links.append(LayerLink(stage=2, lower=u, upper=v, capacity=9.0, recon_price=30.0))

network = LayeredNetwork([metros, regional, core], links)
print(f"topology: {network}")

# ---------------------------------------------------------------------------
# Inputs: two days of demand with an overnight trough (the regime where
# smoothing matters) and heterogeneous node prices.
# ---------------------------------------------------------------------------
T = 48
rng = np.random.default_rng(3)
hours = np.arange(T)
shape = 1.0 + 0.9 * np.cos(2 * np.pi * (hours - 15) / 24)
workload = np.clip(shape[:, None] * (1 + 0.15 * rng.random((T, 6))), 0.05, None)
node_price = 0.06 * (1.0 + 0.4 * rng.random((T, network.n_upper_nodes)))
link_price = np.full((T, network.n_links), 0.02)
instance = NTierInstance(network, workload, node_price, link_price)

# ---------------------------------------------------------------------------
# Controllers.
# ---------------------------------------------------------------------------
online = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(instance)
greedy = NTierGreedy().run(instance)
offline = solve_ntier_offline(instance)

assert instance.check_feasible(online)
c_on, c_gr = instance.cost(online), instance.cost(greedy)

bound = ntier_ratio(
    [np.array([c.capacity for c in regional]), np.array([c.capacity for c in core])],
    [network.link_capacity[:12], network.link_capacity[12:]],
    epsilon=1e-2,
)

print(f"paths enumerated        : {network.n_paths}")
print(f"offline optimum         : {offline.objective:9.2f}")
print(f"3-tier regularized online: {c_on:8.2f}  ({c_on / offline.objective:.3f}x)")
print(f"3-tier greedy one-shot  : {c_gr:9.2f}  ({c_gr / offline.objective:.3f}x)")
print(f"reconstructed N-tier bound: {bound:.1f}x")
print()
print("All reconfiguration terms — regional nodes, core nodes, and both")
print("link stages — are regularized jointly; the online trajectory decays")
print("through the overnight trough instead of releasing and re-buying.")
