#!/usr/bin/env python
"""Paper-style scenario: a Wikipedia-like workload on the AT&T topology.

Recreates the setting of Section V at reduced scale: tier-2 clouds at
AT&T-era metros priced by their regional electricity markets, tier-1
clouds at state capitals, SLAs from geographic k-NN, and a 500-hour
regular-dynamics workload replicated across edge clouds.  Sweeps the
reconfiguration-price weight (the paper's knob ``b``) and prints a
miniature of Fig. 5.

Run:  python examples/wikipedia_campaign.py  [--full]
"""

import argparse

from repro import (
    GreedyOneShot,
    SubproblemConfig,
    PaperTopologyBuilder,
    RegularizedOnline,
    WikipediaLikeWorkload,
    evaluate_cost,
    solve_offline,
)
from repro.evaluation import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="paper scale (18x48 clouds, 500 h) instead of the reduced default",
    )
    parser.add_argument("--epsilon", type=float, default=1e-2)
    args = parser.parse_args()

    horizon = 500 if args.full else 120
    n_tier2 = None if args.full else 6
    n_tier1 = None if args.full else 12

    trace = WikipediaLikeWorkload(horizon=horizon).generate()
    print(f"workload: {horizon} hours, peak/mean = {trace.max() / trace.mean():.2f}")

    rows = []
    for weight in (10.0, 1e2, 1e3, 1e4):
        builder = PaperTopologyBuilder(
            k=1, recon_weight=weight, n_tier2=n_tier2, n_tier1=n_tier1
        )
        instance = builder.build(trace)

        online = RegularizedOnline(SubproblemConfig(epsilon=args.epsilon)).run(instance)
        greedy = GreedyOneShot().run(instance)
        offline = solve_offline(instance)

        c_on = evaluate_cost(instance, online).total
        c_gr = evaluate_cost(instance, greedy).total
        rows.append(
            (
                f"{weight:g}",
                c_gr / offline.objective,
                c_on / offline.objective,
                offline.objective,
            )
        )

    print()
    print("Fig. 5 (miniature): normalized total cost vs reconfiguration weight")
    print(
        format_table(
            ["recon weight b", "one-shot / offline", "online / offline", "offline cost"],
            rows,
        )
    )
    print()
    print("Shape to observe: one-shot ~ optimal for cheap reconfiguration,")
    print("diverging as b grows; the online algorithm stays within a small")
    print("factor of the offline optimum across the whole sweep.")


if __name__ == "__main__":
    main()
