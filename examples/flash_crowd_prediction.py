#!/usr/bin/env python
"""Flash crowds and imperfect forecasts: RFHC/RRHC vs FHC/RHC.

A WorldCup-98-like bursty workload is served under predictive control
with a short prediction window and increasingly noisy forecasts.  The
standard controllers (FHC/RHC) chase every forecast; the regularized
controllers (RFHC/RRHC) pin their window endpoints to the regularized
chain and inherit the prediction-free algorithm's worst-case
guarantee — so forecast noise barely moves them (a miniature of
Figs. 9-10).

Run:  python examples/flash_crowd_prediction.py
"""

from repro import (
    GaussianNoisePredictor,
    FixedHorizonControl,
    SubproblemConfig,
    PaperTopologyBuilder,
    RecedingHorizonControl,
    RegularizedFixedHorizonControl,
    RegularizedOnline,
    RegularizedRecedingHorizonControl,
    WorldCupLikeWorkload,
    evaluate_cost,
    solve_offline,
)
from repro.evaluation import format_table

WINDOW = 3
EPSILON = 1e-3


def controller_suite(error: float, seed: int = 11):
    def predictor():
        # A fresh predictor per controller keeps forecasts identical
        # across controllers (same seed) but independent across runs.
        return GaussianNoisePredictor(error, seed=seed) if error > 0 else None

    return {
        "FHC": FixedHorizonControl(WINDOW, predictor=predictor()),
        "RHC": RecedingHorizonControl(WINDOW, predictor=predictor()),
        "RFHC": RegularizedFixedHorizonControl(
            WINDOW, SubproblemConfig(epsilon=EPSILON), predictor=predictor()
        ),
        "RRHC": RegularizedRecedingHorizonControl(
            WINDOW, SubproblemConfig(epsilon=EPSILON), predictor=predictor()
        ),
    }


def main() -> None:
    trace = WorldCupLikeWorkload(horizon=96).generate()
    instance = PaperTopologyBuilder(
        k=2, recon_weight=1e3, n_tier2=5, n_tier1=8
    ).build(trace)

    offline = solve_offline(instance).objective
    online = evaluate_cost(
        instance, RegularizedOnline(SubproblemConfig(epsilon=EPSILON)).run(instance)
    ).total

    rows = []
    for error in (0.0, 0.05, 0.10, 0.15):
        costs = {
            name: evaluate_cost(instance, ctrl.run(instance)).total / offline
            for name, ctrl in controller_suite(error).items()
        }
        rows.append(
            (
                f"{error:.0%}",
                costs["FHC"],
                costs["RHC"],
                costs["RFHC"],
                costs["RRHC"],
                online / offline,
            )
        )

    print(f"bursty workload: 96 h, peak/mean = {trace.max() / trace.mean():.1f}")
    print(f"prediction window = {WINDOW} slots; all costs normalized by offline\n")
    print(
        format_table(
            ["forecast error", "FHC", "RHC", "RFHC", "RRHC", "online (no pred.)"],
            rows,
        )
    )
    print()
    print("Shape to observe: RFHC/RRHC stay at or below the prediction-free")
    print("online line with accurate forecasts and degrade only mildly with")
    print("noise, while FHC/RHC pay for every mis-forecast ramp.")


if __name__ == "__main__":
    main()
