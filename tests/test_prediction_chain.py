"""Tests for the shared regularized chain used by RFHC/RRHC."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline
from repro.prediction.chain import RegularizedChain
from repro.prediction.predictors import ExactPredictor, GaussianNoisePredictor

from conftest import make_instance, make_network


class TestChain:
    def test_matches_online_with_exact_predictions(self, small_instance):
        """With exact forecasts the chain IS the online trajectory."""
        cfg = SubproblemConfig(epsilon=1e-2)
        chain = RegularizedChain(small_instance, cfg, ExactPredictor())
        online = RegularizedOnline(cfg).run(small_instance)
        for t in (0, 3, small_instance.horizon - 1):
            np.testing.assert_allclose(
                chain[t].tier2_totals(small_instance.network),
                online.tier2_totals(small_instance.network)[t],
                rtol=1e-5,
                atol=1e-6,
            )

    def test_lazy_extension(self, small_instance):
        chain = RegularizedChain(
            small_instance, SubproblemConfig(epsilon=1e-2), ExactPredictor()
        )
        assert len(chain.entries) == 0
        chain.extend_to(2)
        assert len(chain.entries) == 3
        chain.extend_to(1)  # no-op
        assert len(chain.entries) == 3

    def test_out_of_range_rejected(self, small_instance):
        chain = RegularizedChain(
            small_instance, SubproblemConfig(epsilon=1e-2), ExactPredictor()
        )
        with pytest.raises(ValueError):
            chain.extend_to(small_instance.horizon)

    def test_noisy_chain_uses_frozen_forecasts(self, small_instance):
        """Indexing twice returns the same decision (frozen forecasts)."""
        pred = GaussianNoisePredictor(0.2, seed=5)
        chain = RegularizedChain(small_instance, SubproblemConfig(epsilon=1e-2), pred)
        first = chain[2].x.copy()
        np.testing.assert_array_equal(chain[2].x, first)
