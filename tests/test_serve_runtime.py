"""Tests for the fault-tolerant serve loop (repro.serve.runtime)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import RegularizedOnline, SubproblemConfig
from repro.evaluation.reporting import render_serve_events
from repro.model import Allocation
from repro.model.feasibility import check_trajectory
from repro.serve import (
    EventLog,
    FaultInjector,
    InstanceSource,
    ServeConfig,
    ServeLoop,
    covers,
    greedy_cover,
    read_events,
    summarize_events,
)

from conftest import make_instance, make_network

EPS = SubproblemConfig(epsilon=1e-2)


class TestGreedyCover:
    def test_covers_and_respects_capacities(self, small_network):
        net = small_network
        workload = np.full(net.n_tier1, 2.0)
        alloc, served = greedy_cover(net, workload)
        assert served
        assert np.all(net.aggregate_tier1(alloc.s) >= workload - 1e-9)
        assert np.all(net.aggregate_tier2(alloc.x) <= net.tier2_capacity + 1e-9)
        assert np.all(alloc.y <= net.edge_capacity + 1e-9)

    def test_deterministic(self, small_network):
        workload = np.linspace(0.5, 3.0, small_network.n_tier1)
        a, _ = greedy_cover(small_network, workload)
        b, _ = greedy_cover(small_network, workload)
        assert np.array_equal(a.x, b.x)

    def test_reports_unserved_when_capacity_insufficient(self):
        net = make_network(tier2_capacity=1.0, edge_capacity=1.0)
        alloc, served = greedy_cover(net, np.full(net.n_tier1, 100.0))
        assert not served
        # Still feasible w.r.t. capacities — best effort, never over.
        assert np.all(net.aggregate_tier2(alloc.x) <= net.tier2_capacity + 1e-9)

    def test_zero_workload_is_zero_allocation(self, small_network):
        alloc, served = greedy_cover(small_network, np.zeros(small_network.n_tier1))
        assert served
        assert np.all(alloc.x == 0)


class TestCovers:
    def test_previous_allocation_covers_smaller_workload(self, small_network):
        alloc, _ = greedy_cover(small_network, np.full(small_network.n_tier1, 2.0))
        assert covers(small_network, alloc, np.full(small_network.n_tier1, 1.5))
        assert not covers(small_network, alloc, np.full(small_network.n_tier1, 2.5))


class TestServeLoopPrimary:
    def test_matches_batch_run_bitwise(self, small_network):
        inst = make_instance(small_network, horizon=8, seed=5)
        batch = RegularizedOnline(EPS).run(inst)
        report = ServeLoop(RegularizedOnline(EPS), inst).run()
        assert report.paths == ["primary"] * 8
        assert np.array_equal(report.trajectory.x, batch.x)
        assert np.array_equal(report.trajectory.y, batch.y)
        assert np.array_equal(report.trajectory.s, batch.s)

    def test_max_slots_bounds_one_run(self, small_network):
        inst = make_instance(small_network, horizon=8, seed=5)
        loop = ServeLoop(RegularizedOnline(EPS), inst, ServeConfig(max_slots=3))
        report = loop.run()
        assert report.summary["slots"] == 3
        # A second run() call continues where the first stopped (and is
        # itself bounded by the same budget).
        loop.run()
        assert loop.session.t == 6

    def test_report_describe_mentions_paths(self, small_network):
        inst = make_instance(small_network, horizon=3, seed=5)
        report = ServeLoop(RegularizedOnline(EPS), inst).run()
        assert "primary=3" in report.describe()


class TestFaultInjection:
    def test_every_slot_served_under_faults(self, small_network):
        inst = make_instance(small_network, horizon=10, seed=5)
        injector = FaultInjector(stall_prob=0.3, fail_prob=0.2, seed=7)
        log = EventLog()
        report = ServeLoop(
            RegularizedOnline(EPS), inst, ServeConfig(injector=injector), log
        ).run()
        assert report.summary["slots"] == 10
        assert report.summary["unserved"] == 0
        assert report.summary["fallbacks"] > 0
        # The fallback path of every non-primary slot is in the event log.
        decided = [e for e in log.events if e["event"] == "slot_decided"]
        assert len(decided) == 10
        for event in decided:
            assert event["path"] in ("primary", "hold", "greedy")
        fallback_slots = {e["t"] for e in log.events if e["event"] == "fallback"}
        assert fallback_slots == {
            e["t"] for e in decided if e["path"] != "primary"
        }

    def test_trajectory_stays_feasible_under_faults(self, small_network):
        inst = make_instance(small_network, horizon=10, seed=5)
        injector = FaultInjector(stall_prob=0.4, fail_prob=0.3, seed=11)
        report = ServeLoop(
            RegularizedOnline(EPS), inst, ServeConfig(injector=injector)
        ).run()
        assert check_trajectory(inst, report.trajectory).ok

    def test_all_faults_still_serves_every_slot(self, small_network):
        inst = make_instance(small_network, horizon=5, seed=5)
        injector = FaultInjector(fail_prob=1.0)
        report = ServeLoop(
            RegularizedOnline(EPS), inst, ServeConfig(injector=injector)
        ).run()
        assert report.summary["unserved"] == 0
        assert set(report.paths) <= {"hold", "greedy"}
        assert report.paths[0] == "greedy"  # nothing to hold at t=0

    def test_injector_is_deterministic_and_stateless(self):
        injector = FaultInjector(stall_prob=0.3, fail_prob=0.2, seed=5)
        draws = [injector.draw(t) for t in range(50)]
        assert draws == [injector.draw(t) for t in range(50)]
        # Per-slot independence: drawing t=30 alone matches the sweep.
        assert injector.draw(30) == draws[30]
        assert {"stall", "failure"} & set(draws)

    def test_injector_validates_probabilities(self):
        with pytest.raises(ValueError, match="stall_prob"):
            FaultInjector(stall_prob=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            FaultInjector(stall_prob=0.7, fail_prob=0.7)


class TestDeadline:
    class SlowOnline(RegularizedOnline):
        """Stalls on one slot to exercise preemptive deadlines."""

        def __init__(self, config, slow_at=2, sleep_s=0.6):
            super().__init__(config)
            self.slow_at, self.sleep_s = slow_at, sleep_s

        def decide(self, state, t, slot):
            if t == self.slow_at:
                time.sleep(self.sleep_s)
            return super().decide(state, t, slot)

    def test_thread_enforcement_abandons_slow_solve(self, small_network):
        inst = make_instance(small_network, horizon=5, seed=5)
        log = EventLog()
        report = ServeLoop(
            self.SlowOnline(EPS),
            inst,
            ServeConfig(deadline_s=0.15, enforce="thread"),
            log,
        ).run()
        assert report.summary["slots"] == 5
        assert report.paths[2] in ("hold", "greedy")
        # The loop recovers: slots after the stall are primary again.
        assert report.paths[3] == "primary" and report.paths[4] == "primary"
        misses = [e for e in log.events if e["event"] == "deadline_miss"]
        assert any(e["t"] == 2 for e in misses)

    def test_cooperative_mode_keeps_the_late_decision(self, small_network):
        inst = make_instance(small_network, horizon=4, seed=5)
        log = EventLog()
        report = ServeLoop(
            self.SlowOnline(EPS, slow_at=1, sleep_s=0.05),
            inst,
            ServeConfig(deadline_s=0.01, enforce="cooperative"),
            log,
        ).run()
        # The decision still came from the primary path; only the miss
        # is recorded.
        assert report.paths == ["primary"] * 4
        assert any(
            e["event"] == "deadline_miss" and e["t"] == 1 for e in log.events
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="enforce"):
            ServeConfig(enforce="nope")
        with pytest.raises(ValueError, match="checkpoint_path"):
            ServeConfig(checkpoint_every=4)

    @pytest.mark.parametrize("deadline", [0.0, -0.25])
    def test_nonpositive_deadline_rejected_naming_the_flag(self, deadline):
        # A zero/negative budget would fail every primary solve before
        # it starts; the error must point at the CLI flag that set it.
        with pytest.raises(ValueError, match=r"--deadline-ms"):
            ServeConfig(deadline_s=deadline)


class TestSourceErrors:
    class FlakySource:
        """Yields valid slots then raises, like a corrupted tail record."""

        def __init__(self, instance, fail_at):
            self.inner = InstanceSource(instance)
            self.network = instance.network
            self.horizon = instance.horizon
            self.fail_at = fail_at

        def slots(self, start=0):
            for t, slot in enumerate(self.inner.slots(start), start=start):
                if t == self.fail_at:
                    raise ValueError(f"malformed record at slot {t}")
                yield slot

    def test_loop_stops_cleanly_on_source_error(self, small_network):
        inst = make_instance(small_network, horizon=8, seed=5)
        log = EventLog()
        report = ServeLoop(
            RegularizedOnline(EPS), self.FlakySource(inst, 3), ServeConfig(), log
        ).run()
        assert report.error is not None and "slot 3" in report.error
        assert report.summary["slots"] == 3
        assert any(e["event"] == "source_error" for e in log.events)
        # Every slot before the corruption was served normally.
        assert report.paths == ["primary"] * 3


class TestEventLog:
    def test_jsonl_file_round_trip(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=4, seed=5)
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            ServeLoop(RegularizedOnline(EPS), inst, ServeConfig(), log).run()
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "serve_start" and kinds[-1] == "serve_end"
        assert kinds.count("slot_decided") == 4
        summary = summarize_events(events)
        assert summary["slots"] == 4 and summary["paths"] == {"primary": 4}

    def test_malformed_event_line_names_lineno(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "serve_start"}\n{broken\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_render_serve_events(self, small_network):
        inst = make_instance(small_network, horizon=4, seed=5)
        injector = FaultInjector(fail_prob=0.5, seed=3)
        log = EventLog()
        ServeLoop(
            RegularizedOnline(EPS), inst, ServeConfig(injector=injector), log
        ).run()
        text = render_serve_events(log.events)
        assert "slots" in text and "path" in text
        assert "fallback reason" in text


class TestObservability:
    """Serve-loop instrumentation: phase accounting and the registry."""

    def test_phases_partition_slot_wall_exactly(self, small_network):
        inst = make_instance(small_network, horizon=6, seed=5)
        report = ServeLoop(RegularizedOnline(EPS), inst).run()
        assert len(report.outcomes) == 6
        for outcome in report.outcomes:
            assert outcome.slot_wall > 0.0
            total = sum(outcome.phases.values())
            assert total == pytest.approx(outcome.slot_wall, abs=1e-9)
            # Acceptance criterion: named phases account for >= 95% of
            # the slot's wall time (overhead is itself a named phase).
            assert total >= 0.95 * outcome.slot_wall

    def test_slow_solver_time_lands_in_solve_phase(self, small_network):
        from repro.obs import metrics

        inst = make_instance(small_network, horizon=4, seed=5)
        slow = TestDeadline.SlowOnline(EPS, slow_at=2, sleep_s=0.08)
        with metrics.use() as reg:
            report = ServeLoop(
                slow, inst, ServeConfig(deadline_s=None)
            ).run()
        # Per-slot attribution: the synthetic stall is in the slow
        # slot's solve phase, not smeared over the others.
        assert report.outcomes[2].phases["solve"] >= 0.08
        for t in (0, 1, 3):
            assert report.outcomes[t].phases["solve"] < 0.08
        snap = reg.snapshot()
        by_key = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in snap["metrics"]
        }
        solve = by_key[("serve_phase_seconds", (("phase", "solve"),))]
        assert solve["count"] == 4
        assert solve["sum"] >= 0.08
        assert solve["max"] >= 0.08

    def test_fallback_counter_once_per_degraded_slot(self, small_network):
        from repro.obs import metrics

        inst = make_instance(small_network, horizon=10, seed=5)
        injector = FaultInjector(stall_prob=0.3, fail_prob=0.2, seed=7)
        with metrics.use() as reg:
            report = ServeLoop(
                RegularizedOnline(EPS), inst, ServeConfig(injector=injector)
            ).run()
        degraded = sum(1 for p in report.paths if p != "primary")
        assert degraded > 0  # the seed produces faults
        fallbacks = sum(
            e["value"]
            for e in reg.snapshot()["metrics"]
            if e["name"] == "serve_fallbacks_total"
        )
        assert fallbacks == degraded
        # And the per-path slot counters agree with the report.
        for path in ("primary", "hold", "greedy"):
            want = sum(1 for p in report.paths if p == path)
            got = sum(
                e["value"]
                for e in reg.snapshot()["metrics"]
                if e["name"] == "serve_slots_total"
                and e["labels"].get("path") == path
            )
            assert got == want

    def test_registry_untouched_when_disabled(self, small_network):
        from repro.obs import metrics

        inst = make_instance(small_network, horizon=3, seed=5)
        assert metrics.active() is None
        report = ServeLoop(RegularizedOnline(EPS), inst).run()
        assert report.summary["slots"] == 3
        assert metrics.active() is None

    def test_serve_spans_nest_under_slot(self, small_network):
        from repro.obs import tracing

        inst = make_instance(small_network, horizon=2, seed=5)
        with tracing.use() as tracer:
            ServeLoop(RegularizedOnline(EPS), inst).run()
        spans = tracer.spans
        slots = [s for s in spans if s["name"] == "serve.slot"]
        solves = [s for s in spans if s["name"] == "serve.solve"]
        assert len(slots) == 2 and len(solves) == 2
        slot_ids = {s["span_id"] for s in slots}
        for solve in solves:
            assert solve["parent_id"] in slot_ids


class TestSessionApply:
    """The engine-level hook the fallback chain relies on."""

    def test_apply_records_decision_and_advances(self, small_network):
        from repro.engine import SlotData, SolveSession

        inst = make_instance(small_network, horizon=3, seed=5)
        session = SolveSession(RegularizedOnline(EPS), small_network)
        slot = SlotData.from_instance(inst, 0)
        imposed = Allocation.zeros(small_network.n_edges)
        session.apply(slot, imposed)
        assert session.t == 1
        assert session.state.prev is imposed
        assert session.state.warm is None
        # The next primary step anchors at the imposed decision.
        session.step(SlotData.from_instance(inst, 1))
        assert session.t == 2
        traj = session.trajectory()
        assert traj.horizon == 2
        assert np.array_equal(traj.x[0], imposed.x)
