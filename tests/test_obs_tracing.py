"""Tests for the span tracer (repro.obs.tracing)."""

import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import TRACE_SCHEMA, Tracer, read_trace


class TestTracer:
    def test_records_finished_span(self):
        tracer = Tracer()
        with tracer.span("work", kind="unit"):
            pass
        (rec,) = tracer.spans
        assert rec["schema"] == TRACE_SCHEMA
        assert rec["name"] == "work"
        assert rec["attrs"] == {"kind": "unit"}
        assert rec["parent_id"] is None
        assert rec["depth"] == 0
        assert rec["duration_s"] >= 0.0

    def test_nesting_sets_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_rec = tracer.spans  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer.span_id
        assert inner["depth"] == 1
        assert outer_rec["depth"] == 0
        # The child is contained in the parent's interval.
        assert inner["start_s"] >= outer_rec["start_s"]
        assert (
            inner["start_s"] + inner["duration_s"]
            <= outer_rec["start_s"] + outer_rec["duration_s"] + 1e-9
        )

    def test_set_attaches_attrs_mid_span(self):
        tracer = Tracer()
        with tracer.span("solve") as s:
            s.set(outcome="converged", iters=5)
        (rec,) = tracer.spans
        assert rec["attrs"] == {"outcome": "converged", "iters": 5}

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("w"):
                pass
        ids = [r["span_id"] for r in tracer.spans]
        assert len(set(ids)) == 5

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread-span"):
                done.wait(1.0)

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        by_name = {r["name"]: r for r in tracer.spans}
        # The worker's span must NOT be parented under main's open span.
        assert by_name["thread-span"]["parent_id"] is None
        assert by_name["thread-span"]["depth"] == 0

    def test_out_of_order_exit_tolerated(self):
        tracer = Tracer()
        a = tracer.span("a")
        b = tracer.span("b")
        a.__enter__()
        b.__enter__()
        a.__exit__(None, None, None)  # close parent first
        b.__exit__(None, None, None)
        assert {r["name"] for r in tracer.spans} == {"a", "b"}

    def test_keep_cap_counts_dropped(self):
        tracer = Tracer(keep=2)
        for _ in range(5):
            with tracer.span("w"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


class TestTraceFile:
    def test_streams_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path=path) as tracer:
            with tracer.span("outer"):
                with tracer.span("inner", t=3):
                    pass
        records = read_trace(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["attrs"] == {"t": 3}

    def test_file_gets_everything_past_keep(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path=path, keep=1) as tracer:
            for _ in range(4):
                with tracer.span("w"):
                    pass
        assert len(tracer.spans) == 1 and tracer.dropped == 3
        assert len(read_trace(path)) == 4

    def test_read_trace_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n', encoding="utf-8")
        assert read_trace(path) == [{"a": 1}, {"b": 2}]


class TestActiveSwitch:
    def test_disabled_returns_null_span(self):
        assert not tracing.enabled()
        s = tracing.span("anything", key="value")
        assert s is tracing.NULL_SPAN
        with s as inner:
            inner.set(more="attrs")  # inert

    def test_enable_disable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = tracing.enable(path=str(path))
        try:
            assert tracing.active() is tracer
            with tracing.span("work"):
                pass
        finally:
            tracing.disable()
        assert tracing.active() is None
        assert [r["name"] for r in read_trace(path)] == ["work"]

    def test_use_restores_previous(self):
        outer = tracing.enable()
        try:
            with tracing.use() as inner:
                assert tracing.active() is inner
            assert tracing.active() is outer
        finally:
            tracing.disable()


class TestFlush:
    def test_flush_makes_spans_readable_midstream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path=path) as tracer:
            with tracer.span("checkpointed"):
                pass
            tracer.flush()
            # Visible to a tailing reader before close().
            assert [r["name"] for r in read_trace(path)] == ["checkpointed"]

    def test_flush_without_file_is_noop(self):
        tracer = Tracer()
        tracer.flush()  # must not raise
        tracer.close()
