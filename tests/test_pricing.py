"""Tests for the pricing substrate (Tables I and II)."""

import numpy as np
import pytest

from repro.pricing import (
    BANDWIDTH_TIERS,
    ELECTRICITY_MARKETS,
    ElectricityMarket,
    ElectricityPriceModel,
    bandwidth_price,
    bandwidth_price_table,
)


class TestBandwidth:
    def test_table_values(self):
        assert bandwidth_price(5.0) == pytest.approx(0.090)
        assert bandwidth_price(30.0) == pytest.approx(0.085)
        assert bandwidth_price(100.0) == pytest.approx(0.070)
        assert bandwidth_price(300.0) == pytest.approx(0.050)
        assert bandwidth_price(10_000.0) == pytest.approx(0.050)

    def test_boundaries_belong_to_lower_tier(self):
        assert bandwidth_price(10.0) == pytest.approx(0.090)
        assert bandwidth_price(10.0 + 1e-9) == pytest.approx(0.085)

    def test_vectorized(self):
        caps = np.array([1.0, 20.0, 60.0, 200.0])
        np.testing.assert_allclose(
            bandwidth_price(caps), [0.090, 0.085, 0.070, 0.050]
        )

    def test_monotone_non_increasing(self):
        caps = np.linspace(0.1, 1000, 500)
        prices = bandwidth_price(caps)
        assert np.all(np.diff(prices) <= 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_price(-1.0)

    def test_table_rendering(self):
        rows = bandwidth_price_table()
        assert len(rows) == len(BANDWIDTH_TIERS)
        assert rows[0][1] == 0.090


class TestElectricityMarkets:
    def test_paper_rows_embedded_verbatim(self):
        by_name = {m.name: m for m in ELECTRICITY_MARKETS}
        assert by_name["PJM"].mean == 40.6 and by_name["PJM"].std == 26.9
        assert by_name["PJM-Chicago"].mean == 54.0
        assert by_name["CAISO"].mean == 77.9 and by_name["CAISO"].std == 40.3
        assert by_name["ISONE"].mean == 66.5 and by_name["ISONE"].std == 25.8

    def test_market_validation(self):
        with pytest.raises(ValueError):
            ElectricityMarket("bad", -1.0, 1.0, (0.0, 0.0))


class TestPriceSynthesis:
    def test_moments_match_table(self):
        model = ElectricityPriceModel()
        locs = [m.location for m in model.markets]
        series = model.series(locs, 20_000, seed=0)
        for idx, m in enumerate(model.markets):
            s = series[:, idx]
            # Truncation at ~0 biases moments slightly; allow a few %.
            assert s.mean() == pytest.approx(m.mean, rel=0.08)
            assert s.std() == pytest.approx(m.std, rel=0.12)

    def test_prices_positive(self):
        model = ElectricityPriceModel()
        series = model.series([m.location for m in model.markets], 1000, seed=1)
        assert series.min() > 0

    def test_non_market_locations_fixed_price(self):
        model = ElectricityPriceModel(market_share=0.5)
        locs = [m.location for m in model.markets]
        series = model.series(locs, 100, seed=2)
        n_market = int(np.ceil(0.5 * len(locs)))
        fixed = series[:, n_market:]
        assert np.all(fixed.std(axis=0) < 1e-9)
        varying = series[:, :n_market]
        assert np.all(varying.std(axis=0) > 0)

    def test_closest_market_assignment(self):
        model = ElectricityPriceModel()
        # A location next to Boston must map to ISONE.
        idx = model.assign_markets([(42.4, -71.0)])
        assert model.markets[int(idx[0])].name == "ISONE"

    def test_deterministic_with_seed(self):
        model = ElectricityPriceModel()
        locs = [(40.0, -100.0)]
        a = model.series(locs, 50, seed=3)
        b = model.series(locs, 50, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElectricityPriceModel(market_share=1.5)
        with pytest.raises(ValueError):
            ElectricityPriceModel(markets=())
        model = ElectricityPriceModel()
        with pytest.raises(ValueError):
            model.series([(0.0, 0.0)], 0)

    def test_table_rows(self):
        rows = ElectricityPriceModel().table()
        assert ("PJM", 40.6, 26.9) in rows
