"""Tests for the full three-cost model (F_1 + F_12 + F_2)."""

import numpy as np
import pytest

from repro.extensions import (
    full_model_greedy,
    full_model_offline,
    full_model_online,
    to_layered,
)
from repro.model import Cloud, CloudNetwork, Instance, SLAEdge
from repro.offline import solve_offline

from conftest import make_network


def instance_with_tier1(tier1_price=0.0, tier1_capacity=np.inf, tier1_recon=0.0,
                        horizon=10, seed=0):
    n2, n1, k = 3, 4, 2
    tier2 = [Cloud(f"i{i}", 10.0, 20.0) for i in range(n2)]
    tier1 = [Cloud(f"j{j}", tier1_capacity, tier1_recon) for j in range(n1)]
    edges = [SLAEdge((j + m) % n2, j, 7.0, 12.0) for j in range(n1) for m in range(k)]
    net = CloudNetwork(tier2, tier1, edges)
    rng = np.random.default_rng(seed)
    T = horizon
    lam = np.clip(
        1.0 + 0.9 * np.sin(np.arange(T) * 2 * np.pi / 8)[:, None]
        * np.ones((1, n1)) + 0.1 * rng.random((T, n1)),
        0.05,
        None,
    )
    a = 1.0 + 0.4 * rng.random((T, n2))
    c = 0.3 * np.ones((T, net.n_edges))
    e = np.broadcast_to(np.asarray(tier1_price, float), (T, n1)).copy()
    return Instance(net, lam, a, c, tier1_price=e)


class TestReduction:
    def test_requires_tier1_price(self, small_network):
        inst = Instance(
            small_network,
            np.ones((2, small_network.n_tier1)),
            np.ones((2, small_network.n_tier2)),
            np.ones((2, small_network.n_edges)),
        )
        with pytest.raises(ValueError, match="tier1_price"):
            to_layered(inst)

    def test_structure(self):
        inst = instance_with_tier1()
        layered = to_layered(inst)
        net = inst.network
        assert layered.network.n_tiers == 3
        assert layered.network.n_tier1 == net.n_tier1  # origins
        assert layered.network.n_links == net.n_tier1 + net.n_edges
        # One path per original SLA edge (origin feeder is unique).
        assert layered.network.n_paths == net.n_edges

    def test_reduces_to_p1_when_tier1_free(self):
        """With e = f = 0 and ample C_j, the full model's optimum
        equals the reduced problem P1's optimum."""
        inst = instance_with_tier1(tier1_price=0.0, tier1_recon=0.0)
        full = full_model_offline(inst)
        reduced = solve_offline(inst)
        assert full.total == pytest.approx(reduced.objective, rel=1e-6)

    def test_tier1_costs_increase_total(self):
        free = full_model_offline(instance_with_tier1(tier1_price=0.0))
        paid = full_model_offline(instance_with_tier1(tier1_price=0.5))
        assert paid.total > free.total

    def test_tier1_capacity_respected(self):
        inst = instance_with_tier1(tier1_price=0.1, tier1_capacity=3.0)
        layered = to_layered(inst)
        res = full_model_offline(inst)
        J = inst.network.n_tier1
        # First J flattened upper nodes are the tier-1 clouds.
        assert np.all(res.trajectory.X[:, :J] <= 3.0 + 1e-6)


class TestAlgorithms:
    def test_ordering_offline_online_greedy(self):
        inst = instance_with_tier1(tier1_price=0.2, tier1_recon=15.0)
        off = full_model_offline(inst)
        on = full_model_online(inst)
        gr = full_model_greedy(inst)
        layered = to_layered(inst)
        assert layered.check_feasible(on.trajectory)
        assert off.total <= on.total + 1e-6
        assert off.total <= gr.total + 1e-6

    def test_online_smooths_tier1_reconfiguration(self):
        """A V-shaped workload with expensive f_j: online beats greedy."""
        inst = instance_with_tier1(tier1_price=0.02, tier1_recon=50.0, horizon=10)
        vee = np.concatenate([np.linspace(1.8, 0.1, 5), np.linspace(0.1, 1.8, 5)])
        inst = Instance(
            inst.network,
            vee[:, None] * np.ones((1, 4)),
            0.02 * np.ones((10, 3)),
            0.02 * np.ones((10, inst.network.n_edges)),
            tier1_price=0.02 * np.ones((10, 4)),
        )
        on = full_model_online(inst)
        gr = full_model_greedy(inst)
        assert on.total < gr.total
