"""Tests for FHC, RHC, RFHC, RRHC (Section IV)."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline
from repro.model import check_trajectory, evaluate_cost
from repro.offline import GreedyOneShot, solve_offline
from repro.prediction import (
    FixedHorizonControl,
    GaussianNoisePredictor,
    RecedingHorizonControl,
    RegularizedFixedHorizonControl,
    RegularizedRecedingHorizonControl,
)

from conftest import make_instance, make_network


EPS = 1e-2


def total(instance, traj):
    return evaluate_cost(instance, traj).total


class TestWindowValidation:
    @pytest.mark.parametrize(
        "ctor",
        [
            FixedHorizonControl,
            RecedingHorizonControl,
            RegularizedFixedHorizonControl,
            RegularizedRecedingHorizonControl,
        ],
    )
    def test_rejects_zero_window(self, ctor):
        with pytest.raises(ValueError):
            ctor(0)


class TestFeasibility:
    @pytest.mark.parametrize("window", [1, 3, 5])
    def test_all_controllers_feasible(self, small_instance, window):
        for ctor in (
            FixedHorizonControl,
            RecedingHorizonControl,
            RegularizedFixedHorizonControl,
            RegularizedRecedingHorizonControl,
        ):
            traj = ctor(window).run(small_instance)
            rep = check_trajectory(small_instance, traj)
            assert rep.ok, f"{ctor.__name__}: {rep.describe()}"

    def test_noisy_controllers_feasible(self, small_instance):
        for ctor in (FixedHorizonControl, RegularizedRecedingHorizonControl):
            traj = ctor(3, predictor=GaussianNoisePredictor(0.3, seed=1)).run(
                small_instance
            )
            assert check_trajectory(small_instance, traj).ok


class TestDegenerateWindows:
    def test_fhc_window_one_is_greedy(self, small_instance):
        fhc = FixedHorizonControl(1).run(small_instance)
        greedy = GreedyOneShot().run(small_instance)
        assert total(small_instance, fhc) == pytest.approx(
            total(small_instance, greedy), rel=1e-6
        )

    def test_rhc_window_one_is_greedy(self, small_instance):
        rhc = RecedingHorizonControl(1).run(small_instance)
        greedy = GreedyOneShot().run(small_instance)
        assert total(small_instance, rhc) == pytest.approx(
            total(small_instance, greedy), rel=1e-6
        )

    def test_fhc_full_horizon_is_offline(self, small_instance):
        fhc = FixedHorizonControl(small_instance.horizon).run(small_instance)
        off = solve_offline(small_instance)
        assert total(small_instance, fhc) == pytest.approx(off.objective, rel=1e-6)

    def test_rfhc_window_one_is_online(self, small_instance):
        rfhc = RegularizedFixedHorizonControl(1, SubproblemConfig(epsilon=EPS)).run(
            small_instance
        )
        online = RegularizedOnline(SubproblemConfig(epsilon=EPS)).run(small_instance)
        assert total(small_instance, rfhc) == pytest.approx(
            total(small_instance, online), rel=1e-4
        )

    def test_rrhc_window_one_is_online(self, small_instance):
        rrhc = RegularizedRecedingHorizonControl(1, SubproblemConfig(epsilon=EPS)).run(
            small_instance
        )
        online = RegularizedOnline(SubproblemConfig(epsilon=EPS)).run(small_instance)
        assert total(small_instance, rrhc) == pytest.approx(
            total(small_instance, online), rel=1e-4
        )


class TestTheorem4:
    """RFHC/RRHC with exact predictions never cost more than the online
    algorithm (they inherit its competitive ratio)."""

    @pytest.mark.parametrize("window", [2, 4])
    def test_rfhc_upper_bounded_by_online(self, small_instance, window):
        online_cost = total(
            small_instance, RegularizedOnline(SubproblemConfig(epsilon=EPS)).run(small_instance)
        )
        rfhc_cost = total(
            small_instance,
            RegularizedFixedHorizonControl(window, SubproblemConfig(epsilon=EPS)).run(
                small_instance
            ),
        )
        assert rfhc_cost <= online_cost * (1 + 1e-6)

    @pytest.mark.parametrize("window", [2, 4])
    def test_rrhc_upper_bounded_by_online(self, small_instance, window):
        online_cost = total(
            small_instance, RegularizedOnline(SubproblemConfig(epsilon=EPS)).run(small_instance)
        )
        rrhc_cost = total(
            small_instance,
            RegularizedRecedingHorizonControl(window, SubproblemConfig(epsilon=EPS)).run(
                small_instance
            ),
        )
        assert rrhc_cost <= online_cost * (1 + 1e-6)

    def test_all_at_least_offline(self, small_instance):
        off = solve_offline(small_instance).objective
        for ctor in (
            FixedHorizonControl,
            RecedingHorizonControl,
            RegularizedFixedHorizonControl,
            RegularizedRecedingHorizonControl,
        ):
            cost = total(small_instance, ctor(3).run(small_instance))
            assert cost >= off - 1e-6


class TestNoiseRobustness:
    def test_rfhc_degrades_less_than_fhc(self, small_network):
        """Fig 10's shape on a ramp-heavy workload."""
        from repro.model import Instance

        T = 20
        vee = np.concatenate(
            [np.linspace(4.0, 0.3, 10), np.linspace(0.3, 4.0, 11)[1:]]
        )
        lam = vee[:, None] * np.ones((1, small_network.n_tier1))
        rng = np.random.default_rng(0)
        inst = Instance(
            small_network,
            lam,
            0.05 * (1 + 0.1 * rng.random((T, small_network.n_tier2))),
            0.02 * np.ones((T, small_network.n_edges)),
        )
        w, err = 3, 0.15
        for seed in (2, 3, 4):
            fhcN = total(
                inst,
                FixedHorizonControl(
                    w, predictor=GaussianNoisePredictor(err, seed=seed)
                ).run(inst),
            )
            rfhcN = total(
                inst,
                RegularizedFixedHorizonControl(
                    w,
                    SubproblemConfig(epsilon=1e-3),
                    predictor=GaussianNoisePredictor(err, seed=seed),
                ).run(inst),
            )
            # Under noise, regularized control keeps its lead over FHC.
            assert rfhcN < fhcN
