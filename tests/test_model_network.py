"""Tests for the two-tier network model."""

import numpy as np
import pytest

from repro.model import Cloud, CloudNetwork, SLAEdge
from repro.model.network import complete_bipartite_network

from conftest import make_network


class TestCloudValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Cloud("x", capacity=0.0)

    def test_rejects_negative_recon_price(self):
        with pytest.raises(ValueError, match="recon_price"):
            Cloud("x", capacity=1.0, recon_price=-1.0)

    def test_infinite_capacity_allowed(self):
        assert Cloud("x", capacity=np.inf).capacity == np.inf


class TestEdgeValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SLAEdge(0, 0, capacity=0.0)

    def test_rejects_negative_recon(self):
        with pytest.raises(ValueError, match="recon_price"):
            SLAEdge(0, 0, capacity=1.0, recon_price=-0.1)


class TestNetworkConstruction:
    def test_sizes(self):
        net = make_network(n_tier2=4, n_tier1=6, k=2)
        assert net.n_tier2 == 4
        assert net.n_tier1 == 6
        assert net.n_edges == 12

    def test_rejects_duplicate_edges(self):
        tier2 = [Cloud("a", 1.0)]
        tier1 = [Cloud("b", 1.0)]
        with pytest.raises(ValueError, match="duplicate"):
            CloudNetwork(tier2, tier1, [SLAEdge(0, 0, 1.0), SLAEdge(0, 0, 2.0)])

    def test_rejects_uncovered_tier1(self):
        tier2 = [Cloud("a", 1.0)]
        tier1 = [Cloud("b", 1.0), Cloud("c", 1.0)]
        with pytest.raises(ValueError, match="without any SLA edge"):
            CloudNetwork(tier2, tier1, [SLAEdge(0, 0, 1.0)])

    def test_rejects_out_of_range_edge(self):
        tier2 = [Cloud("a", 1.0)]
        tier1 = [Cloud("b", 1.0)]
        with pytest.raises(ValueError, match="unknown tier-2"):
            CloudNetwork(tier2, tier1, [SLAEdge(3, 0, 1.0)])

    def test_rejects_empty_tiers(self):
        with pytest.raises(ValueError):
            CloudNetwork([], [Cloud("b", 1.0)], [])


class TestSLASubsets:
    def test_edges_of_tier1_cover_all_edges(self):
        net = make_network()
        all_edges = np.concatenate(
            [net.edges_of_tier1(j) for j in range(net.n_tier1)]
        )
        assert sorted(all_edges) == list(range(net.n_edges))

    def test_edges_of_tier2_partition(self):
        net = make_network()
        all_edges = np.concatenate(
            [net.edges_of_tier2(i) for i in range(net.n_tier2)]
        )
        assert sorted(all_edges) == list(range(net.n_edges))

    def test_sla_subsets_consistent(self):
        net = make_network()
        for j in range(net.n_tier1):
            for i in net.sla_tier2_of(j):
                assert j in net.sla_tier1_of(int(i))


class TestAggregation:
    def test_aggregate_tier2_matches_manual_sum(self):
        net = make_network()
        rng = np.random.default_rng(0)
        vals = rng.random(net.n_edges)
        agg = net.aggregate_tier2(vals)
        for i in range(net.n_tier2):
            assert agg[i] == pytest.approx(vals[net.edges_of_tier2(i)].sum())

    def test_aggregate_handles_2d(self):
        net = make_network()
        rng = np.random.default_rng(1)
        vals = rng.random((5, net.n_edges))
        agg = net.aggregate_tier2(vals)
        assert agg.shape == (5, net.n_tier2)
        np.testing.assert_allclose(agg[2], net.aggregate_tier2(vals[2]))

    def test_expand_then_aggregate_scales_by_edge_count(self):
        net = make_network()
        ones = np.ones(net.n_tier2)
        counts = net.aggregate_tier2(net.expand_tier2(ones))
        for i in range(net.n_tier2):
            assert counts[i] == len(net.edges_of_tier2(i))

    def test_aggregate_tier1_roundtrip(self):
        net = make_network()
        rng = np.random.default_rng(2)
        cloud_vals = rng.random(net.n_tier1)
        edge_vals = net.expand_tier1(cloud_vals)
        # Each tier-1 cloud has k=2 edges.
        np.testing.assert_allclose(net.aggregate_tier1(edge_vals), 2 * cloud_vals)


class TestCompleteBipartite:
    def test_edge_count(self):
        tier2 = [Cloud(f"i{i}", 1.0) for i in range(3)]
        tier1 = [Cloud(f"j{j}", 1.0) for j in range(5)]
        net = complete_bipartite_network(tier2, tier1, edge_capacity=2.0)
        assert net.n_edges == 15

    def test_every_pair_present(self):
        tier2 = [Cloud(f"i{i}", 1.0) for i in range(2)]
        tier1 = [Cloud(f"j{j}", 1.0) for j in range(2)]
        net = complete_bipartite_network(tier2, tier1, edge_capacity=2.0)
        pairs = {(int(i), int(j)) for i, j in zip(net.edge_i, net.edge_j)}
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}
