"""Tests for Instance validation and slicing."""

import numpy as np
import pytest

from repro.model import Instance

from conftest import make_instance, make_network


class TestValidation:
    def test_shapes_checked(self, small_network):
        T = 4
        lam = np.ones((T, small_network.n_tier1))
        a = np.ones((T, small_network.n_tier2))
        c = np.ones((T, small_network.n_edges))
        Instance(small_network, lam, a, c)  # ok
        with pytest.raises(ValueError, match="workload"):
            Instance(small_network, lam[:, :-1], a, c)
        with pytest.raises(ValueError, match="tier2_price"):
            Instance(small_network, lam, a[:, :-1], c)
        with pytest.raises(ValueError, match="link_price"):
            Instance(small_network, lam, a, c[:, :-1])

    def test_rejects_negative_workload(self, small_network):
        T = 3
        lam = np.ones((T, small_network.n_tier1))
        lam[1, 0] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            Instance(
                small_network,
                lam,
                np.ones((T, small_network.n_tier2)),
                np.ones((T, small_network.n_edges)),
            )

    def test_rejects_nan_price(self, small_network):
        T = 3
        a = np.ones((T, small_network.n_tier2))
        a[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            Instance(
                small_network,
                np.ones((T, small_network.n_tier1)),
                a,
                np.ones((T, small_network.n_edges)),
            )

    def test_static_link_price_broadcasts(self, small_network):
        T = 5
        inst = Instance(
            small_network,
            np.ones((T, small_network.n_tier1)),
            np.ones((T, small_network.n_tier2)),
            np.full(small_network.n_edges, 0.25),
        )
        assert inst.link_price.shape == (T, small_network.n_edges)
        assert np.all(inst.link_price == 0.25)


class TestSlicing:
    def test_slice_contents(self, small_instance):
        sub = small_instance.slice(3, 7)
        assert sub.horizon == 4
        np.testing.assert_array_equal(sub.workload, small_instance.workload[3:7])
        np.testing.assert_array_equal(sub.tier2_price, small_instance.tier2_price[3:7])

    def test_slice_bounds_checked(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.slice(5, 5)
        with pytest.raises(ValueError):
            small_instance.slice(-1, 3)
        with pytest.raises(ValueError):
            small_instance.slice(0, small_instance.horizon + 1)

    def test_with_data_replaces_workload_only(self, small_instance):
        new_lam = small_instance.workload * 0.5
        alt = small_instance.with_data(workload=new_lam)
        np.testing.assert_array_equal(alt.workload, new_lam)
        np.testing.assert_array_equal(alt.tier2_price, small_instance.tier2_price)

    def test_total_workload(self, small_instance):
        np.testing.assert_allclose(
            small_instance.total_workload(), small_instance.workload.sum(axis=1)
        )
