"""Tests for serve checkpoint/resume (repro.serve.checkpoint).

The acceptance bar: a run killed at *any* slot index and resumed from
its checkpoint must produce a trajectory bitwise-identical to the
uninterrupted run's — including under deterministic fault injection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RegularizedOnline, SubproblemConfig
from repro.engine import SolveSession
from repro.engine.stats import StepStats
from repro.model import Allocation
from repro.serve import (
    CHECKPOINT_SCHEMA,
    FaultInjector,
    ServeConfig,
    ServeLoop,
    load_checkpoint,
    save_checkpoint,
)

from conftest import make_instance, make_network

EPS = SubproblemConfig(epsilon=1e-2)
HORIZON = 8


@pytest.fixture(scope="module")
def network():
    return make_network()


@pytest.fixture(scope="module")
def instance(network):
    return make_instance(network, horizon=HORIZON, seed=5)


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(stall_prob=0.2, fail_prob=0.15, seed=3)


@pytest.fixture(scope="module")
def uninterrupted(instance, injector):
    """The reference run: no kill, faults injected."""
    return ServeLoop(
        RegularizedOnline(EPS), instance, ServeConfig(injector=injector)
    ).run()


class TestRoundTrip:
    def test_save_load_preserves_session_snapshot(self, network, instance, tmp_path):
        path = tmp_path / "ck.npz"
        session = SolveSession(RegularizedOnline(EPS), network)
        from repro.engine import SlotData

        for t in range(3):
            session.step(SlotData.from_instance(instance, t))
        snapshot = session.export_state()
        save_checkpoint(
            path, snapshot, controller_name="regularized-online",
            paths=["primary"] * 3,
        )
        loaded = load_checkpoint(path)
        assert loaded["t"] == 3
        assert loaded["controller_name"] == "regularized-online"
        assert loaded["paths"] == ["primary"] * 3
        assert len(loaded["steps"]) == 3
        for a, b in zip(loaded["steps"], snapshot["steps"]):
            assert np.array_equal(a.x, b.x)
        ctrl = loaded["controller"]
        assert np.array_equal(ctrl["prev_x"], snapshot["controller"]["prev_x"])
        assert np.array_equal(ctrl["warm"], snapshot["controller"]["warm"])
        assert all(isinstance(s, StepStats) for s in loaded["step_stats"])
        assert [s.t for s in loaded["step_stats"]] == [0, 1, 2]

    def test_none_entries_survive(self, tmp_path):
        path = tmp_path / "ck.npz"
        prev = Allocation.zeros(3)
        snapshot = {
            "t": 0,
            "steps": [],
            "step_stats": [],
            "controller": {
                "prev_x": prev.x, "prev_y": prev.y, "prev_s": prev.s,
                "warm": None,
            },
        }
        save_checkpoint(path, snapshot)
        loaded = load_checkpoint(path)
        assert loaded["controller"]["warm"] is None
        assert loaded["steps"] == []

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"t": 0, "steps": [], "controller": {}})
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_bad_schema_rejected(self, tmp_path):
        import json

        path = tmp_path / "ck.npz"
        with open(path, "wb") as fh:
            np.savez(fh, meta=np.array(json.dumps({"schema": "other/v9"})))
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(path)

    def test_export_without_hook_is_typeerror(self, network):
        class NoHooks:
            name = "bare"

            def make_state(self, source, initial=None):
                return object()

            def decide(self, state, t, slot):
                raise NotImplementedError

        session = SolveSession(NoHooks(), network)
        # The failure message must name the concrete controller class
        # (and its registered name), not just the missing hook — a bare
        # "no export_state" is useless when the session wraps a
        # user-supplied controller.
        with pytest.raises(TypeError, match="export_state") as exc:
            session.export_state()
        assert "NoHooks" in str(exc.value)
        assert "bare" in str(exc.value)
        with pytest.raises(TypeError, match="restore_state") as exc:
            SolveSession.resume(NoHooks(), network, {"controller": {}, "t": 0,
                                                     "steps": [], "step_stats": []})
        assert "NoHooks" in str(exc.value)


class TestKillAndResume:
    """Acceptance: bitwise-identical resume at every kill index."""

    @pytest.mark.parametrize("kill_at", list(range(1, HORIZON)))
    def test_resume_matches_uninterrupted(
        self, instance, injector, uninterrupted, tmp_path, kill_at
    ):
        path = tmp_path / "ck.npz"
        # "Kill" the loop after kill_at slots: max_slots stops it, and
        # the checkpoint-per-slot cadence means the file is exactly
        # what a SIGKILL would have left behind.
        ServeLoop(
            RegularizedOnline(EPS),
            instance,
            ServeConfig(
                injector=injector,
                checkpoint_path=path,
                checkpoint_every=1,
                max_slots=kill_at,
            ),
        ).run()
        resumed = ServeLoop.resume(
            RegularizedOnline(EPS),
            instance,
            path,
            config=ServeConfig(injector=injector),
        ).run()
        full = uninterrupted.trajectory
        assert resumed.trajectory.horizon == HORIZON
        assert np.array_equal(resumed.trajectory.x, full.x)
        assert np.array_equal(resumed.trajectory.y, full.y)
        assert np.array_equal(resumed.trajectory.s, full.s)
        # The serve-path record is complete across the restart.
        assert resumed.paths == uninterrupted.paths

    def test_resume_with_wrong_controller_rejected(self, instance, tmp_path):
        path = tmp_path / "ck.npz"
        ServeLoop(
            RegularizedOnline(EPS),
            instance,
            ServeConfig(checkpoint_path=path, checkpoint_every=1, max_slots=2),
        ).run()

        class Other(RegularizedOnline):
            name = "other-controller"

        with pytest.raises(ValueError, match="other-controller"):
            ServeLoop.resume(Other(EPS), instance, path)

    def test_checkpoint_schema_stamped(self, instance, tmp_path):
        path = tmp_path / "ck.npz"
        ServeLoop(
            RegularizedOnline(EPS),
            instance,
            ServeConfig(checkpoint_path=path, checkpoint_every=1, max_slots=1),
        ).run()
        assert load_checkpoint(path)  # schema accepted
        import json

        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
        assert meta["schema"] == CHECKPOINT_SCHEMA


class TestCheckpointFlushesObservability:
    def test_checkpoint_flushes_tracer_and_telemetry(self, instance, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs import telemetry as obs_telemetry
        from repro.obs import tracing as obs_tracing
        from repro.obs.tracing import Tracer, read_trace

        trace_path = tmp_path / "trace.jsonl"
        tdir = tmp_path / "telemetry"
        with obs_metrics.use():
            obs_tracing.enable(Tracer(path=trace_path))
            obs_telemetry.attach(tdir, min_interval_s=3600.0)
            try:
                ServeLoop(
                    RegularizedOnline(EPS),
                    instance,
                    ServeConfig(
                        checkpoint_path=tmp_path / "run.ckpt",
                        checkpoint_every=1,
                        max_slots=2,
                    ),
                ).run()
                # Both streams are durable at the checkpoint barrier even
                # though neither was closed and the sink's own flush
                # cadence (1h) never came due.
                assert len(read_trace(trace_path)) > 0
                sink = obs_telemetry.active_sink()
                snapshot = obs_telemetry.replay_sink(
                    obs_telemetry.read_sink(sink.path)
                )
                slots = [
                    e
                    for e in snapshot["metrics"]
                    if e["name"] == "serve_slots_total"
                ]
                assert sum(e["value"] for e in slots) == 2
            finally:
                obs_telemetry.detach()
                obs_tracing.disable()
