"""Property-based tests of the network aggregation operators."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from conftest import make_network  # noqa: E402


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n2=st.integers(1, 6),
    n1=st.integers(1, 8),
    k=st.integers(1, 3),
)
def test_aggregation_is_linear(seed, n2, n1, k):
    k = min(k, n2)
    net = make_network(n_tier2=n2, n_tier1=n1, k=k)
    rng = np.random.default_rng(seed)
    a = rng.normal(size=net.n_edges)
    b = rng.normal(size=net.n_edges)
    alpha = rng.normal()
    np.testing.assert_allclose(
        net.aggregate_tier2(alpha * a + b),
        alpha * net.aggregate_tier2(a) + net.aggregate_tier2(b),
        atol=1e-9,
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n2=st.integers(1, 6), n1=st.integers(1, 8))
def test_expand_is_adjoint_of_aggregate(seed, n2, n1):
    """<aggregate(e), c> == <e, expand(c)> (transpose pair)."""
    net = make_network(n_tier2=n2, n_tier1=n1, k=1)
    rng = np.random.default_rng(seed)
    e = rng.normal(size=net.n_edges)
    c = rng.normal(size=net.n_tier2)
    lhs = float(net.aggregate_tier2(e) @ c)
    rhs = float(e @ net.expand_tier2(c))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n2=st.integers(2, 6), n1=st.integers(2, 8))
def test_aggregate_preserves_total_mass(seed, n2, n1):
    net = make_network(n_tier2=n2, n_tier1=n1, k=2)
    rng = np.random.default_rng(seed)
    e = rng.random(net.n_edges)
    assert net.aggregate_tier2(e).sum() == pytest.approx(e.sum())
    assert net.aggregate_tier1(e).sum() == pytest.approx(e.sum())
