"""Property-based tests for the geographic helpers (repro.topology.geo)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.topology.geo import _EARTH_RADIUS_KM, haversine_matrix, k_nearest

#: Half the Earth's circumference: no two points are farther apart.
HALF_CIRCUMFERENCE_KM = np.pi * _EARTH_RADIUS_KM

lats = st.floats(-90.0, 90.0, allow_nan=False)
lons = st.floats(-180.0, 180.0, allow_nan=False)


def coord_arrays(n):
    return st.tuples(
        st.lists(lats, min_size=n, max_size=8).map(np.array),
        st.lists(lons, min_size=n, max_size=8).map(np.array),
    ).filter(lambda t: t[0].shape == t[1].shape)


@settings(max_examples=60, deadline=None)
@given(coords=coord_arrays(1))
def test_square_matrix_is_symmetric_with_zero_diagonal(coords):
    lat, lon = coords
    d = haversine_matrix(lat, lon, lat, lon)
    assert d.shape == (lat.size, lat.size)
    np.testing.assert_allclose(d, d.T, atol=1e-9)
    np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(a=coord_arrays(1), b=coord_arrays(1))
def test_distances_nonnegative_and_bounded_by_half_circumference(a, b):
    d = haversine_matrix(a[0], a[1], b[0], b[1])
    assert d.shape == (a[0].size, b[0].size)
    assert (d >= 0.0).all()
    assert (d <= HALF_CIRCUMFERENCE_KM + 1e-6).all()


@settings(max_examples=60, deadline=None)
@given(a=coord_arrays(1), b=coord_arrays(1))
def test_swapping_point_sets_transposes(a, b):
    ab = haversine_matrix(a[0], a[1], b[0], b[1])
    ba = haversine_matrix(b[0], b[1], a[0], a[1])
    np.testing.assert_allclose(ab, ba.T, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 7),
    n=st.integers(1, 7),
    k=st.integers(1, 7),
)
def test_k_nearest_rows_are_valid_and_sorted(seed, m, n, k):
    k = min(k, n)
    rng = np.random.default_rng(seed)
    d = rng.random((m, n)) * 1e4
    idx = k_nearest(d, k)
    assert idx.shape == (m, k)
    for row in range(m):
        chosen = idx[row]
        assert len(set(chosen.tolist())) == k  # distinct columns
        picked = np.sort(d[row, chosen])
        rest = np.delete(d[row], chosen)
        # Nearest-first within the row, and no closer column left out.
        assert (np.diff(d[row, chosen]) >= 0).all()
        if rest.size:
            assert picked[-1] <= rest.min() + 1e-12
