"""Property-based tests of the cache fingerprint/store layer.

The invariants that make a shared cache directory safe:

* **Stability** — a fingerprint is a pure function of its inputs:
  recomputing it (in this process or another one, under a different
  ``PYTHONHASHSEED``) yields the same hex digest.
* **Distinctness** — any change to a solve's inputs (config flags,
  backend, network shape, workload, prices, anchors, warm seed)
  changes the key, so no two different solves can collide in practice.
* **Corruption safety** — an arbitrarily truncated or bit-flipped blob
  is *never* served: the store returns ``None`` (a cold solve), not
  wrong data.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache import SolverStateStore, config_fingerprint, solve_key
from repro.core import SubproblemConfig
from repro.model import Allocation

SRC = str(Path(__file__).resolve().parents[2] / "src")


finite_floats = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def vectors(n: int):
    return st.lists(finite_floats, min_size=n, max_size=n).map(np.array)


class TestSolveKeyProperties:
    @given(w=vectors(3), t2=vectors(2), link=vectors(4))
    @settings(max_examples=50, deadline=None)
    def test_key_is_stable_on_recomputation(self, w, t2, link):
        prev = Allocation.zeros(4)
        keys = {solve_key("fp", w, t2, link, prev, None) for _ in range(3)}
        assert len(keys) == 1

    @given(w=vectors(3), delta=st.integers(min_value=0, max_value=2),
           bump=st.floats(min_value=1e-12, max_value=10.0,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=50, deadline=None)
    def test_any_workload_change_changes_key(self, w, delta, bump):
        t2, link, prev = np.zeros(2), np.zeros(4), Allocation.zeros(4)
        base = solve_key("fp", w, t2, link, prev, None)
        changed = w.copy()
        changed[delta] += bump
        assert solve_key("fp", changed, t2, link, prev, None) != base

    @given(w=vectors(3))
    @settings(max_examples=20, deadline=None)
    def test_warm_none_differs_from_any_warm_vector(self, w):
        t2, link, prev = np.zeros(2), np.zeros(4), Allocation.zeros(4)
        assert solve_key("fp", w, t2, link, prev, None) != solve_key(
            "fp", w, t2, link, prev, np.zeros(4)
        )

    @given(x=vectors(4), field=st.sampled_from(["x", "y", "s"]))
    @settings(max_examples=30, deadline=None)
    def test_every_anchor_component_is_keyed(self, x, field):
        w, t2, link = np.zeros(3), np.zeros(2), np.zeros(4)
        prev = Allocation.zeros(4)
        base = solve_key("fp", w, t2, link, prev, None)
        parts = {"x": prev.x, "y": prev.y, "s": prev.s}
        parts[field] = x + 1.0
        bumped = Allocation(parts["x"], parts["y"], parts["s"])
        assert solve_key("fp", w, t2, link, bumped, None) != base


class TestConfigKeyProperties:
    @given(
        epsilon=st.floats(min_value=1e-6, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
        hedging=st.booleans(),
        fused=st.booleans(),
        backend=st.sampled_from(["sequential", "batched"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_configs_distinct_fingerprints(
        self, epsilon, hedging, fused, backend
    ):
        config = SubproblemConfig(
            epsilon=epsilon, hedging=hedging, fused_kernels=fused, backend=backend
        )
        fp = config_fingerprint(config)
        # Same values -> same digest.
        assert fp == config_fingerprint(dataclasses.replace(config))
        # Flipping any single field -> different digest.
        for changed in (
            dataclasses.replace(config, epsilon=epsilon * 2.0 + 1e-6),
            dataclasses.replace(config, hedging=not hedging),
            dataclasses.replace(config, fused_kernels=not fused),
            dataclasses.replace(
                config,
                backend="batched" if backend == "sequential" else "sequential",
            ),
        ):
            assert config_fingerprint(changed) != fp


class TestCorruptionSafety:
    KEY = "ab" + "0" * 62

    @given(cut=st.integers(min_value=0, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_truncated_blob_never_served(self, tmp_path_factory, cut):
        root = tmp_path_factory.mktemp("cache")
        store = SolverStateStore(root)
        store.put_solve(self.KEY, Allocation.zeros(3), np.zeros(5))
        path = store._blob_path("solve", self.KEY)
        payload = path.read_bytes()
        path.write_bytes(payload[: min(cut, len(payload) - 1)])
        fresh = SolverStateStore(root)
        assert fresh.get_solve(self.KEY) is None
        assert fresh.counters.corrupt == 1

    @given(pos=st.integers(min_value=0, max_value=10**6),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=25, deadline=None)
    def test_bitflipped_blob_is_rejected_or_identical(
        self, tmp_path_factory, pos, flip
    ):
        root = tmp_path_factory.mktemp("cache")
        store = SolverStateStore(root)
        alloc = Allocation(np.arange(3.0), np.arange(3.0), np.arange(3.0))
        v = np.arange(5.0)
        store.put_solve(self.KEY, alloc, v)
        path = store._blob_path("solve", self.KEY)
        payload = bytearray(path.read_bytes())
        payload[pos % len(payload)] ^= flip
        path.write_bytes(bytes(payload))
        got = SolverStateStore(root).get_solve(self.KEY)
        # Either the flip was caught (cold solve) or it landed in
        # npz padding/metadata the arrays never touch — in which case
        # the data served must still be exactly what was stored.
        if got is not None:
            assert np.array_equal(got[0].x, alloc.x)
            assert np.array_equal(got[0].y, alloc.y)
            assert np.array_equal(got[0].s, alloc.s)
            assert np.array_equal(got[1], v)


class TestCrossProcessStability:
    def test_fingerprint_identical_under_other_hashseed(self):
        """The same key must come out of a different interpreter with a
        different ``PYTHONHASHSEED`` (nothing may rely on ``hash()``)."""
        script = (
            "import numpy as np\n"
            "from repro.cache import config_fingerprint, solve_key\n"
            "from repro.core import SubproblemConfig\n"
            "from repro.model import Allocation\n"
            "cfg = config_fingerprint(SubproblemConfig(epsilon=1e-2))\n"
            "key = solve_key('fp', np.arange(3.0), np.arange(2.0),\n"
            "                np.arange(4.0), Allocation.zeros(4), None)\n"
            "print(cfg); print(key)\n"
        )

        def run(seed: str) -> "list[str]":
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            return out.stdout.splitlines()

        here = run("0")
        there = run("12345")
        assert here == there
        # And both match this process's own computation.
        cfg = config_fingerprint(SubproblemConfig(epsilon=1e-2))
        key = solve_key(
            "fp", np.arange(3.0), np.arange(2.0), np.arange(4.0),
            Allocation.zeros(4), None,
        )
        assert here == [cfg, key]
