"""Property-based cross-validation of the convex solver backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import (
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
    first_order_certificate,
)
from repro.solvers.convex import EntropicTerm


def random_program(seed: int, n: int, m: int) -> SmoothConvexProgram:
    """Random feasible covering-style program with entropic terms."""
    rng = np.random.default_rng(seed)
    linear = rng.uniform(0.1, 3.0, n)
    ref = rng.uniform(0.0, 1.5, n)
    weight = rng.uniform(0.0, 5.0, n)
    term = EntropicTerm(np.arange(n), weight, eps=rng.uniform(0.01, 0.5), ref=ref)
    obj = SeparableObjective(n, linear, [term])
    ub = rng.uniform(1.0, 3.0, n)
    # m covering rows over random supports, feasible by construction:
    # rhs = 50% of what the box's midpoint provides.
    A_rows, b_rows = [], []
    for _ in range(m):
        support = rng.random(n) < 0.6
        if not support.any():
            support[rng.integers(n)] = True
        coef = np.where(support, rng.uniform(0.5, 2.0, n), 0.0)
        rhs = 0.5 * float(coef @ (ub / 2))
        A_rows.append(-coef)
        b_rows.append(-rhs)
    return SmoothConvexProgram(
        obj, np.array(A_rows), np.array(b_rows), np.zeros(n), ub
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 12),
    m=st.integers(1, 6),
)
def test_backends_agree_and_certify(seed, n, m):
    prog = random_program(seed, n, m)
    vb = prog.solve(options=SolverOptions(backend="barrier", fallback=False))
    vt = prog.solve(options=SolverOptions(backend="trust-constr"))
    fb, ft = prog.objective.value(vb), prog.objective.value(vt)
    # trust-constr is a loose cross-check; the barrier result must
    # agree within its tolerance and never be meaningfully worse.
    assert fb == pytest.approx(ft, rel=1e-2, abs=1e-3)
    assert fb <= ft + 1e-4 * (1.0 + abs(ft))
    assert prog.residual(vb) <= 1e-7
    assert first_order_certificate(prog, vb, active_tol=1e-4) >= -1e-3


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
def test_warm_start_does_not_change_optimum(seed, n):
    prog = random_program(seed, n, 2)
    v1 = prog.solve()
    rng = np.random.default_rng(seed + 1)
    v0 = np.clip(v1 + rng.normal(0, 0.05, n), 1e-6, prog.ub - 1e-6)
    v2 = prog.solve(v0=v0)
    assert prog.objective.value(v2) == pytest.approx(
        prog.objective.value(v1), rel=1e-4, abs=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
def test_optimum_invariant_to_row_scaling(seed, n):
    """Scaling constraint rows leaves the feasible set and optimum unchanged."""
    prog = random_program(seed, n, 3)
    scaled = SmoothConvexProgram(
        prog.objective,
        prog.A.toarray() * 7.5,
        prog.b * 7.5,
        prog.lb,
        prog.ub,
    )
    f1 = prog.objective.value(prog.solve())
    f2 = prog.objective.value(scaled.solve())
    assert f1 == pytest.approx(f2, rel=1e-4, abs=1e-6)
