"""Property-based cross-validation of the convex solver backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import (
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
    first_order_certificate,
)
from repro.solvers.convex import EntropicTerm


def random_program(seed: int, n: int, m: int) -> SmoothConvexProgram:
    """Random feasible covering-style program with entropic terms."""
    rng = np.random.default_rng(seed)
    linear = rng.uniform(0.1, 3.0, n)
    ref = rng.uniform(0.0, 1.5, n)
    weight = rng.uniform(0.0, 5.0, n)
    term = EntropicTerm(np.arange(n), weight, eps=rng.uniform(0.01, 0.5), ref=ref)
    obj = SeparableObjective(n, linear, [term])
    ub = rng.uniform(1.0, 3.0, n)
    # m covering rows over random supports, feasible by construction:
    # rhs = 50% of what the box's midpoint provides.
    A_rows, b_rows = [], []
    for _ in range(m):
        support = rng.random(n) < 0.6
        if not support.any():
            support[rng.integers(n)] = True
        coef = np.where(support, rng.uniform(0.5, 2.0, n), 0.0)
        rhs = 0.5 * float(coef @ (ub / 2))
        A_rows.append(-coef)
        b_rows.append(-rhs)
    return SmoothConvexProgram(
        obj, np.array(A_rows), np.array(b_rows), np.zeros(n), ub
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 12),
    m=st.integers(1, 6),
)
def test_backends_agree_and_certify(seed, n, m):
    prog = random_program(seed, n, m)
    vb = prog.solve(options=SolverOptions(backend="barrier", fallback=False))
    vt = prog.solve(options=SolverOptions(backend="trust-constr"))
    fb, ft = prog.objective.value(vb), prog.objective.value(vt)
    # trust-constr is a loose cross-check; the barrier result must
    # agree within its tolerance and never be meaningfully worse.
    assert fb == pytest.approx(ft, rel=1e-2, abs=1e-3)
    assert fb <= ft + 1e-4 * (1.0 + abs(ft))
    assert prog.residual(vb) <= 1e-7
    assert first_order_certificate(prog, vb, active_tol=1e-4) >= -1e-3


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
def test_warm_start_does_not_change_optimum(seed, n):
    prog = random_program(seed, n, 2)
    v1 = prog.solve()
    rng = np.random.default_rng(seed + 1)
    v0 = np.clip(v1 + rng.normal(0, 0.05, n), 1e-6, prog.ub - 1e-6)
    v2 = prog.solve(v0=v0)
    assert prog.objective.value(v2) == pytest.approx(
        prog.objective.value(v1), rel=1e-4, abs=1e-6
    )


def random_objective_pair(seed: int, n: int, n_terms: int):
    """The same random objective compiled fused and as the term loop.

    Entropic terms draw both contiguous index ranges and random index
    vectors *with duplicates*, so overlapping terms and repeated
    indices within one term — the cases where the fused gather/scatter
    could diverge from per-term accumulation — are always exercised.
    """
    rng = np.random.default_rng(seed)
    linear = rng.standard_normal(n)
    terms = []
    for _ in range(n_terms):
        k = int(rng.integers(1, n + 1))
        if rng.random() < 0.5:
            lo = int(rng.integers(0, n - k + 1))
            idx = np.arange(lo, lo + k)
        else:
            idx = rng.integers(0, n, size=k)  # duplicates allowed
        terms.append(
            EntropicTerm(
                indices=idx,
                weight=rng.random(k) * 10.0,
                eps=rng.random(k) + 1e-3,
                ref=rng.random(k) * 5.0,
            )
        )
    copies = [
        EntropicTerm(t.indices.copy(), t.weight.copy(), t.eps.copy(), t.ref.copy())
        for t in terms
    ]
    fused = SeparableObjective(n, linear, copies, fused=True)
    loop = SeparableObjective(n, linear, terms, fused=False)
    return rng, fused, loop


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(3, 40),
    n_terms=st.integers(1, 4),
)
def test_fused_kernels_bitwise_match_loop_reference(seed, n, n_terms):
    """Fused value/grad/hess_diag == per-term loop, bit for bit.

    Bitwise (not approximate) equality is what guarantees the barrier
    takes the identical Newton path under either kernel set — ulp-level
    drift perturbs the line search at large tau and costs iterations
    (and would make the perf benchmark compare different trajectories).
    """
    rng, fused, loop = random_objective_pair(seed, n, n_terms)
    for _ in range(5):
        v = rng.random(n) * 8.0
        assert fused.value(v) == loop.value(v)
        assert np.array_equal(fused.grad(v), loop.grad(v))
        assert np.array_equal(fused.hess_diag(v), loop.hess_diag(v))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 20))
def test_fused_kernels_match_after_slot_update(seed, n):
    """Bitwise parity survives in-place per-slot data updates."""
    rng, fused, loop = random_objective_pair(seed, n, 2)
    new_linear = rng.standard_normal(n)
    new_refs = [rng.random(t.indices.size) * 5.0 for t in loop.entropic]
    fused.set_slot_data(linear=new_linear, refs=[r.copy() for r in new_refs])
    loop.set_slot_data(linear=new_linear, refs=new_refs)
    for _ in range(3):
        v = rng.random(n) * 8.0
        assert fused.value(v) == loop.value(v)
        assert np.array_equal(fused.grad(v), loop.grad(v))
        assert np.array_equal(fused.hess_diag(v), loop.hess_diag(v))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
def test_optimum_invariant_to_row_scaling(seed, n):
    """Scaling constraint rows leaves the feasible set and optimum unchanged."""
    prog = random_program(seed, n, 3)
    scaled = SmoothConvexProgram(
        prog.objective,
        prog.A.toarray() * 7.5,
        prog.b * 7.5,
        prog.lb,
        prog.ub,
    )
    f1 = prog.objective.value(prog.solve())
    f2 = prog.objective.value(scaled.solve())
    assert f1 == pytest.approx(f2, rel=1e-4, abs=1e-6)
