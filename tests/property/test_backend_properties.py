"""Property-based equivalence of the solver-backend layer.

The core invariant of the batched backend: solving a *single*
subproblem through ``BatchedNewtonBackend`` (batch size 1, or the
closed-form fast path) yields the same decision as the unbatched
``SequentialBackend`` reference, on randomly generated networks,
workloads and prices.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SubproblemConfig
from repro.core.subproblem import RegularizedSubproblem
from repro.model import Allocation, Cloud, CloudNetwork, SLAEdge


def random_star(rng: np.random.Generator, n_tier1: int) -> CloudNetwork:
    """One tier-2 cloud serving ``n_tier1`` tier-1 clouds (a star)."""
    cap = float(rng.uniform(5.0, 20.0))
    tier2 = [Cloud("i0", cap, float(rng.uniform(0.5, 30.0)))]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(n_tier1)]
    edges = [
        SLAEdge(0, j, float(rng.uniform(3.0, 12.0)), float(rng.uniform(0.5, 20.0)))
        for j in range(n_tier1)
    ]
    return CloudNetwork(tier2, tier1, edges)


def random_dense(rng: np.random.Generator, n_tier1: int) -> CloudNetwork:
    """Two tier-2 clouds both serving every tier-1 cloud (one dense
    component -> the batched backend's Newton path at batch size 1,
    after the single-component bail is sidestepped by adding a star)."""
    tier2 = [
        Cloud(f"i{i}", float(rng.uniform(8.0, 25.0)), float(rng.uniform(0.5, 30.0)))
        for i in range(3)
    ]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(n_tier1 + 1)]
    edges = [
        SLAEdge(i, j, float(rng.uniform(3.0, 12.0)), float(rng.uniform(0.5, 20.0)))
        for j in range(n_tier1)
        for i in (0, 1)
    ]
    # One extra star edge so the network has >1 component and the dense
    # block genuinely runs through the batched Newton solve.
    edges.append(
        SLAEdge(2, n_tier1, float(rng.uniform(3.0, 12.0)), float(rng.uniform(0.5, 20.0)))
    )
    return CloudNetwork(tier2, tier1, edges)


def random_slot(rng: np.random.Generator, net: CloudNetwork):
    # Small enough that every random network is strictly feasible
    # (edge caps >= 3, tier-2 caps >= 5, at most 7 tier-1 clouds).
    lam = rng.uniform(0.05, 0.5, net.n_tier1)
    tier2_price = rng.uniform(0.1, 3.0, net.n_tier2)
    link_price = rng.uniform(0.05, 1.0, net.n_edges)
    prev_s = rng.uniform(0.0, 1.0, net.n_edges) * np.minimum(net.edge_capacity, 2.0)
    prev = Allocation(prev_s.copy(), np.minimum(prev_s * 1.2, net.edge_capacity), prev_s)
    return lam, tier2_price, link_price, prev


def solve_both(net: CloudNetwork, rng: np.random.Generator):
    lam, tier2_price, link_price, prev = random_slot(rng, net)
    out = []
    for backend in ("sequential", "batched"):
        sub = RegularizedSubproblem(net, SubproblemConfig(backend=backend))
        alloc, _ = sub.solve_reduced(lam, tier2_price, link_price, prev)
        out.append(alloc)
    return out


def assert_same_decision(net: CloudNetwork, seq: Allocation, bat: Allocation):
    totals_seq = np.zeros(net.n_tier2)
    totals_bat = np.zeros(net.n_tier2)
    np.add.at(totals_seq, net.edge_i, seq.x)
    np.add.at(totals_bat, net.edge_i, bat.x)
    np.testing.assert_allclose(totals_bat, totals_seq, rtol=1e-3, atol=1e-4)
    np.testing.assert_allclose(bat.y, seq.y, rtol=2e-2, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n_tier1=st.integers(1, 6))
def test_single_star_batch_equals_unbatched(seed, n_tier1):
    rng = np.random.default_rng(seed)
    net = random_star(rng, n_tier1)
    seq, bat = solve_both(net, rng)
    assert_same_decision(net, seq, bat)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_tier1=st.integers(2, 4))
def test_single_dense_block_batch_equals_unbatched(seed, n_tier1):
    rng = np.random.default_rng(seed)
    net = random_dense(rng, n_tier1)
    seq, bat = solve_both(net, rng)
    assert_same_decision(net, seq, bat)
