"""Property tests for shard partitioning (repro.shard.partition).

The coordinator restores a killed run's layout from its checkpoint and
*never* recomputes it — but the initial planning itself must also be
deterministic, or two coordinators started from the same inputs (e.g. a
re-run of a crashed launch before the first checkpoint) would hand
their shards different sub-networks.  Property: ``plan_partition`` is a
pure function of ``(network, n_shards, policy, demand)`` — repeated
calls, including on a freshly rebuilt equal network, yield the exact
same plan — and every plan it emits is a total, disjoint,
component-closed cover.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.model import Cloud, CloudNetwork, SLAEdge
from repro.shard import PARTITION_POLICIES, ShardPlan, plan_partition, sla_components


def build_network(component_fanouts: "list[int]") -> CloudNetwork:
    """A star forest: component ``i`` has ``component_fanouts[i]`` tier-1
    clouds on tier-2 cloud ``i`` (k=1, the shardable topology class)."""
    n2 = len(component_fanouts)
    tier2 = [Cloud(f"i{i}", 10.0 + i, 20.0) for i in range(n2)]
    tier1, edges = [], []
    for i, fanout in enumerate(component_fanouts):
        for _ in range(fanout):
            j = len(tier1)
            tier1.append(Cloud(f"j{j}", np.inf))
            edges.append(SLAEdge(i, j, 7.0, 12.0))
    return CloudNetwork(tier2, tier1, edges)


network_shapes = st.lists(st.integers(1, 4), min_size=2, max_size=8)
policies = st.sampled_from(PARTITION_POLICIES)


@given(
    shape=network_shapes,
    policy=policies,
    n_shards=st.integers(1, 4),
    seed=st.integers(0, 2**16),
    with_demand=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_repartitioning_is_deterministic(shape, policy, n_shards, seed, with_demand):
    n_shards = min(n_shards, len(shape))
    network = build_network(shape)
    demand = (
        np.random.default_rng(seed).uniform(0.1, 5.0, size=network.n_tier1)
        if with_demand
        else None
    )
    first = plan_partition(network, n_shards, policy, demand=demand)
    again = plan_partition(network, n_shards, policy, demand=demand)
    rebuilt = plan_partition(build_network(shape), n_shards, policy, demand=demand)
    assert first == again == rebuilt
    # The persisted form (what the layout checkpoint stores) round-trips.
    assert ShardPlan.from_json(first.to_json()) == first


@given(
    shape=network_shapes,
    policy=policies,
    n_shards=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_every_plan_is_a_component_closed_cover(shape, policy, n_shards):
    network = build_network(shape)
    n_shards = min(n_shards, len(shape))
    plan = plan_partition(network, n_shards, policy)
    seen = [j for assignment in plan.assignments for j in assignment]
    assert sorted(seen) == list(range(network.n_tier1))  # total + disjoint
    assert all(plan.assignments)  # no idle shard
    shard_of = {j: k for k, a in enumerate(plan.assignments) for j in a}
    for comp in sla_components(network):
        owners = {shard_of[j] for j in comp.tier1}
        assert len(owners) == 1  # component closure
    plan.validate(network)
