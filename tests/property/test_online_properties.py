"""Property-based end-to-end invariants of the online algorithm."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from conftest import make_instance, make_network  # noqa: E402

from repro.core import SubproblemConfig, RegularizedOnline, theorem1_ratio  # noqa: E402
from repro.model import check_trajectory, evaluate_cost  # noqa: E402
from repro.offline import solve_offline  # noqa: E402


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    T=st.integers(2, 8),
    epsilon=st.sampled_from([1e-3, 1e-2, 1.0]),
)
def test_online_feasible_on_random_instances(seed, T, epsilon):
    """Lemma 1 end to end: every per-slot decision is feasible for P1."""
    net = make_network(n_tier2=3, n_tier1=4, k=2)
    inst = make_instance(net, horizon=T, seed=seed)
    traj = RegularizedOnline(SubproblemConfig(epsilon=epsilon)).run(inst)
    rep = check_trajectory(inst, traj)
    assert rep.ok, rep.describe()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000), T=st.integers(2, 8))
def test_theorem1_bound_holds(seed, T):
    """The realized ratio never exceeds the worst-case guarantee."""
    net = make_network(n_tier2=3, n_tier1=4, k=2)
    inst = make_instance(net, horizon=T, seed=seed)
    eps = 1e-2
    on = evaluate_cost(
        inst, RegularizedOnline(SubproblemConfig(epsilon=eps)).run(inst)
    ).total
    off = solve_offline(inst).objective
    if off > 1e-9:
        assert on / off <= theorem1_ratio(net, eps) + 1e-6


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_tier2_totals_never_spike_above_need(seed):
    """Totals are bounded by max(previous totals, current requirement)."""
    net = make_network(n_tier2=3, n_tier1=4, k=2)
    inst = make_instance(net, horizon=6, seed=seed)
    traj = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
    X = traj.tier2_totals(net)
    total = X.sum(axis=1)
    demand = inst.workload.sum(axis=1)
    prev = 0.0
    for t in range(inst.horizon):
        # Aggregate allocation never exceeds what covering the current
        # demand from scratch plus the decayed past could justify.
        assert total[t] <= max(prev, demand[t]) + demand[t] + 1e-6
        prev = total[t]
