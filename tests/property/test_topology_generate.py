"""Property-based tests for the continent-scale topology generator.

The invariants the scenario corpus (and the sharded serve runtime)
lean on: SLA cover validity, one component per region under regional
SLAs, capacity feasibility of built instances, and bitwise seed
determinism.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.model.feasibility import check_instance_feasible, necessary_conditions
from repro.shard.partition import sla_components
from repro.topology.generate import GeoTopologyConfig, generate_topology

@st.composite
def configs(draw):
    n_regions = draw(st.integers(1, 6))
    pops = draw(st.integers(1, 3))
    regional = draw(st.booleans())
    k_max = pops if regional else n_regions * pops
    return GeoTopologyConfig(
        n_regions=n_regions,
        pops_per_region=pops,
        tier1_per_region=draw(st.integers(1, 4)),
        k=draw(st.integers(1, min(3, k_max))),
        regional_sla=regional,
        seed=draw(st.integers(0, 10_000)),
    )


@settings(max_examples=50, deadline=None)
@given(config=configs())
def test_sla_cover_is_valid(config):
    """Every tier-1 cloud gets k distinct in-range PoPs, nearest first,
    confined to its home region under regional SLAs."""
    topo = generate_topology(config)
    assert topo.assignment.shape == (config.n_tier1, config.k)
    for j in range(topo.n_tier1):
        row = topo.assignment[j]
        assert len(set(row.tolist())) == config.k
        assert ((row >= 0) & (row < topo.n_tier2)).all()
        assert (np.diff(topo.distance_km[j, row]) >= 0).all()
        if config.regional_sla:
            assert (topo.tier2_region[row] == topo.tier1_region[j]).all()


@settings(max_examples=50, deadline=None)
@given(config=configs())
def test_component_count_bounds(config):
    """Regional SLAs never span regions: every region contributes at
    least one and at most ``pops_per_region // k`` components (each
    component uses >= k of the region's PoPs), collapsing to exactly
    one when k == pops_per_region.  Global SLAs can merge regions."""
    topo = generate_topology(config)
    count = topo.sla_component_count()
    if config.regional_sla:
        per_region_max = config.pops_per_region // config.k
        assert config.n_regions <= count <= config.n_regions * per_region_max
        if config.k == config.pops_per_region:
            assert count == config.n_regions
    else:
        assert 1 <= count <= config.n_regions * config.pops_per_region


@settings(max_examples=25, deadline=None)
@given(config=configs(), wseed=st.integers(0, 10_000), horizon=st.integers(1, 6))
def test_built_instances_are_capacity_feasible(config, wseed, horizon):
    """The provisioning rule must always leave the instance servable."""
    topo = generate_topology(config)
    rng = np.random.default_rng(wseed)
    workload = 10.0 * rng.random((horizon, topo.n_tier1))
    instance = topo.build_instance(workload)
    assert necessary_conditions(instance).ok
    assert check_instance_feasible(instance).ok


@settings(max_examples=25, deadline=None)
@given(config=configs())
def test_seed_determinism_is_bitwise(config):
    a, b = generate_topology(config), generate_topology(config)
    assert a.fingerprint() == b.fingerprint()
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.tier1_lat, b.tier1_lat)
    np.testing.assert_array_equal(a.tier2_lon, b.tier2_lon)
    # ... and the seed is live: a different seed moves the placement.
    other = generate_topology(
        GeoTopologyConfig(
            n_regions=config.n_regions,
            pops_per_region=config.pops_per_region,
            tier1_per_region=config.tier1_per_region,
            k=config.k,
            regional_sla=config.regional_sla,
            seed=config.seed + 1,
        )
    )
    assert other.fingerprint() != a.fingerprint()


@settings(max_examples=25, deadline=None)
@given(config=configs(), wseed=st.integers(0, 10_000))
def test_generator_components_match_shard_partitioner(config, wseed):
    """The generator's union-find agrees with the shard partitioner's
    on components that carry tier-1 clouds (the partitionable units)."""
    topo = generate_topology(config)
    rng = np.random.default_rng(wseed)
    workload = 1.0 + rng.random((2, topo.n_tier1))
    network = topo.build_instance(workload).network
    components = [c for c in sla_components(network) if c.tier1]
    assert len(components) == topo.sla_component_count()
