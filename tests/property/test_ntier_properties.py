"""Property-based tests for the N-tier substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import Cloud
from repro.ntier import (
    LayeredNetwork,
    LayerLink,
    NTierConfig,
    NTierInstance,
    NTierRegularizedOnline,
    solve_ntier_offline,
)


def random_layered(rng, n_edge, n_mid, n_top):
    edge = [Cloud(f"e{j}", np.inf) for j in range(n_edge)]
    mid = [Cloud(f"m{u}", 6.0 + 4 * rng.random(), 30.0) for u in range(n_mid)]
    top = [Cloud(f"t{u}", 8.0 + 6 * rng.random(), 40.0) for u in range(n_top)]
    links = []
    for j in range(n_edge):
        for u in {j % n_mid, (j + 1) % n_mid}:
            links.append(LayerLink(1, j, u, 5.0 + 3 * rng.random(), 20.0))
    for u in range(n_mid):
        for v in {u % n_top, (u + 1) % n_top}:
            links.append(LayerLink(2, u, v, 6.0 + 3 * rng.random(), 20.0))
    return LayeredNetwork([edge, mid, top], links)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n_edge=st.integers(2, 4),
    n_mid=st.integers(2, 3),
    n_top=st.integers(1, 3),
    T=st.integers(2, 5),
)
def test_online_feasible_and_above_offline(seed, n_edge, n_mid, n_top, T):
    rng = np.random.default_rng(seed)
    net = random_layered(rng, n_edge, n_mid, n_top)
    lam = 0.4 + 0.8 * rng.random((T, n_edge))
    inst = NTierInstance(
        net,
        lam,
        0.5 + rng.random((T, net.n_upper_nodes)),
        0.2 + 0.2 * rng.random((T, net.n_links)),
    )
    online = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(inst)
    assert inst.check_feasible(online)
    off = solve_ntier_offline(inst)
    assert off.objective <= inst.cost(online) + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), n_edge=st.integers(2, 5))
def test_path_structure_invariants(seed, n_edge):
    rng = np.random.default_rng(seed)
    net = random_layered(rng, n_edge, 3, 2)
    # Each path visits exactly one node per upper tier, one link per stage.
    assert np.all(net.path_node_incidence.sum(axis=1) == 2)
    assert np.all(net.path_link_incidence.sum(axis=1) == 2)
    # Origin incidence partitions the paths.
    assert net.origin_incidence.sum() == net.n_paths
