"""Property-based tests for the cost model."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from conftest import make_instance, make_network  # noqa: E402

from repro.model import Allocation, Instance, Trajectory, evaluate_cost  # noqa: E402


def random_trajectory(rng, T, E, scale=2.0):
    s = rng.random((T, E)) * scale
    x = s + rng.random((T, E)) * 0.5
    y = s + rng.random((T, E)) * 0.5
    return Trajectory(x, y, s)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), T=st.integers(1, 12))
def test_cost_nonnegative(seed, T):
    net = make_network()
    inst = make_instance(net, horizon=T, seed=seed % 50)
    rng = np.random.default_rng(seed)
    traj = random_trajectory(rng, T, net.n_edges)
    cost = evaluate_cost(inst, traj)
    assert cost.total >= 0
    assert np.all(cost.per_slot >= -1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), T=st.integers(2, 12), cut=st.integers(1, 11))
def test_cost_additive_across_time_split(seed, T, cut):
    """Splitting a trajectory at t and chaining initial states preserves cost."""
    cut = min(cut, T - 1)
    net = make_network()
    inst = make_instance(net, horizon=T, seed=seed % 50)
    rng = np.random.default_rng(seed)
    traj = random_trajectory(rng, T, net.n_edges)

    full = evaluate_cost(inst, traj).total
    first = evaluate_cost(
        inst.slice(0, cut), Trajectory(traj.x[:cut], traj.y[:cut], traj.s[:cut])
    ).total
    boundary = traj.step(cut - 1)
    second = evaluate_cost(
        inst.slice(cut, T),
        Trajectory(traj.x[cut:], traj.y[cut:], traj.s[cut:]),
        initial=boundary,
    ).total
    assert full == pytest.approx(first + second, rel=1e-9, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), alpha=st.floats(0.1, 10.0))
def test_cost_linear_in_allocation_prices(seed, alpha):
    net = make_network()
    inst = make_instance(net, horizon=6, seed=seed % 50)
    rng = np.random.default_rng(seed)
    traj = random_trajectory(rng, 6, net.n_edges)
    base = evaluate_cost(inst, traj)
    scaled_inst = inst.with_data(
        tier2_price=inst.tier2_price * alpha, link_price=inst.link_price * alpha
    )
    scaled = evaluate_cost(scaled_inst, traj)
    assert scaled.allocation_total == pytest.approx(
        alpha * base.allocation_total, rel=1e-9
    )
    assert scaled.reconfiguration_total == pytest.approx(
        base.reconfiguration_total, rel=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_constant_trajectory_pays_reconfiguration_once(seed):
    net = make_network()
    inst = make_instance(net, horizon=8, seed=seed % 50)
    rng = np.random.default_rng(seed)
    level = rng.random(net.n_edges) + 0.1
    traj = Trajectory(
        np.tile(level, (8, 1)), np.tile(level, (8, 1)), np.tile(level * 0.5, (8, 1))
    )
    cost = evaluate_cost(inst, traj)
    X = net.aggregate_tier2(level)
    expected = float(X @ net.tier2_recon_price + level @ net.edge_recon_price)
    assert cost.reconfiguration_total == pytest.approx(expected, rel=1e-9)
