"""Property-based tests of the streaming telemetry pipeline.

The cross-process merge must behave like a CRDT join so the
aggregated registry never depends on scheduling:

- ``merge_snapshots`` is commutative and associative over per-process
  snapshots (integer-valued instruments make float addition exact, so
  equality is literal, not approximate);
- :class:`TelemetryAggregator` ingestion is idempotent and
  order-independent at the record level — re-tailing a sink or
  replaying records in any order yields the same merged state;
- delta-encoded sink replay reconstructs the source registry's final
  snapshot exactly, whatever the interleaving of mutations and
  flushes.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TelemetryAggregator,
    merge_snapshots,
    replay_sink,
)

_KINDS = {
    "slots_total": "counter",
    "misses_total": "counter",
    "depth": "gauge",
    "lat_seconds": "histogram",
}
metric_name = st.sampled_from(sorted(_KINDS))
label_sets = st.dictionaries(
    st.sampled_from(["path", "phase"]),
    st.sampled_from(["primary", "hold", "solve"]),
    max_size=2,
)
int_values = st.integers(min_value=0, max_value=10**6)


@st.composite
def populated_registry(draw):
    """A registry with integer-valued random instruments.

    Integer values keep every merge sum exact in float64, so the
    algebraic properties can assert literal equality.
    """
    reg = MetricsRegistry()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        name = draw(metric_name)
        labels = draw(label_sets)
        kind = _KINDS[name]
        if kind == "counter":
            reg.counter(name, **labels).inc(draw(int_values))
        elif kind == "gauge":
            reg.gauge(name, **labels).set(draw(int_values))
        else:
            hist = reg.histogram(name, **labels)
            for value in draw(st.lists(int_values, max_size=6)):
                hist.observe(value)
    return reg


snapshots = populated_registry().map(lambda reg: reg.snapshot())


@given(a=snapshots, b=snapshots)
@settings(max_examples=100, deadline=None)
def test_merge_commutative(a, b):
    assert merge_snapshots([a, b]) == merge_snapshots([b, a])


@given(a=snapshots, b=snapshots, c=snapshots)
@settings(max_examples=100, deadline=None)
def test_merge_associative(a, b, c):
    left = merge_snapshots([merge_snapshots([a, b]), c])
    right = merge_snapshots([a, merge_snapshots([b, c])])
    assert left == right == merge_snapshots([a, b, c])


@given(a=snapshots)
@settings(max_examples=50, deadline=None)
def test_merge_of_one_is_identity(a):
    assert merge_snapshots([a]) == a


@given(regs=st.lists(populated_registry(), min_size=1, max_size=4), data=st.data())
@settings(max_examples=50, deadline=None)
def test_aggregator_ingest_idempotent_and_order_free(tmp_path_factory, regs, data):
    tmp = tmp_path_factory.mktemp("telemetry")
    from repro.obs.telemetry import TelemetrySink

    records = []
    for i, reg in enumerate(regs):
        sink = TelemetrySink(tmp, registry=reg, label=f"s{i}")
        sink.close()
        import repro.obs.telemetry as tel

        records.extend(tel.read_sink(sink.path))

    baseline = TelemetryAggregator(tmp)
    baseline.poll()
    reference = baseline.merged_snapshot()

    # Any ingestion order, with duplicates, reaches the same state.
    shuffled = data.draw(st.permutations(records + records))
    agg = TelemetryAggregator(tmp)
    for record in shuffled:
        agg.ingest(json.loads(json.dumps(record)))
    assert agg.merged_snapshot() == reference
    # Re-polling the files on top of manual ingestion adds nothing.
    agg.poll()
    assert agg.merged_snapshot() == reference


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_delta_sink_replay_reconstructs_registry(tmp_path_factory, data):
    tmp = tmp_path_factory.mktemp("sink")
    from repro.obs.telemetry import TelemetrySink, read_sink

    reg = MetricsRegistry()
    sink = TelemetrySink(
        tmp,
        registry=reg,
        label="replay",
        full_every=data.draw(st.integers(min_value=1, max_value=4)),
    )
    for _ in range(data.draw(st.integers(min_value=0, max_value=8))):
        name = data.draw(metric_name)
        labels = data.draw(label_sets)
        kind = _KINDS[name]
        if kind == "counter":
            reg.counter(name, **labels).inc(data.draw(int_values))
        elif kind == "gauge":
            reg.gauge(name, **labels).set(data.draw(int_values))
        else:
            reg.histogram(name, **labels).observe(data.draw(int_values))
        if data.draw(st.booleans()):
            sink.flush()
    sink.close()  # final flush captures whatever is pending
    assert replay_sink(read_sink(sink.path)) == reg.snapshot()
