"""Property-based tests for the scalar problem and its algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    SingleResourceProblem,
    single_greedy,
    single_offline_optimal,
    single_online_decay,
)

CAPACITY = 10.0

workloads = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=20),
    elements=st.floats(0.0, CAPACITY, allow_nan=False),
)
prices = st.floats(0.01, 10.0)
recon = st.floats(0.0, 100.0)
eps = st.floats(1e-3, 100.0)


@settings(max_examples=60, deadline=None)
@given(lam=workloads, a=prices, b=recon, epsilon=eps)
def test_online_always_feasible(lam, a, b, epsilon):
    prob = SingleResourceProblem(lam, a, CAPACITY, b)
    x = single_online_decay(prob, epsilon)
    assert prob.is_feasible(x)


@settings(max_examples=60, deadline=None)
@given(lam=workloads, a=prices, b=recon, epsilon=eps)
def test_online_dominates_workload_and_decay(lam, a, b, epsilon):
    """x_t equals max(workload, decayed previous) — never above both."""
    prob = SingleResourceProblem(lam, a, CAPACITY, b)
    x = single_online_decay(prob, epsilon)
    prev = 0.0
    for t in range(len(lam)):
        assert x[t] >= lam[t] - 1e-12
        # Never exceeds max(workload, previous level) (no spurious buying).
        assert x[t] <= max(lam[t], prev) + 1e-9
        prev = x[t]


@settings(max_examples=40, deadline=None)
@given(lam=workloads, a=prices, b=recon)
def test_offline_lower_bounds_online_and_greedy(lam, a, b):
    prob = SingleResourceProblem(lam, a, CAPACITY, b)
    x_opt, c_opt = single_offline_optimal(prob)
    assert prob.is_feasible(x_opt)
    assert c_opt <= prob.cost(single_greedy(prob)) + 1e-6
    assert c_opt <= prob.cost(single_online_decay(prob, 0.1)) + 1e-6


@settings(max_examples=40, deadline=None)
@given(lam=workloads, a=prices, b=recon)
def test_greedy_optimal_when_recon_free(lam, a, b):
    """With b = 0, following the workload is offline-optimal."""
    prob = SingleResourceProblem(lam, a, CAPACITY, 0.0)
    _, c_opt = single_offline_optimal(prob)
    assert prob.cost(single_greedy(prob)) == pytest.approx(c_opt, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(lam=workloads, a=prices, b=st.floats(0.1, 100.0))
def test_cost_monotone_in_recon_price(lam, a, b):
    prob_lo = SingleResourceProblem(lam, a, CAPACITY, b)
    prob_hi = SingleResourceProblem(lam, a, CAPACITY, 2 * b)
    _, c_lo = single_offline_optimal(prob_lo)
    _, c_hi = single_offline_optimal(prob_hi)
    assert c_hi >= c_lo - 1e-8


@settings(max_examples=40, deadline=None)
@given(lam=workloads, a=prices, b=recon, scale=st.floats(0.1, 5.0))
def test_offline_cost_scales_with_prices(lam, a, b, scale):
    """Scaling every price scales the optimal cost (LP homogeneity)."""
    prob = SingleResourceProblem(lam, a, CAPACITY, b)
    scaled = SingleResourceProblem(lam, a * scale, CAPACITY, b * scale)
    _, c1 = single_offline_optimal(prob)
    _, c2 = single_offline_optimal(scaled)
    assert c2 == pytest.approx(scale * c1, rel=1e-6, abs=1e-8)


@settings(max_examples=40, deadline=None)
@given(lam=workloads, a=prices, b=recon)
def test_workload_domination(lam, a, b):
    """A pointwise-larger workload can only cost more offline."""
    prob = SingleResourceProblem(lam, a, CAPACITY, b)
    bigger = SingleResourceProblem(
        np.minimum(lam * 1.3, CAPACITY), a, CAPACITY, b
    )
    _, c1 = single_offline_optimal(prob)
    _, c2 = single_offline_optimal(bigger)
    assert c2 >= c1 - 1e-8
