"""Property-based round-trip tests for the observability layer.

Two serialization surfaces must be lossless for aggregates:

- ``StepStats.to_dict`` / ``from_dict`` (checkpoint files carry these);
- metrics-registry ``snapshot`` / ``registry_from_snapshot`` and its
  Prometheus text rendering (``--metrics`` output, CI obs-smoke).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.engine.stats import StepStats
from repro.obs.export import parse_prometheus, to_prometheus
from repro.obs.metrics import MetricsRegistry, registry_from_snapshot

# ----------------------------------------------------------------------
# StepStats round trip
# ----------------------------------------------------------------------
step_stats = st.builds(
    StepStats,
    t=st.integers(min_value=0, max_value=10**6),
    wall_time=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    n_solves=st.integers(min_value=0, max_value=100),
    newton_iters=st.integers(min_value=0, max_value=10**4),
    warm_attempts=st.integers(min_value=0, max_value=100),
    warm_hits=st.integers(min_value=0, max_value=100),
    fallbacks=st.integers(min_value=0, max_value=100),
    backends=st.tuples(st.sampled_from(["barrier", "lp", "greedy"])),
)


@given(stats=step_stats)
@settings(max_examples=200, deadline=None)
def test_step_stats_round_trip(stats):
    assert StepStats.from_dict(stats.to_dict()) == stats


@given(stats=step_stats)
@settings(max_examples=50, deadline=None)
def test_step_stats_dict_json_serializable(stats):
    payload = stats.to_dict()
    assert StepStats.from_dict(json.loads(json.dumps(payload))) == stats


# ----------------------------------------------------------------------
# Metrics snapshot round trip
# ----------------------------------------------------------------------
metric_name = st.sampled_from(
    ["slots_total", "lat_seconds", "depth", "misses_total", "work_seconds"]
)
label_sets = st.dictionaries(
    st.sampled_from(["path", "phase", "backend"]),
    st.sampled_from(["primary", "hold", "greedy", "solve", "barrier"]),
    max_size=2,
)
finite_values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def populated_registry(draw):
    """A registry with random counters/gauges/histograms populated.

    Name->kind assignment is made consistent (a registry enforces one
    kind per family) by deriving the kind from the name.
    """
    reg = MetricsRegistry()
    kinds = {
        "slots_total": "counter",
        "misses_total": "counter",
        "depth": "gauge",
        "lat_seconds": "histogram",
        "work_seconds": "histogram",
    }
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        name = draw(metric_name)
        labels = draw(label_sets)
        kind = kinds[name]
        if kind == "counter":
            reg.counter(name, **labels).inc(draw(finite_values))
        elif kind == "gauge":
            reg.gauge(name, **labels).set(draw(finite_values))
        else:
            hist = reg.histogram(name, **labels)
            for value in draw(
                st.lists(finite_values, min_size=0, max_size=8)
            ):
                hist.observe(value)
    return reg


@given(reg=populated_registry())
@settings(max_examples=100, deadline=None)
def test_snapshot_registry_round_trip(reg):
    snap = reg.snapshot()
    assert registry_from_snapshot(snap).snapshot() == snap


@given(reg=populated_registry())
@settings(max_examples=50, deadline=None)
def test_snapshot_survives_json(reg):
    snap = reg.snapshot()
    assert registry_from_snapshot(json.loads(json.dumps(snap))).snapshot() == snap


@given(reg=populated_registry())
@settings(max_examples=50, deadline=None)
def test_prometheus_text_parses_and_preserves_scalars(reg):
    snap = reg.snapshot()
    samples = parse_prometheus(to_prometheus(snap))
    for entry in snap["metrics"]:
        key_labels = tuple(sorted(entry["labels"].items()))
        if entry["type"] == "histogram":
            assert samples[(entry["name"] + "_count", key_labels)] == entry["count"]
            assert samples[(entry["name"] + "_sum", key_labels)] == entry["sum"]
            # The +Inf bucket always equals the total count.
            inf_key = tuple(sorted(list(entry["labels"].items()) + [("le", "+Inf")]))
            assert samples[(entry["name"] + "_bucket", inf_key)] == entry["count"]
        else:
            assert samples[(entry["name"], key_labels)] == entry["value"]
