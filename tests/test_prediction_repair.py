"""Tests for the minimal-cost top-up repair."""

import numpy as np
import pytest

from repro.model import Allocation
from repro.prediction import topup_repair

from conftest import make_instance, make_network


class TestRepair:
    def test_identity_when_plan_covers(self, small_instance):
        net = small_instance.network
        counts = net.aggregate_tier1(np.ones(net.n_edges))
        s = small_instance.workload[0][net.edge_j] / counts[net.edge_j]
        planned = Allocation(s.copy(), s.copy(), s.copy())
        prev = Allocation.zeros(net.n_edges)
        applied = topup_repair(small_instance, 0, planned, prev)
        np.testing.assert_array_equal(applied.x, planned.x)
        np.testing.assert_array_equal(applied.s, planned.s)

    def test_topup_covers_realized_demand(self, small_instance):
        net = small_instance.network
        # Plan covers only half of the realized workload.
        counts = net.aggregate_tier1(np.ones(net.n_edges))
        s = 0.5 * small_instance.workload[0][net.edge_j] / counts[net.edge_j]
        planned = Allocation(s.copy(), s.copy(), s.copy())
        prev = Allocation.zeros(net.n_edges)
        applied = topup_repair(small_instance, 0, planned, prev)
        cov = net.aggregate_tier1(applied.s)
        assert np.all(cov >= small_instance.workload[0] - 1e-6)

    def test_never_releases_planned_physical_allocation(self, small_instance):
        net = small_instance.network
        counts = net.aggregate_tier1(np.ones(net.n_edges))
        s = 0.5 * small_instance.workload[0][net.edge_j] / counts[net.edge_j]
        planned = Allocation(s.copy(), s.copy(), s.copy())
        prev = Allocation.zeros(net.n_edges)
        applied = topup_repair(small_instance, 0, planned, prev)
        assert np.all(applied.x >= planned.x - 1e-9)
        assert np.all(applied.y >= planned.y - 1e-9)

    def test_capacity_exceeding_plan_is_capped(self, small_instance):
        """A plan beyond link capacity must not make the repair fail."""
        net = small_instance.network
        big = np.full(net.n_edges, 100.0)
        planned = Allocation(big.copy(), big.copy(), big.copy())
        prev = Allocation.zeros(net.n_edges)
        applied = topup_repair(small_instance, 0, planned, prev)
        assert np.all(applied.y <= net.edge_capacity + 1e-6)
        cov = net.aggregate_tier1(applied.s)
        assert np.all(cov >= small_instance.workload[0] - 1e-6)
