"""Tests for forecast oracles."""

import numpy as np
import pytest

from repro.prediction import ExactPredictor, GaussianNoisePredictor

from conftest import make_instance, make_network


class TestExactPredictor:
    def test_returns_true_slice(self, small_instance):
        p = ExactPredictor()
        win = p.window(small_instance, 3, 4)
        np.testing.assert_array_equal(win.workload, small_instance.workload[3:7])

    def test_truncates_at_horizon(self, small_instance):
        p = ExactPredictor()
        win = p.window(small_instance, small_instance.horizon - 2, 10)
        assert win.horizon == 2


class TestGaussianNoisePredictor:
    def test_zero_error_equals_truth(self, small_instance):
        p = GaussianNoisePredictor(0.0, seed=1)
        win = p.window(small_instance, 0, 5)
        np.testing.assert_allclose(win.workload, small_instance.workload[0:5])

    def test_noise_magnitude_scales_with_error(self, small_instance):
        lo = GaussianNoisePredictor(0.01, seed=2).window(small_instance, 0, 10)
        hi = GaussianNoisePredictor(0.5, seed=2).window(small_instance, 0, 10)
        true = small_instance.workload[0:10]
        assert np.abs(hi.workload - true).mean() > np.abs(lo.workload - true).mean()

    def test_frozen_forecasts_consistent(self, small_instance):
        p = GaussianNoisePredictor(0.2, seed=3, frozen=True)
        first = p.window(small_instance, 2, 4).workload.copy()
        again = p.window(small_instance, 2, 4).workload
        np.testing.assert_array_equal(first, again)
        # Overlapping window reuses the same slot forecasts.
        overlap = p.window(small_instance, 3, 2).workload
        np.testing.assert_array_equal(overlap[0], first[1])

    def test_reset_reproduces_stream(self, small_instance):
        p = GaussianNoisePredictor(0.2, seed=4)
        a = p.window(small_instance, 0, 6).workload.copy()
        p.reset()
        b = p.window(small_instance, 0, 6).workload
        np.testing.assert_array_equal(a, b)

    def test_forecasts_stay_feasible(self, small_instance):
        """Noisy workloads must remain within the capacity envelope."""
        net = small_instance.network
        p = GaussianNoisePredictor(2.0, seed=5)  # absurdly noisy
        link_sum = net.aggregate_tier1(net.edge_capacity)
        for t in range(0, small_instance.horizon, 3):
            win = p.window(small_instance, t, 3)
            assert np.all(win.workload >= 0)
            assert np.all(win.workload <= link_sum[None, :] + 1e-9)
            assert np.all(win.workload.sum(axis=1) <= net.tier2_capacity.sum() + 1e-9)
            assert np.all(win.tier2_price >= 0)

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            GaussianNoisePredictor(-0.1)


class TestDecayingAccuracyPredictor:
    def test_error_grows_with_lead(self, small_instance):
        """Average forecast error over many resets grows with lead time."""
        from repro.prediction import DecayingAccuracyPredictor

        errs = np.zeros(6)
        for seed in range(30):
            p = DecayingAccuracyPredictor(0.1, growth=1.0, seed=seed)
            win = p.window(small_instance, 0, 6)
            errs += np.abs(win.workload - small_instance.workload[0:6]).mean(axis=1)
        assert errs[5] > errs[0]
        assert errs[4] > errs[1]

    def test_refresh_on_closer_decision_time(self, small_instance):
        """Re-predicting a slot with a smaller lead redraws the forecast."""
        from repro.prediction import DecayingAccuracyPredictor

        p = DecayingAccuracyPredictor(0.3, growth=2.0, seed=1)
        far = p.window(small_instance, 0, 6).workload[5].copy()  # lead 5
        near = p.window(small_instance, 5, 1).workload[0]        # lead 0
        assert not np.allclose(far, near)
        # And the refreshed (closer) forecast is kept afterwards.
        again = p.window(small_instance, 5, 1).workload[0]
        np.testing.assert_array_equal(near, again)

    def test_growth_validation(self):
        from repro.prediction import DecayingAccuracyPredictor

        with pytest.raises(ValueError):
            DecayingAccuracyPredictor(0.1, growth=-1.0)

    def test_works_with_controllers(self, small_instance):
        from repro.model import check_trajectory
        from repro.prediction import (
            DecayingAccuracyPredictor,
            RegularizedRecedingHorizonControl,
        )

        ctrl = RegularizedRecedingHorizonControl(
            3, predictor=DecayingAccuracyPredictor(0.15, seed=2)
        )
        traj = ctrl.run(small_instance)
        assert check_trajectory(small_instance, traj).ok
