"""Tests for the single-resource special case (Section III-C)."""

import numpy as np
import pytest

from repro.core import (
    SingleResourceProblem,
    single_fhc,
    single_greedy,
    single_offline_optimal,
    single_online_decay,
    single_rhc,
    vee_workload,
)


def problem(lam, a=1.0, C=10.0, b=5.0):
    return SingleResourceProblem(np.asarray(lam, float), a, C, b)


class TestProblemValidation:
    def test_workload_above_capacity_rejected(self):
        with pytest.raises(ValueError, match="exceeds capacity"):
            problem([11.0], C=10.0)

    def test_negative_recon_rejected(self):
        with pytest.raises(ValueError, match="recon_price"):
            problem([1.0], b=-1.0)

    def test_cost_hand_computed(self):
        p = problem([2.0, 1.0, 3.0], a=1.0, b=10.0)
        x = np.array([2.0, 2.0, 3.0])
        # Alloc: 2 + 2 + 3 = 7; recon: 10*(2 + 0 + 1) = 30.
        assert p.cost(x) == pytest.approx(37.0)

    def test_is_feasible(self):
        p = problem([2.0, 1.0])
        assert p.is_feasible(np.array([2.0, 1.5]))
        assert not p.is_feasible(np.array([1.0, 1.5]))
        assert not p.is_feasible(np.array([11.0, 1.5]))


class TestOnlineDecay:
    def test_covers_workload(self):
        lam = vee_workload(5.0, 1.0, 6, 6)
        x = single_online_decay(problem(lam), epsilon=0.1)
        assert np.all(x >= lam - 1e-12)

    def test_follows_increasing_workload_exactly(self):
        lam = np.linspace(1.0, 8.0, 10)
        x = single_online_decay(problem(lam), epsilon=0.1)
        np.testing.assert_allclose(x, lam)

    def test_decay_matches_closed_form(self):
        """On a drop to zero demand, x_t follows eq. (6) exactly."""
        C, b, eps, a = 10.0, 5.0, 0.1, 1.0
        lam = np.array([8.0] + [0.0] * 5)
        x = single_online_decay(problem(lam, a=a, C=C, b=b), epsilon=eps)
        expected = 8.0
        decay = (1.0 + C / eps) ** (-a / b)
        for t in range(1, 6):
            expected = decay * (expected + eps) - eps
            assert x[t] == pytest.approx(max(expected, 0.0))

    def test_decay_is_monotone_decreasing_after_peak(self):
        lam = np.array([9.0] + [0.0] * 8)
        x = single_online_decay(problem(lam, b=50.0), epsilon=1e-2)
        assert np.all(np.diff(x[0:]) <= 1e-12)

    def test_zero_recon_price_reduces_to_greedy(self):
        lam = vee_workload(5.0, 1.0, 5, 5)
        p = problem(lam, b=0.0)
        np.testing.assert_allclose(
            single_online_decay(p, epsilon=0.1), single_greedy(p)
        )

    def test_larger_b_decays_slower(self):
        lam = np.array([9.0] + [0.0] * 5)
        slow = single_online_decay(problem(lam, b=100.0), epsilon=0.1)
        fast = single_online_decay(problem(lam, b=1.0), epsilon=0.1)
        assert np.all(slow[1:] >= fast[1:] - 1e-12)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ValueError, match="epsilon"):
            single_online_decay(problem([1.0]), epsilon=0.0)

    def test_never_exceeds_capacity(self):
        lam = np.array([10.0, 0.0, 10.0, 0.0])
        x = single_online_decay(problem(lam, C=10.0, b=1e4), epsilon=1e-3)
        assert np.all(x <= 10.0 + 1e-12)


class TestOfflineOptimal:
    def test_lower_bound_everywhere(self):
        rng = np.random.default_rng(0)
        lam = rng.random(12) * 8
        p = problem(lam, a=rng.random(12) + 0.1, b=7.0)
        x_opt, c_opt = single_offline_optimal(p)
        assert p.is_feasible(x_opt)
        for algo in (single_greedy(p), single_online_decay(p, 0.1)):
            assert c_opt <= p.cost(algo) + 1e-8

    def test_flat_workload_no_extra_recon(self):
        p = problem([3.0] * 5, b=100.0)
        x, c = single_offline_optimal(p)
        np.testing.assert_allclose(x, 3.0, atol=1e-9)
        assert c == pytest.approx(5 * 3.0 + 100.0 * 3.0)

    def test_bridges_valley_when_recon_expensive(self):
        """Lemma 2: for b >> sum of prices the optimum holds the peak."""
        lam = vee_workload(5.0, 0.5, 6, 6)
        p = problem(lam, a=0.1, b=1000.0)
        x, _ = single_offline_optimal(p)
        np.testing.assert_allclose(x, 5.0, atol=1e-6)

    def test_follows_workload_when_recon_free(self):
        lam = vee_workload(5.0, 0.5, 4, 4)
        p = problem(lam, b=0.0)
        x, _ = single_offline_optimal(p)
        np.testing.assert_allclose(x, lam, atol=1e-9)

    def test_terminal_pinning_charges_rampup(self):
        p = problem([1.0, 1.0], a=1.0, b=10.0)
        x_free, c_free = single_offline_optimal(p)
        x_pin, c_pin = single_offline_optimal(p, terminal=5.0)
        # Pinned version must pre-pay the jump to 5: +10*(5-1).
        assert c_pin == pytest.approx(c_free + 40.0)


class TestWindowedControls:
    def test_window_one_is_greedy(self):
        rng = np.random.default_rng(1)
        lam = rng.random(10) * 5
        p = problem(lam, b=20.0)
        np.testing.assert_allclose(single_fhc(p, 1), single_greedy(p), atol=1e-9)
        np.testing.assert_allclose(single_rhc(p, 1), single_greedy(p), atol=1e-9)

    def test_full_window_fhc_is_offline(self):
        rng = np.random.default_rng(2)
        lam = rng.random(8) * 5
        p = problem(lam, b=20.0)
        x_opt, c_opt = single_offline_optimal(p)
        assert p.cost(single_fhc(p, 8)) == pytest.approx(c_opt, rel=1e-8)

    def test_fhc_rhc_feasible(self):
        lam = vee_workload(5.0, 1.0, 5, 5)
        p = problem(lam, b=30.0)
        for w in (2, 3, 4):
            assert p.is_feasible(single_fhc(p, w))
            assert p.is_feasible(single_rhc(p, w))

    def test_window_validation(self):
        p = problem([1.0])
        with pytest.raises(ValueError):
            single_fhc(p, 0)
        with pytest.raises(ValueError):
            single_rhc(p, 0)


class TestTheorems2And3:
    def test_greedy_ratio_grows_with_recon_price(self):
        """Theorem 2 on repeated valleys: ratio grows with b."""
        one = vee_workload(1.0, 0.05, 8, 8)
        lam = np.concatenate([one] + [one[1:]] * 3)
        ratios = []
        for b in (1.0, 10.0, 100.0, 1000.0):
            p = SingleResourceProblem(lam, 0.05, 1.0, b)
            _, opt = single_offline_optimal(p)
            ratios.append(p.cost(single_greedy(p)) / opt)
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))
        assert ratios[-1] > 2.5

    def test_fhc_blows_up_but_online_does_not(self):
        """Theorem 3: short-window FHC degrades; online stays bounded."""
        one = vee_workload(1.0, 0.05, 10, 10)
        lam = np.concatenate([one] + [one[1:]] * 3)
        p = SingleResourceProblem(lam, 0.05, 1.0, 500.0)
        _, opt = single_offline_optimal(p)
        fhc_ratio = p.cost(single_fhc(p, 3)) / opt
        online_ratio = p.cost(single_online_decay(p, epsilon=1e-2)) / opt
        assert fhc_ratio > 2.0
        assert online_ratio < 1.5
        assert online_ratio < fhc_ratio


class TestVeeWorkload:
    def test_shape(self):
        lam = vee_workload(4.0, 1.0, 4, 5)
        assert lam[0] == 4.0 and lam[-1] == 4.0
        assert lam.min() == 1.0
        assert len(lam) == 8  # 4 + 5 - 1 (shared valley point)

    def test_strict_monotonicity(self):
        lam = vee_workload(4.0, 1.0, 5, 5)
        k = int(np.argmin(lam))
        assert np.all(np.diff(lam[: k + 1]) < 0)
        assert np.all(np.diff(lam[k:]) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            vee_workload(1.0, 2.0, 4, 4)
        with pytest.raises(ValueError):
            vee_workload(2.0, 1.0, 1, 4)
