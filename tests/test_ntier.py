"""Tests for the N-tier generalization."""

import numpy as np
import pytest

from repro.model import Cloud
from repro.ntier import (
    LayeredNetwork,
    LayerLink,
    NTierConfig,
    NTierGreedy,
    NTierInstance,
    NTierRegularizedOnline,
    solve_ntier_offline,
)


def three_tier(seed=0, T=12):
    edge = [Cloud(f"e{j}", np.inf) for j in range(4)]
    mid = [Cloud(f"m{u}", 8.0, 40.0) for u in range(3)]
    top = [Cloud(f"t{u}", 12.0, 60.0) for u in range(2)]
    links = []
    for j in range(4):
        for u in (j % 3, (j + 1) % 3):
            links.append(LayerLink(1, j, u, 6.0, 25.0))
    for u in range(3):
        for v in (0, 1):
            links.append(LayerLink(2, u, v, 8.0, 25.0))
    net = LayeredNetwork([edge, mid, top], links)
    rng = np.random.default_rng(seed)
    base = 1.0 + 0.8 * np.sin(np.arange(T) * 2 * np.pi / 8)
    lam = np.clip(base[:, None] * (1 + 0.1 * rng.random((T, 4))), 0.05, None)
    node_price = 1.0 + 0.3 * rng.random((T, net.n_upper_nodes))
    link_price = 0.4 * np.ones((T, net.n_links))
    return NTierInstance(net, lam, node_price, link_price)


class TestLayeredNetwork:
    def test_path_enumeration_counts(self):
        inst = three_tier()
        net = inst.network
        # Each edge cloud: 2 mid choices x 2 top choices = 4 paths.
        assert net.n_paths == 4 * 4

    def test_two_tier_reduces_to_edges(self):
        edge = [Cloud("e0", np.inf), Cloud("e1", np.inf)]
        top = [Cloud("t0", 5.0), Cloud("t1", 5.0)]
        links = [LayerLink(1, 0, 0, 3.0), LayerLink(1, 1, 1, 3.0), LayerLink(1, 1, 0, 3.0)]
        net = LayeredNetwork([edge, top], links)
        assert net.n_paths == 3  # one path per link

    def test_uncovered_edge_cloud_rejected(self):
        edge = [Cloud("e0", np.inf), Cloud("e1", np.inf)]
        top = [Cloud("t0", 5.0)]
        with pytest.raises(ValueError, match="no path"):
            LayeredNetwork([edge, top], [LayerLink(1, 0, 0, 3.0)])

    def test_needs_two_tiers(self):
        with pytest.raises(ValueError, match="two tiers"):
            LayeredNetwork([[Cloud("a", 1.0)]], [])

    def test_max_paths_guard(self):
        edge = [Cloud("e0", np.inf)]
        mid = [Cloud(f"m{u}", 5.0) for u in range(4)]
        top = [Cloud(f"t{u}", 5.0) for u in range(4)]
        links = [LayerLink(1, 0, u, 3.0) for u in range(4)]
        links += [LayerLink(2, u, v, 3.0) for u in range(4) for v in range(4)]
        with pytest.raises(ValueError, match="max_paths"):
            LayeredNetwork([edge, mid, top], links, max_paths=8)

    def test_flat_node_indexing_roundtrip(self):
        net = three_tier().network
        assert net.node_flat_index(2, 1) == 1
        assert net.node_flat_index(3, 0) == 3
        assert net.tier_of_flat_node(0) == 2
        assert net.tier_of_flat_node(4) == 3

    def test_incidence_shapes(self):
        net = three_tier().network
        assert net.path_node_incidence.shape == (net.n_paths, net.n_upper_nodes)
        assert net.path_link_incidence.shape == (net.n_paths, net.n_links)
        # Every path touches exactly one node per upper tier and one
        # link per stage.
        assert np.all(net.path_node_incidence.sum(axis=1) == 2)
        assert np.all(net.path_link_incidence.sum(axis=1) == 2)


class TestOffline:
    def test_feasible_and_scored(self):
        inst = three_tier()
        res = solve_ntier_offline(inst)
        assert inst.check_feasible(res.trajectory)
        assert res.objective == pytest.approx(inst.cost(res.trajectory), rel=1e-6)

    def test_lower_bounds_greedy_and_online(self):
        inst = three_tier()
        off = solve_ntier_offline(inst).objective
        assert off <= inst.cost(NTierGreedy().run(inst)) + 1e-6
        online = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(inst)
        assert off <= inst.cost(online) + 1e-6


class TestOnline:
    def test_feasible(self):
        inst = three_tier()
        traj = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(inst)
        assert inst.check_feasible(traj)

    def test_smoother_than_greedy_on_vee(self):
        """With expensive reconfiguration the online algorithm beats greedy."""
        inst = three_tier(T=10)
        vee = np.concatenate([np.linspace(1.8, 0.1, 5), np.linspace(0.1, 1.8, 5)])
        inst = NTierInstance(
            inst.network,
            vee[:, None] * np.ones((1, 4)),
            0.02 * np.ones((10, inst.network.n_upper_nodes)),
            0.02 * np.ones((10, inst.network.n_links)),
        )
        online = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(inst)
        greedy = NTierGreedy().run(inst)
        assert inst.cost(online) < inst.cost(greedy)

    def test_hedging_spreads_overflow(self):
        """Nodes too small for the total demand force background capacity."""
        edge = [Cloud("e0", np.inf)]
        top = [Cloud("t0", 1.5, 10.0), Cloud("t1", 1.5, 10.0)]
        links = [LayerLink(1, 0, 0, 2.0, 5.0), LayerLink(1, 0, 1, 2.0, 5.0)]
        net = LayeredNetwork([edge, top], links)
        lam = np.full((1, 1), 2.0)  # Lambda=2 > C=1.5 per node
        inst = NTierInstance(net, lam, np.array([[1.0, 50.0]]), 0.01 * np.ones((1, 2)))
        traj = NTierRegularizedOnline(NTierConfig(epsilon=1e-2, hedging=True)).run(inst)
        # (3d) analogue: the expensive node holds >= Lambda - C_0 = 0.5.
        assert traj.X[0, 1] >= 0.5 - 1e-6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NTierConfig(epsilon=0.0)


class TestInstanceValidation:
    def test_shape_checks(self):
        inst = three_tier()
        with pytest.raises(ValueError):
            NTierInstance(
                inst.network,
                inst.workload[:, :-1],
                inst.node_price,
                inst.link_price,
            )

    def test_slice(self):
        inst = three_tier(T=10)
        sub = inst.slice(2, 6)
        assert sub.horizon == 4
        np.testing.assert_array_equal(sub.workload, inst.workload[2:6])

    def test_cost_hand_computed(self):
        inst = three_tier(T=2)
        net = inst.network
        from repro.ntier.problem import NTierTrajectory

        X = np.ones((2, net.n_upper_nodes))
        Y = np.ones((2, net.n_links))
        s = np.zeros((2, net.n_paths))
        traj = NTierTrajectory(X, Y, s)
        expected = (
            inst.node_price.sum() + inst.link_price.sum()
            + net.node_recon_price.sum() + net.link_recon_price.sum()
        )
        assert inst.cost(traj) == pytest.approx(expected)


class TestNTierPrediction:
    def _vee_instance(self):
        inst = three_tier(T=12)
        vee = np.concatenate([np.linspace(1.8, 0.1, 6), np.linspace(0.1, 1.8, 6)])
        return NTierInstance(
            inst.network,
            vee[:, None] * np.ones((1, 4)),
            0.02 * np.ones((12, inst.network.n_upper_nodes)),
            0.02 * np.ones((12, inst.network.n_links)),
        )

    def test_window_validation(self):
        from repro.ntier import NTierFHC, NTierRFHC

        with pytest.raises(ValueError):
            NTierFHC(0)
        with pytest.raises(ValueError):
            NTierRFHC(0)

    def test_fhc_feasible_and_above_offline(self):
        from repro.ntier import NTierFHC

        inst = self._vee_instance()
        traj = NTierFHC(3).run(inst)
        assert traj.horizon == inst.horizon
        assert inst.check_feasible(traj)
        assert inst.cost(traj) >= solve_ntier_offline(inst).objective - 1e-6

    def test_rfhc_bounded_by_online(self):
        """Theorem-4 analogue: N-tier RFHC <= N-tier online."""
        from repro.ntier import NTierRFHC

        inst = self._vee_instance()
        cfg = NTierConfig(epsilon=1e-2)
        online_cost = inst.cost(NTierRegularizedOnline(cfg).run(inst))
        for w in (2, 4):
            traj = NTierRFHC(w, cfg).run(inst)
            assert inst.check_feasible(traj)
            assert inst.cost(traj) <= online_cost * (1 + 1e-6), f"w={w}"

    def test_rfhc_window_one_is_online(self):
        from repro.ntier import NTierRFHC

        inst = self._vee_instance()
        cfg = NTierConfig(epsilon=1e-2)
        c_rfhc = inst.cost(NTierRFHC(1, cfg).run(inst))
        c_on = inst.cost(NTierRegularizedOnline(cfg).run(inst))
        assert c_rfhc == pytest.approx(c_on, rel=1e-4)

    def test_rfhc_beats_fhc_on_vee(self):
        from repro.ntier import NTierFHC, NTierRFHC

        inst = self._vee_instance()
        c_fhc = inst.cost(NTierFHC(3).run(inst))
        c_rfhc = inst.cost(NTierRFHC(3, NTierConfig(epsilon=1e-2)).run(inst))
        assert c_rfhc <= c_fhc + 1e-6

    def test_pinned_terminal_charged(self):
        inst = self._vee_instance().slice(0, 4)
        net = inst.network
        free = solve_ntier_offline(inst)
        big = np.full(net.n_upper_nodes, 2.0)
        bigY = np.full(net.n_links, 2.0)
        pinned = solve_ntier_offline(inst, terminal_X=big, terminal_Y=bigY)
        assert pinned.objective > free.objective

    def test_terminal_args_must_pair(self):
        inst = self._vee_instance().slice(0, 2)
        with pytest.raises(ValueError, match="together"):
            solve_ntier_offline(inst, terminal_X=np.zeros(7))
