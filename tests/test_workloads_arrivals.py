"""Tests for the request-level arrival simulator."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    aggregate_hourly,
    hourly_counts_from_profile,
    simulate_arrivals,
)


class TestSimulateArrivals:
    def test_counts_match_rate_in_expectation(self):
        rate = np.full(200, 50.0)
        times = simulate_arrivals(rate, seed=0)
        counts = aggregate_hourly(times, horizon=200)
        assert counts.mean() == pytest.approx(50.0, rel=0.05)
        # Poisson variance ~ mean.
        assert counts.var() == pytest.approx(50.0, rel=0.3)

    def test_zero_rate_hours_empty(self):
        rate = np.array([0.0, 100.0, 0.0])
        counts = aggregate_hourly(simulate_arrivals(rate, seed=1), horizon=3)
        assert counts[0] == 0 and counts[2] == 0
        assert counts[1] > 50

    def test_times_sorted_and_in_range(self):
        rate = np.array([5.0, 5.0, 5.0])
        times = simulate_arrivals(rate, seed=2)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0 and times.max() < 3.0

    def test_deterministic_with_seed(self):
        rate = np.full(10, 7.0)
        np.testing.assert_array_equal(
            simulate_arrivals(rate, seed=3), simulate_arrivals(rate, seed=3)
        )

    def test_event_cap(self):
        with pytest.raises(ValueError, match="max_events"):
            simulate_arrivals(np.array([100.0]), seed=0, max_events=10)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_arrivals(np.array([-1.0]))


class TestAggregation:
    def test_hand_example(self):
        counts = aggregate_hourly(np.array([0.1, 0.9, 1.5, 2.0, 2.2]), horizon=3)
        np.testing.assert_array_equal(counts, [2, 1, 2])

    def test_truncates_beyond_horizon(self):
        counts = aggregate_hourly(np.array([0.5, 5.5]), horizon=2)
        np.testing.assert_array_equal(counts, [1, 0])

    def test_empty(self):
        counts = aggregate_hourly(np.array([]))
        assert counts.shape == (1,)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            aggregate_hourly(np.array([-0.5]))


class TestEndToEnd:
    def test_profile_roundtrip_noise_shrinks_with_rate(self):
        """Sampling noise is relatively smaller at higher rates."""
        lo = hourly_counts_from_profile(np.full(300, 20.0), seed=4)
        hi = hourly_counts_from_profile(np.full(300, 2000.0), seed=4)
        rel_lo = np.abs(lo - 20.0).mean() / 20.0
        rel_hi = np.abs(hi - 2000.0).mean() / 2000.0
        assert rel_hi < rel_lo

    def test_usable_as_workload(self):
        """Counts plug directly into the paper topology builder."""
        from repro.model import necessary_conditions
        from repro.topology import build_paper_instance
        from repro.workloads import WikipediaLikeWorkload

        profile = WikipediaLikeWorkload(horizon=24, peak=500.0).generate()
        counts = hourly_counts_from_profile(profile, seed=5)
        inst = build_paper_instance(counts, k=1, n_tier2=4, n_tier1=6)
        assert necessary_conditions(inst).ok
