"""Tests for the algorithm-health monitor (repro.obs.health)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RegularizedOnline, SubproblemConfig
from repro.engine.session import SlotData
from repro.model import Allocation, Cloud, CloudNetwork, SLAEdge
from repro.obs import metrics as obs_metrics
from repro.obs.health import AlertRule, HealthMonitor
from repro.serve import EventLog, ServeConfig, ServeLoop

from conftest import make_instance, make_network

EPS = SubproblemConfig(epsilon=1e-2)


def single_edge_network() -> CloudNetwork:
    """One tier-2 cloud, one tier-1 cloud, one SLA edge.

    The cost/bound arithmetic is hand-checkable: with tier-2 price
    ``a``, link price ``c``, the cheapest route costs ``a + c`` per
    unit of workload.
    """
    tier2 = [Cloud("i0", capacity=10.0, recon_price=2.0)]
    tier1 = [Cloud("j0", capacity=np.inf)]
    edges = [SLAEdge(0, 0, capacity=10.0, recon_price=1.0)]
    return CloudNetwork(tier2, tier1, edges)


def slot(workload=1.0, a=3.0, c=0.5) -> SlotData:
    return SlotData(
        workload=np.array([workload]),
        tier2_price=np.array([a]),
        link_price=np.array([c]),
    )


def decision(x=2.0, y=2.0, s=1.0) -> Allocation:
    return Allocation(np.array([x]), np.array([y]), np.array([s]))


class _Outcome:
    def __init__(self, deadline_missed: bool) -> None:
        self.deadline_missed = deadline_missed


class TestAlertRule:
    def test_parses_threshold_and_prefix(self):
        rule = AlertRule("competitive_ratio>1.5")
        assert rule.metric == "health_competitive_ratio"
        assert rule.op == ">" and rule.threshold == 1.5 and rule.for_slots == 1

    def test_explicit_prefix_and_for_slots(self):
        rule = AlertRule("health_slo_burn_rate >= 2.0 : 3")
        assert rule.metric == "health_slo_burn_rate"
        assert rule.for_slots == 3

    @pytest.mark.parametrize(
        "spec", ["", "foo", "x=1", "x>>1", ">1", "x>abc", "x>1:0"]
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            AlertRule(spec)

    def test_fires_once_per_streak_then_rearms(self):
        rule = AlertRule("competitive_ratio>1:2")
        assert not rule.update(2.0)  # streak 1 of 2
        assert rule.update(2.0)  # fires
        assert not rule.update(2.0)  # still breached, stays silent
        assert not rule.update(0.5)  # clears, re-arms
        assert not rule.update(2.0)
        assert rule.update(2.0)  # fires again

    def test_missing_value_resets_streak(self):
        rule = AlertRule("switching_share>=0.5:2")
        assert not rule.update(0.9)
        assert not rule.update(None)
        assert not rule.update(0.9)
        assert rule.update(0.9)


class TestHealthMonitorCosts:
    def test_slot_cost_and_bound_arithmetic(self):
        mon = HealthMonitor(single_edge_network())
        # alloc = 3*2 + 0.5*2 = 7; recon (from zero state) = 2*2 + 2*1 = 6
        mon.observe_slot(0, slot(), decision())
        assert mon.values["health_cumulative_cost"] == pytest.approx(13.0)
        assert mon.values["health_offline_bound"] == pytest.approx(3.5)
        assert mon.values["health_competitive_ratio"] == pytest.approx(13.0 / 3.5)
        assert mon.values["health_switching_share"] == pytest.approx(6.0 / 13.0)

    def test_unchanged_decision_adds_no_switching_cost(self):
        mon = HealthMonitor(single_edge_network())
        mon.observe_slot(0, slot(), decision())
        mon.observe_slot(1, slot(), decision())
        assert mon.values["health_cumulative_cost"] == pytest.approx(13.0 + 7.0)
        assert mon.values["health_offline_bound"] == pytest.approx(7.0)
        assert mon.values["health_switching_share"] == pytest.approx(6.0 / 20.0)

    def test_bound_uses_cheapest_edge(self):
        # Two edges into the same tier-1 cloud; the bound must price the
        # workload over the cheaper route only.
        tier2 = [Cloud("i0", 10.0, 1.0), Cloud("i1", 10.0, 1.0)]
        tier1 = [Cloud("j0", np.inf)]
        edges = [SLAEdge(0, 0, 10.0, 0.0), SLAEdge(1, 0, 10.0, 0.0)]
        net = CloudNetwork(tier2, tier1, edges)
        mon = HealthMonitor(net)
        s = SlotData(
            workload=np.array([2.0]),
            tier2_price=np.array([5.0, 1.0]),
            link_price=np.array([0.5, 0.25]),
        )
        dec = Allocation(np.zeros(2), np.zeros(2), np.zeros(2))
        mon.observe_slot(0, s, dec)
        assert mon.values["health_offline_bound"] == pytest.approx(2.0 * 1.25)

    def test_zero_workload_slot_contributes_zero_bound(self):
        mon = HealthMonitor(single_edge_network())
        mon.observe_slot(0, slot(workload=0.0), decision(x=0.0, y=0.0, s=0.0))
        assert mon.values["health_offline_bound"] == 0.0
        assert mon.values["health_competitive_ratio"] == 1.0

    def test_skipped_decision_still_tracks_slo(self):
        mon = HealthMonitor(single_edge_network(), slo_target=0.5)
        fired = mon.observe_slot(0, slot(), None, outcome=_Outcome(True))
        assert fired == []
        assert "health_cumulative_cost" not in mon.values
        assert mon.values["health_slo_burn_rate"] == pytest.approx(2.0)

    def test_validates_parameters(self):
        net = single_edge_network()
        with pytest.raises(ValueError, match="slo_target"):
            HealthMonitor(net, slo_target=0.0)
        with pytest.raises(ValueError, match="window"):
            HealthMonitor(net, window=0)


class TestSloBurnRate:
    def test_windowed_miss_rate_over_budget(self):
        mon = HealthMonitor(single_edge_network(), slo_target=0.25, window=4)
        for t, missed in enumerate([True, False, False, False]):
            mon.observe_slot(t, slot(), decision(), outcome=_Outcome(missed))
        # 1 miss in a 4-slot window = 25% rate = exactly the budget.
        assert mon.values["health_slo_burn_rate"] == pytest.approx(1.0)
        for t in range(4, 8):
            mon.observe_slot(t, slot(), decision(), outcome=_Outcome(False))
        assert mon.values["health_slo_burn_rate"] == 0.0  # miss aged out


class TestRegistryRates:
    def test_hedge_failure_and_cache_ratio_from_registry(self):
        with obs_metrics.use() as reg:
            reg.counter("backend_slots_total", help="", backend="batched").inc(8)
            reg.counter(
                "backend_sequential_fallbacks_total",
                help="",
                reason="hedge_gap",
            ).inc(2)
            reg.counter(
                "backend_sequential_fallbacks_total",
                help="",
                reason="shape",
            ).inc(1)
            reg.counter("solver_cache_ops_total", help="", op="hit").inc(3)
            reg.counter("solver_cache_ops_total", help="", op="miss").inc(1)
            mon = HealthMonitor(single_edge_network())
            mon.observe_slot(0, slot(), decision())
            assert mon.values["health_hedge_failure_rate"] == pytest.approx(
                2.0 / 11.0
            )
            assert mon.values["health_cache_hit_ratio"] == pytest.approx(0.75)
            assert mon.values["health_cache_hit_ratio_window"] == pytest.approx(
                0.75
            )

    def test_cache_window_tracks_recent_ops_only(self):
        with obs_metrics.use() as reg:
            hit = reg.counter("solver_cache_ops_total", help="", op="hit")
            miss = reg.counter("solver_cache_ops_total", help="", op="miss")
            mon = HealthMonitor(single_edge_network(), window=2)
            miss.inc(10)
            mon.observe_slot(0, slot(), decision())
            assert mon.values["health_cache_hit_ratio_window"] == 0.0
            hit.inc(10)
            mon.observe_slot(1, slot(), decision())
            hit.inc(10)
            mon.observe_slot(2, slot(), decision())
            # Window covers slots 1-2: 20 hits, 0 misses.
            assert mon.values["health_cache_hit_ratio_window"] == 1.0
            assert mon.values["health_cache_hit_ratio"] == pytest.approx(
                20.0 / 30.0
            )

    def test_publishes_gauges_into_registry(self):
        with obs_metrics.use() as reg:
            mon = HealthMonitor(single_edge_network())
            mon.observe_slot(0, slot(), decision())
            names = {e["name"] for e in reg.snapshot()["metrics"]}
            assert {
                "health_cumulative_cost",
                "health_competitive_ratio",
                "health_switching_share",
                "health_slo_burn_rate",
            } <= names

    def test_works_with_registry_disabled(self):
        assert obs_metrics.active() is None
        mon = HealthMonitor(single_edge_network())
        mon.observe_slot(0, slot(), decision())
        assert mon.values["health_competitive_ratio"] > 0


class TestAlerts:
    def test_fired_alerts_are_recorded_and_logged(self):
        log = EventLog()
        mon = HealthMonitor(
            single_edge_network(), rules=["competitive_ratio>=1"]
        )
        fired = mon.observe_slot(3, slot(), decision(), log=log)
        assert len(fired) == 1
        assert fired[0]["metric"] == "health_competitive_ratio"
        assert mon.alerts[0]["t"] == 3
        events = [e for e in log.events if e["event"] == "alert"]
        assert len(events) == 1
        assert events[0]["t"] == 3
        assert events[0]["rule"] == "competitive_ratio>=1"
        assert events[0]["value"] >= events[0]["threshold"]

    def test_alert_counter_published(self):
        with obs_metrics.use() as reg:
            log = EventLog()
            mon = HealthMonitor(
                single_edge_network(), rules=["switching_share>=0"]
            )
            mon.observe_slot(0, slot(), decision(), log=log)
            entries = [
                e
                for e in reg.snapshot()["metrics"]
                if e["name"] == "serve_alerts_total"
            ]
            assert entries and entries[0]["value"] == 1

    def test_accepts_prebuilt_rules(self):
        rule = AlertRule("slo_burn_rate>0.1")
        mon = HealthMonitor(single_edge_network(), rules=[rule])
        assert mon.rules == [rule]


class TestServeIntegration:
    def test_serve_loop_drives_health_monitor(self, small_network):
        inst = make_instance(small_network, horizon=6, seed=5)
        log = EventLog()
        mon = HealthMonitor(small_network, rules=["competitive_ratio>=0"])
        report = ServeLoop(
            RegularizedOnline(EPS), inst, ServeConfig(), log, health=mon
        ).run()
        assert report.summary["slots"] == 6
        assert mon.values["health_cumulative_cost"] > 0
        # The bound is a true lower bound, so the live ratio is >= 1.
        assert mon.values["health_competitive_ratio"] >= 1.0
        alerts = [e for e in log.events if e["event"] == "alert"]
        assert len(alerts) == 1  # fires once, stays breached
        assert report.summary["alerts"] == 1
        assert "1 alerts" in report.describe()

    def test_resume_keeps_monitoring(self, small_network):
        inst = make_instance(small_network, horizon=6, seed=5)
        mon = HealthMonitor(small_network)
        loop = ServeLoop(
            RegularizedOnline(EPS),
            inst,
            ServeConfig(max_slots=3),
            health=mon,
        )
        loop.run()
        cost_after_3 = mon.values["health_cumulative_cost"]
        loop.run()
        assert mon.values["health_cumulative_cost"] > cost_after_3

    def test_live_ratio_upper_bounds_cost_ratio(self, small_network):
        # The online bound ignores reconfiguration and capacity
        # coupling, so cost/bound must come out >= 1 on a real run.
        inst = make_instance(small_network, horizon=10, seed=11)
        mon = HealthMonitor(small_network)
        ServeLoop(RegularizedOnline(EPS), inst, health=mon).run()
        assert mon.values["health_competitive_ratio"] >= 1.0
