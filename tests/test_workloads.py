"""Tests for the workload substrate."""

import numpy as np
import pytest

from repro.workloads import (
    WikipediaLikeWorkload,
    WorldCupLikeWorkload,
    constant_workload,
    diurnal_profile,
    load_hourly_csv,
    ramp_workload,
    random_walk_workload,
    replicate_across_clouds,
    spike_train,
)


class TestSyntheticShapes:
    def test_diurnal_peaks_at_peak_hour(self):
        prof = diurnal_profile(48, base=1.0, amplitude=0.5, peak_hour=14)
        assert np.argmax(prof[:24]) == 14
        assert prof.min() >= 0

    def test_diurnal_amplitude_clipped(self):
        prof = diurnal_profile(24, base=1.0, amplitude=5.0)
        assert prof.min() >= 0

    def test_constant(self):
        np.testing.assert_array_equal(constant_workload(5, 2.0), np.full(5, 2.0))
        with pytest.raises(ValueError):
            constant_workload(5, -1.0)

    def test_ramp(self):
        r = ramp_workload(5, 0.0, 4.0)
        np.testing.assert_allclose(r, [0, 1, 2, 3, 4])

    def test_spike_train_adds_spikes(self):
        lam = spike_train(100, base=1.0, n_spikes=5, spike_height=10.0, seed=0)
        assert lam.max() > 5.0
        assert (lam > 1.5).sum() <= 5 * 3  # spikes are narrow

    def test_spike_train_deterministic_with_seed(self):
        a = spike_train(50, 1.0, 3, 5.0, seed=7)
        b = spike_train(50, 1.0, 3, 5.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_random_walk_stays_in_bounds(self):
        w = random_walk_workload(200, 1.0, 0.5, lower=0.2, upper=3.0, seed=1)
        assert w.min() >= 0.2 and w.max() <= 3.0


class TestWikipediaLike:
    def test_basic_properties(self):
        trace = WikipediaLikeWorkload(horizon=500).generate()
        assert trace.shape == (500,)
        assert trace.max() == pytest.approx(1.0)
        assert trace.min() > 0

    def test_regular_dynamics(self):
        """Low burstiness: peak-to-mean stays modest (Fig 4a regime)."""
        trace = WikipediaLikeWorkload(horizon=500).generate()
        assert trace.max() / trace.mean() < 2.5

    def test_diurnal_autocorrelation(self):
        """Lag-24 autocorrelation must be strong and positive."""
        trace = WikipediaLikeWorkload(horizon=480).generate()
        x = trace - trace.mean()
        ac24 = (x[:-24] @ x[24:]) / (x @ x)
        assert ac24 > 0.5

    def test_long_rampdowns_exist(self):
        """~40% of ramp-down phases exceed 10 slots (defeats FHC/RHC)."""
        trace = WikipediaLikeWorkload(horizon=500, noise_std=0.0).generate()
        falls = np.diff(trace) < 0
        # Longest run of consecutive decreases:
        runs, cur = [], 0
        for f in falls:
            cur = cur + 1 if f else 0
            if cur:
                runs.append(cur)
        assert max(runs) >= 10

    def test_seed_determinism_and_scaling(self):
        a = WikipediaLikeWorkload(horizon=100, seed=5).generate()
        b = WikipediaLikeWorkload(horizon=100, seed=5).generate()
        np.testing.assert_array_equal(a, b)
        c = WikipediaLikeWorkload(horizon=100, seed=5, peak=3.0).generate()
        np.testing.assert_allclose(c, 3.0 * a)

    def test_validation(self):
        with pytest.raises(ValueError):
            WikipediaLikeWorkload(horizon=0).generate()
        with pytest.raises(ValueError):
            WikipediaLikeWorkload(peak=0.0).generate()


class TestWorldCupLike:
    def test_bursty_regime(self):
        """High peak-to-mean: flash crowds (Fig 4b regime)."""
        trace = WorldCupLikeWorkload(horizon=600).generate()
        assert trace.max() / trace.mean() > 3.0
        assert trace.max() == pytest.approx(1.0)

    def test_spikes_are_sharp(self):
        """Demand multiplies within a couple of hours at spike onsets."""
        trace = WorldCupLikeWorkload(horizon=600).generate()
        ratio = trace[2:] / np.maximum(trace[:-2], 1e-9)
        assert ratio.max() > 3.0

    def test_deterministic(self):
        a = WorldCupLikeWorkload(horizon=200, seed=9).generate()
        b = WorldCupLikeWorkload(horizon=200, seed=9).generate()
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorldCupLikeWorkload(horizon=0).generate()
        with pytest.raises(ValueError):
            WorldCupLikeWorkload(spike_factor_range=(5.0, 2.0)).generate()


class TestTraces:
    def test_replicate_shape(self):
        trace = np.arange(10.0)
        mat = replicate_across_clouds(trace, 4)
        assert mat.shape == (10, 4)
        np.testing.assert_array_equal(mat[:, 0], mat[:, 3])

    def test_phase_shift(self):
        trace = np.arange(10.0)
        mat = replicate_across_clouds(trace, 3, phase_shift_hours=2)
        np.testing.assert_array_equal(mat[:, 1], np.roll(trace, 2))

    def test_scale_jitter_deterministic(self):
        trace = np.ones(5)
        a = replicate_across_clouds(trace, 3, scale_jitter=0.2, seed=1)
        b = replicate_across_clouds(trace, 3, scale_jitter=0.2, seed=1)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a[:, 0], a[:, 1])

    def test_load_hourly_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("hour,requests\n0,100\n1,150\n2,90\n")
        trace = load_hourly_csv(path)
        np.testing.assert_array_equal(trace, [100.0, 150.0, 90.0])

    def test_load_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("only,headers\n")
        with pytest.raises(ValueError, match="no numeric rows"):
            load_hourly_csv(path)

    def test_load_csv_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("hour,requests\n0,100\n\n1,150\n   \n2,90\n")
        trace = load_hourly_csv(path)
        np.testing.assert_array_equal(trace, [100.0, 150.0, 90.0])

    def test_load_csv_malformed_value_names_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("hour,requests\n0,100\n1,oops\n2,90\n")
        with pytest.raises(ValueError, match=r"line 3.*'oops'|'oops'.*line 3"):
            load_hourly_csv(path)

    def test_load_csv_missing_column_names_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,100\n1\n2,90\n")
        with pytest.raises(ValueError, match="line 2"):
            load_hourly_csv(path, column=1)
