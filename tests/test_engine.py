"""Tests for the shared solve engine (repro.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RegularizedOnline, SubproblemConfig
from repro.core.subproblem import RegularizedSubproblem
from repro.engine import SlotData, SolveSession
from repro.engine.stats import RunStats, StatsProbe, StepStats
from repro.model import Allocation, Cloud, CloudNetwork, Instance, SLAEdge
from repro.prediction import (
    AveragingFixedHorizonControl,
    FixedHorizonControl,
    RecedingHorizonControl,
    RegularizedFixedHorizonControl,
    RegularizedRecedingHorizonControl,
)

from conftest import make_instance, make_network

EPS = SubproblemConfig(epsilon=1e-2)


class TestSlotData:
    def test_from_instance_round_trip(self, small_instance):
        slot = SlotData.from_instance(small_instance, 3)
        assert np.array_equal(slot.workload, small_instance.workload[3])
        assert np.array_equal(slot.tier2_price, small_instance.tier2_price[3])
        assert np.array_equal(slot.link_price, small_instance.link_price[3])

    def test_as_instance_is_one_slot(self, small_instance):
        slot = SlotData.from_instance(small_instance, 0)
        one = slot.as_instance(small_instance.network)
        assert one.horizon == 1
        assert np.array_equal(one.workload[0], small_instance.workload[0])


class TestStreaming:
    """step()-fed sessions must reproduce run(instance) exactly."""

    def test_streaming_matches_run_prediction_free(self, small_network):
        inst = make_instance(small_network, horizon=8, seed=5)
        batch = RegularizedOnline(EPS).run(inst)
        # Prediction-free: the session streams from a bare network —
        # no full instance ever exists on the streaming side.
        session = SolveSession(RegularizedOnline(EPS), small_network)
        for t in range(inst.horizon):
            session.step(SlotData.from_instance(inst, t))
        streamed = session.trajectory()
        assert np.array_equal(streamed.x, batch.x)
        assert np.array_equal(streamed.y, batch.y)
        assert np.array_equal(streamed.s, batch.s)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FixedHorizonControl(2),
            lambda: RecedingHorizonControl(2),
            lambda: RegularizedRecedingHorizonControl(2, EPS),
        ],
        ids=["fhc", "rhc", "rrhc"],
    )
    def test_streaming_matches_run_predictive(self, small_network, factory):
        inst = make_instance(small_network, horizon=6, seed=5)
        batch = factory().run(inst)
        session = SolveSession(factory(), inst)
        for t in range(inst.horizon):
            session.step(SlotData.from_instance(inst, t))
        streamed = session.trajectory()
        assert np.array_equal(streamed.x, batch.x)
        assert np.array_equal(streamed.y, batch.y)
        assert np.array_equal(streamed.s, batch.s)

    def test_run_on_bare_network_rejected(self, small_network):
        session = SolveSession(RegularizedOnline(EPS), small_network)
        with pytest.raises(ValueError, match="bare network"):
            session.run()

    def test_partial_stream_then_run_resumes(self, small_network):
        inst = make_instance(small_network, horizon=6, seed=5)
        batch = RegularizedOnline(EPS).run(inst)
        session = SolveSession(RegularizedOnline(EPS), inst)
        session.step(SlotData.from_instance(inst, 0))
        session.step(SlotData.from_instance(inst, 1))
        resumed = session.run()  # picks up at t=2
        assert np.array_equal(resumed.x, batch.x)


class TestStepStats:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RegularizedOnline(EPS),
            lambda: FixedHorizonControl(2),
            lambda: RecedingHorizonControl(2),
            lambda: AveragingFixedHorizonControl(2),
            lambda: RegularizedFixedHorizonControl(2, EPS),
            lambda: RegularizedRecedingHorizonControl(2, EPS),
        ],
        ids=["online", "fhc", "rhc", "afhc", "rfhc", "rrhc"],
    )
    def test_populated_for_every_controller(self, small_network, factory):
        inst = make_instance(small_network, horizon=5, seed=5)
        traj = factory().run(inst)
        stats = traj.run_stats
        assert isinstance(stats, RunStats)
        assert stats.n_steps == inst.horizon
        assert [s.t for s in stats.steps] == list(range(inst.horizon))
        assert all(s.wall_time >= 0 for s in stats.steps)
        assert stats.total_solves > 0
        assert stats.backends  # at least one backend name recorded

    def test_aggregates(self):
        probe = StatsProbe()
        probe.record_solve(backend="barrier", newton_iters=7,
                           warm_attempted=True, warm_used=True)
        probe.record_solve(backend="lp")
        steps = [
            StepStats.from_records(0, 0.5, probe.drain()),
            StepStats.from_records(1, 1.5, []),
        ]
        stats = RunStats(steps)
        assert stats.n_steps == 2
        assert stats.total_time == pytest.approx(2.0)
        assert stats.mean_step_time == pytest.approx(1.0)
        assert stats.max_step_time == pytest.approx(1.5)
        assert stats.total_solves == 2
        assert stats.total_newton_iters == 7
        assert stats.warm_hit_rate == pytest.approx(1.0)
        assert stats.backends == ("barrier", "lp")
        assert "warm-start hit rate" in stats.describe()

    def test_hit_rate_without_attempts_is_zero(self):
        assert RunStats([]).warm_hit_rate == 0.0


class TestWarmStartBlend:
    def test_rejected_warm_start_falls_back_to_cold(self, small_network):
        """A wildly infeasible warm vector must be rejected, not used."""
        inst = make_instance(small_network, horizon=2, seed=5)
        sub = RegularizedSubproblem(small_network, EPS)
        prev = Allocation.zeros(small_network.n_edges)
        data = (inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        cold, v_cold = sub.solve_reduced(*data)
        probe = StatsProbe()
        bad_warm = np.full(sub.n_vars, 1e9)  # far beyond every upper bound
        warmed, _ = sub.solve_reduced(*data, warm=bad_warm, probe=probe)
        [rec] = probe.drain()
        assert rec.warm_attempted
        assert not rec.warm_used
        # Rejection falls back to the interior candidate: identical solve.
        assert np.array_equal(warmed.x, cold.x)
        assert np.array_equal(warmed.y, cold.y)
        assert np.array_equal(warmed.s, cold.s)

    def test_accepted_warm_start_recorded(self, small_network):
        inst = make_instance(small_network, horizon=2, seed=5)
        sub = RegularizedSubproblem(small_network, EPS)
        prev = Allocation.zeros(small_network.n_edges)
        data = (inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        # A strictly interior warm vector is guaranteed to pass the
        # blend's interiority check (the blend of two interior points
        # is interior); the candidate heuristic provides one.
        prog = sub.build(*data)
        warm = sub._interior_candidate(prog, inst.workload[0])
        assert warm is not None
        probe = StatsProbe()
        sub.solve_reduced(*data, warm=warm, probe=probe)
        [rec] = probe.drain()
        assert rec.warm_attempted and rec.warm_used
        assert rec.newton_iters > 0


class TestSplitEdgelessCloud:
    """Regression: a tier-2 cloud with no SLA edges must not divide by 0."""

    @staticmethod
    def _network_with_edgeless_cloud() -> CloudNetwork:
        tier2 = [Cloud("i0", 10.0, 20.0), Cloud("lonely", 10.0, 20.0)]
        tier1 = [Cloud("j0", np.inf)]
        return CloudNetwork(tier2, tier1, [SLAEdge(0, 0, 7.0, 12.0)])

    def test_split_is_finite(self):
        net = self._network_with_edgeless_cloud()
        sub = RegularizedSubproblem(net, EPS)
        v = np.zeros(sub.n_vars)
        v[sub.sl_X] = [2.0, 3.0]  # the edge-less cloud holds allocation
        v[sub.sl_y] = [1.0]
        v[sub.sl_s] = [0.5]
        with np.errstate(divide="raise", invalid="raise"):
            alloc = sub.split(v, np.array([0.5]))
        assert np.all(np.isfinite(alloc.x))
        assert np.all(np.isfinite(alloc.y))
        assert np.all(np.isfinite(alloc.s))

    def test_online_run_is_finite(self):
        net = self._network_with_edgeless_cloud()
        T = 4
        inst = Instance(
            net,
            workload=np.full((T, 1), 2.0),
            tier2_price=np.ones((T, 2)),
            link_price=0.4 * np.ones((T, 1)),
        )
        traj = RegularizedOnline(EPS).run(inst)
        assert np.all(np.isfinite(traj.x))
        assert np.all(np.isfinite(traj.y))
        assert np.all(np.isfinite(traj.s))


class TestRemovedOnlineConfig:
    def test_alias_is_gone_with_pointer_message(self):
        import repro
        import repro.core
        import repro.core.online

        for module in (repro, repro.core, repro.core.online):
            with pytest.raises(AttributeError, match="SubproblemConfig"):
                module.OnlineConfig

    def test_import_raises_import_error(self):
        with pytest.raises(ImportError, match="OnlineConfig"):
            from repro import OnlineConfig  # noqa: F401

    def test_unknown_attribute_still_plain(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute"):
            repro.NoSuchThing
