"""Tests for the metrics registry and its exporters (repro.obs)."""

import json
import math

import pytest

from repro.obs import metrics
from repro.obs.export import (
    describe_snapshot,
    load_snapshot_json,
    parse_prometheus,
    to_prometheus,
    write_prometheus,
    write_snapshot_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    estimate_percentile,
    registry_from_snapshot,
)


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4.0)
        assert c.value == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.counter("requests_total").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_same_key_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", path="a") is reg.counter("x", path="a")
        assert reg.counter("x", path="a") is not reg.counter("x", path="b")

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1", b="2") is reg.counter("x", b="2", a="1")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.histogram("x")

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="already registered with buckets"):
            reg.histogram("lat", buckets=(0.2, 2.0))
        # Re-access without buckets (or with the same ones) is fine.
        reg.histogram("lat")
        reg.histogram("lat", buckets=(0.1, 1.0))


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
            h.observe(v)
        # counts: <=1, (1,2], (2,4], >4
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(17.0)
        assert h.min == 0.5 and h.max == 9.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())

    def test_mean_and_default_buckets(self):
        h = Histogram()
        assert h.bounds == DEFAULT_BUCKETS
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram(bounds=(1.0, 10.0))
        for _ in range(100):
            h.observe(5.0)
        # All mass is in (1, 10]; interpolation stays within [min, max].
        assert h.min <= h.p50 <= h.max
        assert h.min <= h.p99 <= h.max

    def test_percentile_ordering(self):
        h = Histogram()
        for i in range(1, 200):
            h.observe(i / 1000.0)  # 1ms .. 199ms
        assert h.p50 <= h.p95 <= h.p99 <= h.max
        assert h.p50 == pytest.approx(0.1, rel=0.3)

    def test_empty_percentile_zero(self):
        assert Histogram().p50 == 0.0

    def test_percentile_validates_q(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().percentile(1.5)

    def test_estimate_percentile_overflow_bucket_uses_hi(self):
        # Everything in the overflow bucket: only hi bounds it.
        counts = [0, 0, 10]
        assert estimate_percentile((1.0, 2.0), counts, 5.0, 9.0, 0.99) <= 9.0
        assert estimate_percentile((1.0, 2.0), counts, 5.0, 9.0, 1.0) == 9.0


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("slots_total", help="slots", path="primary").inc(10)
        reg.counter("slots_total", path="greedy").inc(2)
        reg.gauge("depth").set(3.5)
        h = reg.histogram("lat_seconds", help="latency", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        return reg

    def test_snapshot_schema_and_order(self):
        snap = self._populated().snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        names = [(e["name"], tuple(sorted(e["labels"].items()))) for e in snap["metrics"]]
        assert names == sorted(names)

    def test_snapshot_json_serializable(self):
        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_round_trip_exact(self):
        reg = self._populated()
        snap = reg.snapshot()
        again = registry_from_snapshot(snap).snapshot()
        assert again == snap

    def test_round_trip_rejects_bad_schema(self):
        with pytest.raises(ValueError, match="schema"):
            registry_from_snapshot({"schema": "nope", "metrics": []})

    def test_empty_histogram_min_max_null(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds")
        (entry,) = reg.snapshot()["metrics"]
        assert entry["min"] is None and entry["max"] is None
        restored = registry_from_snapshot(reg.snapshot())
        assert restored.snapshot() == reg.snapshot()

    def test_clear(self):
        reg = self._populated()
        reg.clear()
        assert reg.snapshot()["metrics"] == []


class TestActiveSwitch:
    def test_disabled_returns_nulls(self):
        assert not metrics.enabled()
        assert metrics.counter("x") is metrics.NULL_COUNTER
        assert metrics.gauge("x") is metrics.NULL_GAUGE
        assert metrics.histogram("x") is metrics.NULL_HISTOGRAM
        # Null methods are inert.
        metrics.counter("x").inc()
        metrics.gauge("x").set(1)
        metrics.histogram("x").observe(1)

    def test_enable_disable(self):
        reg = metrics.enable()
        try:
            assert metrics.active() is reg
            metrics.counter("x").inc()
            assert reg.counter("x").value == 1.0
        finally:
            metrics.disable()
        assert metrics.active() is None

    def test_use_restores_previous(self):
        outer = metrics.enable()
        try:
            with metrics.use() as inner:
                assert metrics.active() is inner
                assert inner is not outer
            assert metrics.active() is outer
        finally:
            metrics.disable()


class TestPrometheusExport:
    def _snap(self):
        reg = MetricsRegistry()
        reg.counter("slots_total", help="slots decided", path="primary").inc(7)
        reg.gauge("depth").set(2.0)
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.1))
        for v in (0.005, 0.05, 0.5):
            h.observe(v)
        return reg.snapshot()

    def test_round_trip_samples(self):
        text = to_prometheus(self._snap())
        samples = parse_prometheus(text)
        assert samples[("slots_total", (("path", "primary"),))] == 7.0
        assert samples[("depth", ())] == 2.0
        assert samples[("lat_seconds_count", ())] == 3.0
        assert samples[("lat_seconds_sum", ())] == pytest.approx(0.555)

    def test_buckets_cumulative(self):
        samples = parse_prometheus(to_prometheus(self._snap()))
        le = lambda b: samples[("lat_seconds_bucket", (("le", b),))]
        assert le("0.01") == 1.0
        assert le("0.1") == 2.0
        assert le("+Inf") == 3.0

    def test_headers_present(self):
        text = to_prometheus(self._snap())
        assert "# HELP slots_total slots decided" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", path='a"b\\c').inc()
        text = to_prometheus(reg.snapshot())
        assert parse_prometheus(text)[("x", (("path", 'a"b\\c'),))] == 1.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("not a sample at{all")

    def test_rejects_bad_schema(self):
        with pytest.raises(ValueError, match="schema"):
            to_prometheus({"schema": "other", "metrics": []})

    def test_nan_inf_formatting(self):
        reg = MetricsRegistry()
        reg.gauge("g_inf").set(float("inf"))
        reg.gauge("g_nan").set(float("nan"))
        samples = parse_prometheus(to_prometheus(reg.snapshot()))
        assert samples[("g_inf", ())] == float("inf")
        assert math.isnan(samples[("g_nan", ())])


class TestDescribeAndFiles:
    def test_describe_lists_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("slots_total", path="primary").inc(3)
        reg.histogram("lat_seconds").observe(0.02)
        text = describe_snapshot(reg.snapshot())
        assert 'slots_total{path="primary"}' in text
        assert "lat_seconds" in text
        assert "p95 [ms]" in text

    def test_describe_empty(self):
        assert "no metrics" in describe_snapshot(MetricsRegistry().snapshot())

    def test_registry_describe_shortcut(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert "x" in reg.describe()

    def test_prometheus_file_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        path = write_prometheus(reg.snapshot(), tmp_path / "m.prom")
        samples = parse_prometheus(path.read_text(encoding="utf-8"))
        assert samples[("x", ())] == 2.0

    def test_snapshot_json_file_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds").observe(0.3)
        snap = reg.snapshot()
        path = write_snapshot_json(snap, tmp_path / "m.json")
        assert load_snapshot_json(path) == snap

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other", "metrics": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_snapshot_json(path)


class TestFamilyValues:
    def test_scalar_family_read(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", help="", op="hit").inc(3)
        reg.counter("ops_total", help="", op="miss").inc(1)
        values = {
            labels["op"]: value for labels, value in reg.family_values("ops_total")
        }
        assert values == {"hit": 3.0, "miss": 1.0}

    def test_unknown_family_is_empty(self):
        assert MetricsRegistry().family_values("nope") == []

    def test_histogram_family_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", help="").observe(1.0)
        with pytest.raises(ValueError, match="histogram"):
            reg.family_values("lat")


class TestDerivedGauges:
    def _cache_registry(self, hits=3, misses=1):
        reg = MetricsRegistry()
        reg.counter("solver_cache_ops_total", help="", op="hit").inc(hits)
        reg.counter("solver_cache_ops_total", help="", op="miss").inc(misses)
        return reg

    def test_hit_ratio_derived_in_snapshot(self):
        from repro.obs.export import with_derived

        snap = with_derived(self._cache_registry().snapshot())
        ratio = [
            e for e in snap["metrics"] if e["name"] == "solver_cache_hit_ratio"
        ]
        assert ratio and ratio[0]["value"] == pytest.approx(0.75)
        assert ratio[0]["type"] == "gauge"
        # Entries stay sorted after the merge.
        names = [(e["name"], tuple(sorted(e["labels"].items()))) for e in snap["metrics"]]
        assert names == sorted(names)

    def test_no_lookups_no_derived_entry(self):
        from repro.obs.export import with_derived

        reg = MetricsRegistry()
        reg.counter("solver_cache_ops_total", help="", op="store").inc(2)
        snap = with_derived(reg.snapshot())
        assert not any(
            e["name"] == "solver_cache_hit_ratio" for e in snap["metrics"]
        )

    def test_existing_gauge_not_overwritten(self):
        from repro.obs.export import with_derived

        reg = self._cache_registry()
        reg.gauge("solver_cache_hit_ratio", help="").set(0.5)
        snap = with_derived(reg.snapshot())
        entries = [
            e for e in snap["metrics"] if e["name"] == "solver_cache_hit_ratio"
        ]
        assert len(entries) == 1 and entries[0]["value"] == 0.5

    def test_prometheus_export_includes_ratio(self):
        samples = parse_prometheus(to_prometheus(self._cache_registry().snapshot()))
        assert samples[("solver_cache_hit_ratio", ())] == pytest.approx(0.75)
