"""Tests for the regularized subproblem P2(t)."""

import numpy as np
import pytest

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.model import Allocation
from repro.solvers import SolverOptions, first_order_certificate

from conftest import make_instance, make_network


@pytest.fixture
def sub_setup():
    net = make_network()
    inst = make_instance(net)
    sub = RegularizedSubproblem(net, SubproblemConfig(epsilon=1e-2))
    return net, inst, sub


class TestConfig:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            SubproblemConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            SubproblemConfig(epsilon=1.0, epsilon_prime=-1.0)

    def test_eps2_defaults_to_epsilon(self):
        assert SubproblemConfig(epsilon=0.5).eps2 == 0.5
        assert SubproblemConfig(epsilon=0.5, epsilon_prime=0.1).eps2 == 0.1


class TestBuild:
    def test_eta_matches_definition(self, sub_setup):
        net, _, sub = sub_setup
        np.testing.assert_allclose(
            sub.eta_tier2, np.log(1.0 + net.tier2_capacity / 1e-2)
        )
        np.testing.assert_allclose(
            sub.eta_link, np.log(1.0 + net.edge_capacity / 1e-2)
        )

    def test_solution_satisfies_slot_constraints(self, sub_setup):
        net, inst, sub = sub_setup
        prev = Allocation.zeros(net.n_edges)
        alloc = sub.solve(inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        # Lemma 1: feasible for P1 at t.
        assert np.all(alloc.x >= alloc.s - 1e-8)
        assert np.all(alloc.y >= alloc.s - 1e-8)
        cov = net.aggregate_tier1(alloc.s)
        assert np.all(cov >= inst.workload[0] - 1e-6)
        assert np.all(alloc.tier2_totals(net) <= net.tier2_capacity + 1e-6)
        assert np.all(alloc.y <= net.edge_capacity + 1e-8)

    def test_solution_is_stationary(self, sub_setup):
        net, inst, sub = sub_setup
        prev = Allocation.zeros(net.n_edges)
        prog = sub.build(inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        v = prog.solve(v0=sub._interior_candidate(prog, inst.workload[0]))
        assert first_order_certificate(prog, v, active_tol=1e-4) >= -1e-4

    def test_never_decreases_below_decay(self, sub_setup):
        """Tier-2 totals never drop instantly to zero when demand does."""
        net, inst, sub = sub_setup
        lam_hi = inst.workload[0] * 2.0
        lam_lo = np.full(net.n_tier1, 1e-4)
        prev = sub.solve(lam_hi, inst.tier2_price[0], inst.link_price[0],
                         Allocation.zeros(net.n_edges))
        X_hi = prev.tier2_totals(net)
        cur = sub.solve(lam_lo, inst.tier2_price[1], inst.link_price[1], prev)
        X_lo = cur.tier2_totals(net)
        served = X_hi > 1e-6
        assert np.all(X_lo[served] > 1e-3)  # exponential decay, not a cliff
        assert np.all(X_lo <= X_hi + 1e-8)  # and no spurious growth

    def test_hedging_rows_only_when_binding(self, sub_setup):
        net, inst, sub = sub_setup
        prev = Allocation.zeros(net.n_edges)
        # Small workload: no hedge rows should be added.
        small = sub.build(
            np.full(net.n_tier1, 0.01), inst.tier2_price[0], inst.link_price[0], prev
        )
        # Large workload: overflow rows appear.
        big_lam = np.full(net.n_tier1, 6.0)  # Lambda = 36 > C_i = 10
        big = sub.build(big_lam, inst.tier2_price[0], inst.link_price[0], prev)
        assert big.A.shape[0] > small.A.shape[0]

    def test_hedging_forces_background_allocation(self):
        """(3d): with hedging, other clouds hold overflow capacity."""
        net = make_network(n_tier2=2, n_tier1=2, k=2, tier2_capacity=3.0,
                           edge_capacity=3.0)
        lam = np.array([2.0, 2.0])  # Lambda = 4 > C_i = 3
        a = np.array([1.0, 100.0])  # cloud 1 is expensive
        c = np.zeros(net.n_edges)
        cfg_h = SubproblemConfig(epsilon=1e-2, hedging=True)
        cfg_n = SubproblemConfig(epsilon=1e-2, hedging=False)
        prev = Allocation.zeros(net.n_edges)
        X_h = RegularizedSubproblem(net, cfg_h).solve(lam, a, c, prev).tier2_totals(net)
        X_n = RegularizedSubproblem(net, cfg_n).solve(lam, a, c, prev).tier2_totals(net)
        # Hedging requires sum_{k != 0} X_k >= Lambda - C_0 = 1 even
        # though cloud 1 is expensive.
        assert X_h[1] >= 1.0 - 1e-6
        # Without hedging the expensive cloud holds just the uncoverable rest.
        assert X_n[1] <= X_h[1] + 1e-8

    def test_split_preserves_totals(self, sub_setup):
        net, inst, sub = sub_setup
        prev = Allocation.zeros(net.n_edges)
        prog = sub.build(inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        v = prog.solve(v0=sub._interior_candidate(prog, inst.workload[0]))
        alloc = sub.split(v, inst.workload[0])
        np.testing.assert_allclose(
            alloc.tier2_totals(net), v[sub.sl_X], atol=1e-8
        )
        np.testing.assert_allclose(alloc.y, np.maximum(v[sub.sl_y], 0), atol=1e-12)

    def test_caps_disabled_still_feasible(self, sub_setup):
        net, inst, _ = sub_setup
        sub = RegularizedSubproblem(
            net, SubproblemConfig(epsilon=1e-2, capacity_caps=False)
        )
        prev = Allocation.zeros(net.n_edges)
        alloc = sub.solve(inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        # Lemma 1: the optimum respects capacities even without caps.
        assert np.all(alloc.tier2_totals(net) <= net.tier2_capacity + 1e-5)
        assert np.all(alloc.y <= net.edge_capacity + 1e-6)


class TestWarmStart:
    def test_interior_candidate_is_strictly_interior(self, sub_setup):
        net, inst, sub = sub_setup
        prev = Allocation.zeros(net.n_edges)
        prog = sub.build(inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev)
        v0 = sub._interior_candidate(prog, inst.workload[0])
        assert v0 is not None
        assert prog.residual(v0) < 0
        slack = prog.b - prog.A @ v0
        assert slack.min() > 0

    def test_candidate_none_when_too_tight(self):
        """Workload at the capacity envelope leaves no strict interior."""
        net = make_network(tier2_capacity=2.0, edge_capacity=1.0)
        sub = RegularizedSubproblem(net, SubproblemConfig(epsilon=1e-2))
        lam = np.full(net.n_tier1, 2.0)  # equals total link capacity per cloud
        prog = sub.build(lam, np.ones(net.n_tier2), np.ones(net.n_edges),
                         Allocation.zeros(net.n_edges))
        assert sub._interior_candidate(prog, lam) is None
