"""Tests for the AFHC extension baseline."""

import numpy as np
import pytest

from repro.model import check_trajectory, evaluate_cost
from repro.offline import GreedyOneShot, solve_offline
from repro.prediction import (
    AveragingFixedHorizonControl,
    FixedHorizonControl,
    GaussianNoisePredictor,
)

from conftest import make_instance, make_network


class TestAFHC:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            AveragingFixedHorizonControl(0)

    def test_window_one_is_greedy(self, small_instance):
        afhc = AveragingFixedHorizonControl(1).run(small_instance)
        greedy = GreedyOneShot().run(small_instance)
        assert evaluate_cost(small_instance, afhc).total == pytest.approx(
            evaluate_cost(small_instance, greedy).total, rel=1e-6
        )

    @pytest.mark.parametrize("window", [2, 4])
    def test_feasible(self, small_instance, window):
        traj = AveragingFixedHorizonControl(window).run(small_instance)
        rep = check_trajectory(small_instance, traj)
        assert rep.ok, rep.describe()

    def test_noisy_feasible(self, small_instance):
        traj = AveragingFixedHorizonControl(
            3, predictor=GaussianNoisePredictor(0.2, seed=1)
        ).run(small_instance)
        assert check_trajectory(small_instance, traj).ok

    def test_at_least_offline(self, small_instance):
        off = solve_offline(small_instance).objective
        traj = AveragingFixedHorizonControl(3).run(small_instance)
        assert evaluate_cost(small_instance, traj).total >= off - 1e-6

    def test_averaging_smooths_fhc_on_vee(self, small_network):
        """On a V-shaped workload the staggered average reconfigures
        less than any single FHC pass."""
        from repro.model import Instance

        T = 12
        vee = np.concatenate([np.linspace(4.0, 0.3, 6), np.linspace(0.3, 4.0, 6)])
        lam = vee[:, None] * np.ones((1, small_network.n_tier1))
        inst = Instance(
            small_network,
            lam,
            0.02 * np.ones((T, small_network.n_tier2)),
            0.02 * np.ones((T, small_network.n_edges)),
        )
        w = 3
        afhc = evaluate_cost(inst, AveragingFixedHorizonControl(w).run(inst)).total
        fhc = evaluate_cost(inst, FixedHorizonControl(w).run(inst)).total
        assert afhc <= fhc + 1e-6


class TestAFHCEdgeCases:
    def test_window_longer_than_horizon(self, small_instance):
        short = small_instance.slice(0, 3)
        traj = AveragingFixedHorizonControl(10).run(short)
        assert traj.horizon == 3
        assert check_trajectory(short, traj).ok

    def test_offset_passes_cover_horizon(self, small_instance):
        """Every staggered pass must produce exactly T slots."""
        ctrl = AveragingFixedHorizonControl(4)
        from repro.model import Allocation

        init = Allocation.zeros(small_instance.network.n_edges)
        for offset in range(4):
            traj = ctrl._fhc_with_offset(small_instance, offset, init)
            assert traj.horizon == small_instance.horizon
