"""Tests for the sparse LP modeling layer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import LinearProgram, LPError


class TestBlocks:
    def test_duplicate_block_rejected(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        with pytest.raises(ValueError, match="duplicate"):
            lp.add_block("x", 3)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            LinearProgram().add_block("x", 0)

    def test_lb_above_ub_rejected(self):
        with pytest.raises(ValueError, match="lb > ub"):
            LinearProgram().add_block("x", 2, lb=1.0, ub=0.5)

    def test_set_cost(self):
        lp = LinearProgram()
        lp.add_block("x", 2, lb=1.0, cost=0.0)
        lp.set_cost("x", np.array([3.0, 5.0]))
        sol = lp.solve()
        assert sol.objective == pytest.approx(8.0)

    def test_set_cost_unknown_block(self):
        lp = LinearProgram()
        lp.add_block("x", 1)
        with pytest.raises(KeyError):
            lp.set_cost("y", 1.0)


class TestConstraints:
    def test_unknown_block_in_rows(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        with pytest.raises(KeyError):
            lp.add_rows("<=", np.array([1.0]), y=np.ones((1, 2)))

    def test_bad_coefficient_shape(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        with pytest.raises(ValueError, match="shape"):
            lp.add_rows("<=", np.array([1.0]), x=np.ones((1, 3)))

    def test_bad_sense(self):
        lp = LinearProgram()
        lp.add_block("x", 1)
        with pytest.raises(ValueError, match="sense"):
            lp.add_rows("<", np.array([1.0]), x=np.ones((1, 1)))


class TestSolve:
    def test_simple_covering(self):
        lp = LinearProgram()
        lp.add_block("x", 3, lb=0.0, cost=[1.0, 2.0, 3.0])
        lp.add_rows(">=", np.array([2.0]), x=np.ones((1, 3)))
        sol = lp.solve()
        assert sol.objective == pytest.approx(2.0)
        np.testing.assert_allclose(sol["x"], [2.0, 0.0, 0.0])

    def test_equality_rows(self):
        lp = LinearProgram()
        lp.add_block("x", 2, lb=0.0, cost=[1.0, 1.0])
        lp.add_rows("==", np.array([3.0]), x=np.array([[1.0, 2.0]]))
        sol = lp.solve()
        # Cheapest way to satisfy x0 + 2 x1 = 3 with unit costs: x1 = 1.5.
        assert sol.objective == pytest.approx(1.5)

    def test_multi_block_constraint(self):
        lp = LinearProgram()
        lp.add_block("x", 2, cost=1.0)
        lp.add_block("y", 2, cost=2.0)
        # x_i + y_i >= 1.
        lp.add_rows(">=", np.ones(2), x=sp.identity(2), y=sp.identity(2))
        sol = lp.solve()
        assert sol.objective == pytest.approx(2.0)
        np.testing.assert_allclose(sol["y"], [0.0, 0.0])

    def test_upper_bounds_respected(self):
        lp = LinearProgram()
        lp.add_block("x", 2, lb=0.0, ub=[0.4, 10.0], cost=[1.0, 5.0])
        lp.add_rows(">=", np.array([1.0]), x=np.ones((1, 2)))
        sol = lp.solve()
        assert sol["x"][0] == pytest.approx(0.4)
        assert sol["x"][1] == pytest.approx(0.6)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_block("x", 1, lb=0.0, ub=1.0, cost=1.0)
        lp.add_rows(">=", np.array([5.0]), x=np.ones((1, 1)))
        with pytest.raises(LPError):
            lp.solve()

    def test_against_dense_linprog(self):
        """Cross-check block assembly against a hand-assembled LP."""
        rng = np.random.default_rng(0)
        A = rng.random((4, 6))
        b = A @ np.ones(6)  # feasible
        cost = rng.random(6)
        lp = LinearProgram()
        lp.add_block("u", 3, lb=0.0, cost=cost[:3])
        lp.add_block("v", 3, lb=0.0, cost=cost[3:])
        lp.add_rows(">=", b, u=A[:, :3], v=A[:, 3:])
        sol = lp.solve()

        from scipy.optimize import linprog

        ref = linprog(cost, A_ub=-A, b_ub=-b, bounds=[(0, None)] * 6, method="highs")
        assert sol.objective == pytest.approx(ref.fun, rel=1e-8)


class TestDuals:
    def _covering(self):
        lp = LinearProgram()
        lp.add_block("x", 3, lb=0.0, ub=5.0, cost=[1.0, 2.0, 3.0])
        lp.add_rows(">=", np.array([2.0]), x=np.ones((1, 3)))
        return lp

    def test_covering_dual_is_cheapest_price(self):
        sol = self._covering().solve()
        # Tightening the covering requirement costs the cheapest unit.
        assert sol.row_duals[0][0] == pytest.approx(1.0)

    def test_strong_duality(self):
        rng = np.random.default_rng(3)
        A = rng.random((4, 6)) + 0.1
        b = A @ (0.5 * np.ones(6))
        cost = rng.random(6) + 0.1
        lp = LinearProgram()
        lp.add_block("x", 6, lb=0.0, cost=cost)
        lp.add_rows(">=", b, x=A)
        sol = lp.solve()
        # Dual objective b^T y equals the primal optimum.
        assert sol.row_duals[0] @ b == pytest.approx(sol.objective, rel=1e-8)

    def test_complementary_slackness(self):
        sol = self._covering().solve()
        x = sol["x"]
        rc = sol.reduced_costs("x")
        # Variables strictly inside their bounds have zero reduced cost.
        interior = (x > 1e-9) & (x < 5.0 - 1e-9)
        assert np.all(np.abs(rc[interior]) < 1e-9)

    def test_equality_duals_returned(self):
        lp = LinearProgram()
        lp.add_block("x", 2, lb=0.0, cost=[1.0, 1.0])
        lp.add_rows("==", np.array([3.0]), x=np.array([[1.0, 2.0]]))
        sol = lp.solve()
        # Marginal cost of raising the equality RHS: 0.5 (via x1).
        assert sol.row_duals[0][0] == pytest.approx(0.5)

    def test_group_order_preserved(self):
        lp = LinearProgram()
        lp.add_block("x", 2, lb=0.0, cost=[1.0, 4.0])
        lp.add_rows(">=", np.array([1.0]), x=np.array([[1.0, 0.0]]))
        lp.add_rows(">=", np.array([1.0]), x=np.array([[0.0, 1.0]]))
        sol = lp.solve()
        assert sol.row_duals[0][0] == pytest.approx(1.0)
        assert sol.row_duals[1][0] == pytest.approx(4.0)
