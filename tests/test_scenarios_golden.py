"""Golden-snapshot suite: scenario fingerprints must never drift.

Each registered scenario's SHA-256 fingerprint (placement + workload +
prices + capacities, canonically hashed by
:func:`repro.util.digest.array_digest`) is pinned in
``tests/golden/scenario_fingerprints.json`` at the default seed, for
both size points.  A mismatch means generated experiment inputs
changed — either an intentional generator change (regenerate the file
and say so in the PR) or an accidental drift (a real regression; every
recorded experiment and benchmark built on the corpus is now on
different data).

Regenerate after an intentional change with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.scenarios import all_scenarios
    golden = {s.name: {z: s.build(z).fingerprint() for z in ("smoke", "full")}
              for s in all_scenarios()}
    with open("tests/golden/scenario_fingerprints.json", "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True); fh.write("\n")
    PY
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import SCENARIO_SIZES, all_scenarios, scenario_names

GOLDEN_PATH = Path(__file__).parent / "golden" / "scenario_fingerprints.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_every_registered_scenario_is_pinned():
    assert set(GOLDEN) == set(scenario_names())
    for name, sizes in GOLDEN.items():
        assert set(sizes) == set(SCENARIO_SIZES), name


@pytest.mark.parametrize(
    "scenario", all_scenarios(), ids=lambda s: s.name
)
@pytest.mark.parametrize("size", SCENARIO_SIZES)
def test_fingerprint_matches_golden(scenario, size):
    built = scenario.build(size)
    assert built.fingerprint() == GOLDEN[scenario.name][size], (
        f"{scenario.name}/{size} fingerprint drifted from the golden "
        "snapshot; see this module's docstring before regenerating"
    )


@pytest.mark.parametrize(
    "scenario", all_scenarios(), ids=lambda s: s.name
)
def test_seed_changes_the_fingerprint(scenario):
    """The seed actually flows into the generated data (no dead knob)."""
    default = scenario.build("smoke").fingerprint()
    other = scenario.build("smoke", seed=scenario.default_seed + 7919)
    assert other.fingerprint() != default


def test_smoke_and_full_differ():
    for scenario in all_scenarios():
        assert GOLDEN[scenario.name]["smoke"] != GOLDEN[scenario.name]["full"]
