"""Tests for the evaluation harness (runner, metrics, reporting, registry)."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline
from repro.evaluation import (
    ExperimentScale,
    cost_over_time,
    format_table,
    normalized_costs,
    run_algorithm,
    run_suite,
    summarize_costs,
)
from repro.evaluation import experiments
from repro.evaluation.runner import OfflineOracle
from repro.offline import GreedyOneShot

from conftest import make_instance, make_network


class TestRunner:
    def test_run_algorithm_scores(self, small_instance):
        res = run_algorithm("online", RegularizedOnline(SubproblemConfig(epsilon=1e-2)),
                            small_instance)
        assert res.feasible
        assert res.total > 0
        assert res.runtime > 0
        assert res.cost.per_slot.shape == (small_instance.horizon,)

    def test_run_suite(self, small_instance):
        results = run_suite(
            small_instance,
            {"greedy": GreedyOneShot(), "offline": OfflineOracle()},
        )
        assert set(results) == {"greedy", "offline"}
        assert results["offline"].total <= results["greedy"].total + 1e-6


class TestMetrics:
    def test_normalized_costs(self, small_instance):
        results = run_suite(
            small_instance,
            {"greedy": GreedyOneShot(), "offline": OfflineOracle()},
        )
        norm = normalized_costs(results, reference="offline")
        assert norm["offline"] == pytest.approx(1.0)
        assert norm["greedy"] >= 1.0 - 1e-9

    def test_missing_reference(self, small_instance):
        results = run_suite(small_instance, {"greedy": GreedyOneShot()})
        with pytest.raises(KeyError):
            normalized_costs(results, reference="offline")

    def test_cost_over_time_monotone(self, small_instance):
        res = run_algorithm("greedy", GreedyOneShot(), small_instance)
        series = cost_over_time(res)
        assert np.all(np.diff(series) >= -1e-9)

    def test_summarize_rows(self, small_instance):
        results = run_suite(small_instance, {"greedy": GreedyOneShot()})
        rows = summarize_costs(results)
        assert rows[0][0] == "greedy"
        assert rows[0][5] is True


class TestReporting:
    def test_format_table_aligned(self):
        text = format_table(["a", "bb"], [(1, 2.0), (10, 0.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_experiment_result_render_and_column(self):
        from repro.evaluation.reporting import ExperimentResult

        r = ExperimentResult("x", ["k", "v"], [(1, 2.0), (2, 3.0)], notes=["hello"])
        assert "hello" in r.render()
        assert r.column("v") == [2.0, 3.0]


class TestScale:
    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        s = ExperimentScale.from_env()
        assert not s.full
        assert s.n_tier2 is not None

    def test_from_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        s = ExperimentScale.from_env()
        assert s.full
        assert s.n_tier2 is None
        assert s.horizon_wiki == 500
        assert s.horizon_worldcup == 600


class TestRegistrySmoke:
    """Every experiment function runs end to end at tiny scale."""

    def test_table1(self):
        r = experiments.table1_electricity(horizon=500)
        assert len(r.rows) == 8

    def test_table2(self):
        r = experiments.table2_bandwidth()
        prices = r.column("price_per_gb")
        assert all(a >= b for a, b in zip(prices, prices[1:]))

    def test_fig4(self):
        r = experiments.fig4_workloads(ExperimentScale.tiny())
        assert {row[0] for row in r.rows} == {"wikipedia", "worldcup"}

    def test_fig5(self):
        r = experiments.fig5_cost_no_prediction(
            ExperimentScale.tiny(), recon_weights=(10.0, 1e3)
        )
        for row in r.rows:
            assert row[6] >= 1.0 - 1e-9  # online/offline
            assert row[5] >= 1.0 - 1e-9  # one-shot/offline

    def test_fig6(self):
        r = experiments.fig6_ratio_vs_epsilon(
            ExperimentScale.tiny(), epsilons=(1e-2, 1.0), recon_weights=(1e2,)
        )
        for row in r.rows:
            actual, bound = row[3], row[4]
            assert 1.0 - 1e-9 <= actual <= bound

    def test_fig7(self):
        r = experiments.fig7_sla(ExperimentScale.tiny(), ks=(1, 2), lcp_lookback=6)
        assert len(r.rows) == 2

    def test_fig8(self):
        r = experiments.fig8_prediction_window(
            ExperimentScale.tiny(), windows=(2, 3)
        )
        for row in r.rows:
            # Theorem 4: rfhc/rrhc no worse than the online algorithm.
            assert row[3] <= row[5] * (1 + 1e-6)
            assert row[4] <= row[5] * (1 + 1e-6)

    def test_fig10(self):
        r = experiments.fig10_error_sweep(
            ExperimentScale.tiny(), errors=(0.0, 0.1), window=2
        )
        assert len(r.rows) == 2

    def test_theorem23(self):
        r = experiments.theorem23_adversarial(recon_prices=(1.0, 100.0))
        greedy = r.column("greedy/opt")
        online = r.column("online/opt")
        assert greedy[-1] > greedy[0]
        assert online[-1] < greedy[-1]

    def test_make_trace_validation(self):
        with pytest.raises(ValueError):
            experiments.make_trace("nope", ExperimentScale.tiny())


class TestRegistryMore:
    def test_fig9_smoke(self):
        r = experiments.fig9_noisy_prediction(
            ExperimentScale.tiny(), windows=(2,), error=0.1
        )
        assert len(r.rows) == 1
        assert "fig9" in r.name

    def test_fig5_worldcup_smoke(self):
        r = experiments.fig5_cost_no_prediction(
            ExperimentScale.tiny(), "worldcup", recon_weights=(100.0,)
        )
        assert r.rows[0][0] == "worldcup"

    def test_ntier_experiment(self):
        r = experiments.ntier_generalization(horizon=8, n_edge=3, n_mid=2, n_top=2)
        by_name = {row[0]: row for row in r.rows}
        assert by_name["offline"][2] == pytest.approx(1.0)
        assert by_name["online"][2] >= 1.0 - 1e-9
        assert by_name["online"][2] <= by_name["greedy"][2] + 1e-9
