"""Tests for the greedy one-shot baseline."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline
from repro.model import Instance, check_trajectory, evaluate_cost
from repro.offline import GreedyOneShot, solve_offline

from conftest import make_instance, make_network


class TestGreedy:
    def test_feasible(self, small_instance):
        traj = GreedyOneShot().run(small_instance)
        assert check_trajectory(small_instance, traj).ok

    def test_at_least_offline(self, small_instance):
        traj = GreedyOneShot().run(small_instance)
        off = solve_offline(small_instance)
        assert evaluate_cost(small_instance, traj).total >= off.objective - 1e-6

    def test_ignores_future_reconfiguration(self, small_network):
        """On a V-shaped workload with huge recon price, greedy re-buys
        the ramp while the online algorithm holds — greedy costs more."""
        T = 12
        vee = np.concatenate([np.linspace(4.0, 0.2, 6), np.linspace(0.2, 4.0, 6)])
        lam = vee[:, None] * np.ones((1, small_network.n_tier1))
        inst = Instance(
            small_network,
            lam,
            0.01 * np.ones((T, small_network.n_tier2)),
            0.01 * np.ones((T, small_network.n_edges)),
        )
        greedy_cost = evaluate_cost(inst, GreedyOneShot().run(inst)).total
        online_cost = evaluate_cost(
            inst, RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
        ).total
        off = solve_offline(inst).objective
        assert greedy_cost > online_cost > off - 1e-9

    def test_tracks_workload_exactly_when_prices_positive(self, small_instance):
        """Greedy allocates exactly enough coverage each slot."""
        traj = GreedyOneShot().run(small_instance)
        cov = small_instance.network.aggregate_tier1(traj.s)
        np.testing.assert_allclose(cov, small_instance.workload, rtol=1e-6, atol=1e-6)

    def test_step_equals_one_shot_lp(self, small_instance):
        from repro.model import Allocation

        g = GreedyOneShot()
        prev = Allocation.zeros(small_instance.network.n_edges)
        step = g.step(small_instance, 0, prev)
        ref = solve_offline(small_instance.slice(0, 1), initial=prev)
        np.testing.assert_allclose(step.s, ref.trajectory.s[0])
