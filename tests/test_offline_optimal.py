"""Tests for the full-horizon LP (offline optimum and its variants)."""

import numpy as np
import pytest

from repro.core.single import SingleResourceProblem, single_offline_optimal
from repro.model import Allocation, Trajectory, check_trajectory, evaluate_cost
from repro.offline import solve_offline

from conftest import make_instance, make_network


class TestBasicOptimum:
    def test_feasible(self, small_instance):
        res = solve_offline(small_instance)
        assert check_trajectory(small_instance, res.trajectory).ok

    def test_objective_matches_cost_model(self, small_instance):
        """The LP objective must equal evaluate_cost of its trajectory."""
        res = solve_offline(small_instance)
        cost = evaluate_cost(small_instance, res.trajectory)
        assert res.objective == pytest.approx(cost.total, rel=1e-6)

    def test_lower_bounds_any_feasible_trajectory(self, small_instance):
        res = solve_offline(small_instance)
        net = small_instance.network
        # A feasible reference: spread workload uniformly, hold peaks.
        counts = net.aggregate_tier1(np.ones(net.n_edges))
        s = small_instance.workload[:, net.edge_j] / counts[net.edge_j]
        ref = Trajectory(s, s, s)
        assert res.objective <= evaluate_cost(small_instance, ref).total + 1e-6

    def test_matches_scalar_lp_on_single_edge(self, single_edge_instance):
        inst = single_edge_instance
        res = solve_offline(inst)
        prob = SingleResourceProblem(
            inst.workload[:, 0],
            inst.tier2_price[:, 0],
            capacity=inst.network.tier2_capacity[0],
            recon_price=inst.network.tier2_recon_price[0],
        )
        _, scalar_opt = single_offline_optimal(prob)
        assert res.objective == pytest.approx(scalar_opt, rel=1e-8)

    def test_initial_state_lowers_cost(self, small_instance):
        net = small_instance.network
        free = solve_offline(small_instance)
        warm = Allocation(
            np.full(net.n_edges, 0.3),
            np.full(net.n_edges, 0.3),
            np.zeros(net.n_edges),
        )
        warmed = solve_offline(small_instance, initial=warm)
        assert warmed.objective <= free.objective + 1e-9


class TestPinnedTerminal:
    def test_terminal_reconfiguration_charged(self, small_instance):
        net = small_instance.network
        short = small_instance.slice(0, 4)
        free = solve_offline(short)
        big = Allocation(
            np.full(net.n_edges, 3.0),
            np.full(net.n_edges, 3.0),
            np.zeros(net.n_edges),
        )
        pinned = solve_offline(short, terminal=big)
        assert pinned.objective > free.objective

    def test_zero_terminal_is_free(self, small_instance):
        short = small_instance.slice(0, 4)
        free = solve_offline(short)
        pinned = solve_offline(
            short, terminal=Allocation.zeros(small_instance.network.n_edges)
        )
        assert pinned.objective == pytest.approx(free.objective, rel=1e-8)

    def test_pinned_raises_terminal_ramp(self, small_instance):
        """Pinning a large terminal should pull late allocations upward."""
        net = small_instance.network
        short = small_instance.slice(0, 4)
        big = Allocation(
            np.full(net.n_edges, 2.0),
            np.full(net.n_edges, 2.0),
            np.zeros(net.n_edges),
        )
        free = solve_offline(short)
        pinned = solve_offline(short, terminal=big)
        assert (
            pinned.trajectory.y[-1].sum() >= free.trajectory.y[-1].sum() - 1e-9
        )


class TestChargeDecrease:
    def test_reverse_charging_prefers_high_start(self, small_network):
        """With decrease-charging, ramping down costs; upper envelope holds high."""
        from repro.model import Instance

        T = 4
        lam = np.array([[4.0], [1.0], [1.0], [1.0]]) * np.ones((1, small_network.n_tier1))
        inst = Instance(
            small_network,
            lam,
            0.01 * np.ones((T, small_network.n_tier2)),
            0.01 * np.ones((T, small_network.n_edges)),
        )
        fwd = solve_offline(inst).trajectory
        rev = solve_offline(inst, charge_decrease=True).trajectory
        # Reverse charging keeps the allocation at the initial peak.
        assert rev.y[-1].sum() >= fwd.y[-1].sum() - 1e-9
        assert rev.y[-1].sum() == pytest.approx(rev.y[0].sum(), rel=1e-6)


class TestLowerBounds:
    def test_lower_bounds_respected(self, small_instance):
        net = small_instance.network
        short = small_instance.slice(0, 3)
        floor = Trajectory(
            np.full((3, net.n_edges), 0.4),
            np.full((3, net.n_edges), 0.4),
            np.zeros((3, net.n_edges)),
        )
        res = solve_offline(short, lower=floor)
        assert np.all(res.trajectory.x >= 0.4 - 1e-9)
        assert np.all(res.trajectory.y >= 0.4 - 1e-9)

    def test_lower_bounds_increase_cost(self, small_instance):
        net = small_instance.network
        short = small_instance.slice(0, 3)
        free = solve_offline(short)
        floor = Trajectory(
            np.full((3, net.n_edges), 1.0),
            np.full((3, net.n_edges), 1.0),
            np.zeros((3, net.n_edges)),
        )
        res = solve_offline(short, lower=floor)
        assert res.objective >= free.objective - 1e-9

    def test_wrong_shape_rejected(self, small_instance):
        with pytest.raises(ValueError, match="wrong shape"):
            solve_offline(
                small_instance.slice(0, 3),
                lower=Trajectory.zeros(2, small_instance.network.n_edges),
            )


class TestBruteForceCrossCheck:
    def test_two_slot_instance_against_grid_search(self):
        """Exhaustive grid search on a 1-edge, 2-slot problem."""
        from repro.model import Cloud, CloudNetwork, Instance, SLAEdge

        net = CloudNetwork(
            [Cloud("i", 4.0, recon_price=3.0)],
            [Cloud("j", np.inf)],
            [SLAEdge(0, 0, 4.0, recon_price=2.0)],
        )
        lam = np.array([[1.0], [2.0]])
        a = np.array([[1.0], [1.5]])
        c = np.array([[0.5], [0.5]])
        inst = Instance(net, lam, a, c)
        res = solve_offline(inst)

        # Grid search over x=y=s in [lam, 4] (optimal solutions have
        # x=y=s here because all prices are positive).
        grid = np.linspace(0, 4.0, 161)
        best = np.inf
        for v1 in grid:
            if v1 < 1.0:
                continue
            for v2 in grid:
                if v2 < 2.0:
                    continue
                cost = (
                    a[0, 0] * v1 + a[1, 0] * v2 + c[0, 0] * v1 + c[1, 0] * v2
                    + 3.0 * (v1 + max(v2 - v1, 0.0))
                    + 2.0 * (v1 + max(v2 - v1, 0.0))
                )
                best = min(best, cost)
        assert res.objective == pytest.approx(best, abs=1e-6)
