"""Tests for instance normalization (Theorem-1 Remarks)."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline, theorem1_ratio
from repro.model import (
    check_trajectory,
    denormalize_trajectory,
    evaluate_cost,
    normalize_instance,
)
from repro.offline import solve_offline

from conftest import make_instance, make_network


class TestNormalization:
    def test_capacities_in_unit_interval(self, small_instance):
        norm = normalize_instance(small_instance)
        net = norm.instance.network
        assert net.tier2_capacity.max() <= 1.0 + 1e-12
        assert net.edge_capacity.max() <= 1.0 + 1e-12
        assert norm.scale == pytest.approx(10.0)  # fixture tier-2 capacity

    def test_workload_rescaled(self, small_instance):
        norm = normalize_instance(small_instance)
        np.testing.assert_allclose(
            norm.instance.workload * norm.scale, small_instance.workload
        )

    def test_offline_cost_scales_linearly(self, small_instance):
        norm = normalize_instance(small_instance)
        c_orig = solve_offline(small_instance).objective
        c_norm = solve_offline(norm.instance).objective
        assert c_orig == pytest.approx(norm.scale * c_norm, rel=1e-6)

    def test_denormalized_solution_feasible_and_equal_cost(self, small_instance):
        norm = normalize_instance(small_instance)
        traj_n = RegularizedOnline(SubproblemConfig(epsilon=1e-3)).run(norm.instance)
        traj = denormalize_trajectory(traj_n, norm.scale)
        assert check_trajectory(small_instance, traj).ok
        c_orig_units = evaluate_cost(small_instance, traj).total
        c_norm_units = evaluate_cost(norm.instance, traj_n).total
        assert c_orig_units == pytest.approx(norm.scale * c_norm_units, rel=1e-9)

    def test_ratio_invariance(self, small_instance):
        """The empirical competitive ratio is invariant to normalization."""
        norm = normalize_instance(small_instance)
        eps = 1e-2
        def ratio(inst):
            on = evaluate_cost(
                inst, RegularizedOnline(SubproblemConfig(epsilon=eps)).run(inst)
            ).total
            return on / solve_offline(inst).objective
        # Note: epsilon is *not* rescaled, so the algorithms differ
        # slightly; rescale epsilon to compare like for like.
        on_n = evaluate_cost(
            norm.instance,
            RegularizedOnline(SubproblemConfig(epsilon=eps / norm.scale)).run(norm.instance),
        ).total
        r_norm = on_n / solve_offline(norm.instance).objective
        r_orig = ratio(small_instance)
        assert r_norm == pytest.approx(r_orig, rel=1e-4)

    def test_theorem1_bound_shrinks_after_normalization(self, small_instance):
        norm = normalize_instance(small_instance)
        assert theorem1_ratio(norm.instance.network, 1e-2) < theorem1_ratio(
            small_instance.network, 1e-2
        )

    def test_denormalize_validation(self):
        from repro.model import Trajectory

        with pytest.raises(ValueError):
            denormalize_trajectory(Trajectory.zeros(1, 1), 0.0)
