"""Tests for the utility layer (rng, validation, timing)."""

import time

import numpy as np
import pytest

from repro.util import (
    Timer,
    as_generator,
    check_finite,
    check_nonnegative,
    check_positive,
    check_shape,
    spawn_generators,
)


class TestRng:
    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        kids = spawn_generators(7, 3)
        draws = [g.random(4) for g in kids]
        assert not np.allclose(draws[0], draws[1])
        # Re-spawning reproduces the same children.
        again = spawn_generators(7, 3)
        np.testing.assert_array_equal(draws[2], again[2].random(4))

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        kids = spawn_generators(np.random.default_rng(1), 2)
        assert len(kids) == 2


class TestValidation:
    def test_check_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("x", np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("x", np.array([np.inf]))
        np.testing.assert_array_equal(check_finite("x", [1, 2]), [1.0, 2.0])

    def test_check_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative("x", np.array([-0.1]))
        check_nonnegative("x", np.array([0.0, 1.0]))

    def test_check_positive(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_positive("x", np.array([0.0]))
        check_positive("x", np.array([0.5]))

    def test_check_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("x", np.zeros((2, 3)), (3, 2))
        check_shape("x", np.zeros((2, 3)), (2, 3))


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first

    def test_nested_reentry_same_instance(self):
        # Re-entering one Timer must not corrupt the outer measurement:
        # each __exit__ pops its own start mark.
        t = Timer()
        with t:
            time.sleep(0.01)
            with t:
                pass
            inner = t.elapsed
        assert inner < 0.005
        assert t.elapsed >= 0.009

    def test_running_property(self):
        t = Timer()
        assert not t.running
        with t:
            assert t.running
        assert not t.running

    def test_exit_without_enter_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="without a matching"):
            t.__exit__(None, None, None)

    def test_named_timer_emits_span(self, tmp_path):
        from repro.obs import tracing

        path = tmp_path / "trace.jsonl"
        tracing.enable(path=str(path))
        try:
            with Timer("unit.work", job="t1"):
                pass
            with Timer():  # unnamed: must not emit a span
                pass
        finally:
            tracing.disable()
        records = tracing.read_trace(path)
        assert [r["name"] for r in records] == ["unit.work"]
        assert records[0]["attrs"] == {"job": "t1"}
        assert records[0]["duration_s"] >= 0.0

    def test_no_span_when_tracing_disabled(self):
        # Disabled tracing is the default; a named Timer still works.
        with Timer("unit.work") as t:
            pass
        assert t.elapsed >= 0.0
