"""Tests for the utility layer (rng, validation, timing)."""

import time

import numpy as np
import pytest

from repro.util import (
    Timer,
    as_generator,
    check_finite,
    check_nonnegative,
    check_positive,
    check_shape,
    spawn_generators,
)


class TestRng:
    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        kids = spawn_generators(7, 3)
        draws = [g.random(4) for g in kids]
        assert not np.allclose(draws[0], draws[1])
        # Re-spawning reproduces the same children.
        again = spawn_generators(7, 3)
        np.testing.assert_array_equal(draws[2], again[2].random(4))

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        kids = spawn_generators(np.random.default_rng(1), 2)
        assert len(kids) == 2


class TestValidation:
    def test_check_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("x", np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("x", np.array([np.inf]))
        np.testing.assert_array_equal(check_finite("x", [1, 2]), [1.0, 2.0])

    def test_check_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative("x", np.array([-0.1]))
        check_nonnegative("x", np.array([0.0, 1.0]))

    def test_check_positive(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_positive("x", np.array([0.0]))
        check_positive("x", np.array([0.5]))

    def test_check_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("x", np.zeros((2, 3)), (3, 2))
        check_shape("x", np.zeros((2, 3)), (2, 3))


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first
