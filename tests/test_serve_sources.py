"""Tests for the serve slot sources (repro.serve.sources)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import SlotData
from repro.serve import (
    InstanceSource,
    JSONLSource,
    TraceCSVSource,
    as_source,
    write_feed,
)

from conftest import make_instance, make_network


class TestInstanceSource:
    def test_yields_every_slot(self, small_instance):
        source = InstanceSource(small_instance)
        slots = list(source.slots(0))
        assert len(slots) == small_instance.horizon == source.horizon
        for t, slot in enumerate(slots):
            assert np.array_equal(slot.workload, small_instance.workload[t])

    def test_start_offset_skips_served_slots(self, small_instance):
        source = InstanceSource(small_instance)
        slots = list(source.slots(5))
        assert len(slots) == small_instance.horizon - 5
        assert np.array_equal(slots[0].workload, small_instance.workload[5])

    def test_as_source_coerces_instance(self, small_instance):
        source = as_source(small_instance)
        assert isinstance(source, InstanceSource)
        assert as_source(source) is source

    def test_as_source_rejects_junk(self):
        with pytest.raises(TypeError, match="SlotSource"):
            as_source(42)


class TestTraceCSVSource:
    def test_builds_paper_instance_from_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        rows = "\n".join(f"{h},{100 + 10 * h}" for h in range(12))
        path.write_text("hour,requests\n" + rows + "\n")
        source = TraceCSVSource(path, horizon=8, k=2, n_tier2=3, n_tier1=4)
        assert source.horizon == 8
        assert source.network.n_tier1 == 4
        assert source.network.n_tier2 == 3
        slots = list(source.slots(0))
        assert len(slots) == 8
        # The trace is replicated across tier-1 clouds.
        assert np.allclose(slots[0].workload, 100.0)

    def test_all_zero_trace_rejected(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("0\n0\n0\n")
        with pytest.raises(ValueError, match="no positive demand"):
            TraceCSVSource(path, n_tier2=3, n_tier1=4)


class TestJSONLSource:
    def test_feed_round_trip_is_bitwise(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=6, seed=5)
        path = tmp_path / "feed.jsonl"
        assert write_feed(path, InstanceSource(inst)) == 6
        source = JSONLSource(path, small_network)
        assert source.horizon == 6
        for t, slot in enumerate(source.slots(0)):
            assert np.array_equal(slot.workload, inst.workload[t])
            assert np.array_equal(slot.tier2_price, inst.tier2_price[t])
            assert np.array_equal(slot.link_price, inst.link_price[t])

    def test_header_line_is_skipped(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=3, seed=5)
        path = tmp_path / "feed.jsonl"
        write_feed(path, InstanceSource(inst))
        first = path.read_text().splitlines()[0]
        assert json.loads(first)["schema"] == "repro-serve-feed/v1"
        assert JSONLSource(path, small_network).horizon == 3

    def test_malformed_json_names_line(self, small_network, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"schema": "repro-serve-feed/v1"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            JSONLSource(path, small_network)

    def test_shape_mismatch_names_line(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=2, seed=5)
        path = tmp_path / "feed.jsonl"
        write_feed(path, InstanceSource(inst))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"t": 2, "workload": [1.0], "tier2_price": [1.0],
                     "link_price": [1.0]}
                )
                + "\n"
            )
        with pytest.raises(ValueError, match="line 4"):
            JSONLSource(path, small_network)

    def test_gap_in_slot_indices_rejected(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=3, seed=5)
        path = tmp_path / "feed.jsonl"
        write_feed(path, InstanceSource(inst))
        lines = path.read_text().splitlines()
        del lines[2]  # drop the t=1 record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="contiguous"):
            JSONLSource(path, small_network)

    def test_slots_start_offset(self, small_network, tmp_path):
        inst = make_instance(small_network, horizon=5, seed=5)
        path = tmp_path / "feed.jsonl"
        write_feed(path, InstanceSource(inst))
        slots = list(JSONLSource(path, small_network).slots(3))
        assert len(slots) == 2
        assert np.array_equal(slots[0].workload, inst.workload[3])


class TestSlotDataValidation:
    """Satellite: reject NaN/negative/mismatched inputs with clear errors."""

    def test_nan_workload_names_field(self):
        with pytest.raises(ValueError, match="workload.*non-finite"):
            SlotData(np.array([1.0, np.nan]), np.ones(2), np.ones(2))

    def test_inf_price_names_field(self):
        with pytest.raises(ValueError, match="tier2_price.*non-finite"):
            SlotData(np.ones(2), np.array([np.inf, 1.0]), np.ones(2))

    def test_negative_link_price_names_field(self):
        with pytest.raises(ValueError, match="link_price.*non-negative"):
            SlotData(np.ones(2), np.ones(2), np.array([0.5, -0.5]))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="workload.*1-D"):
            SlotData(np.ones((2, 2)), np.ones(2), np.ones(2))

    def test_validate_checks_shapes_against_network(self, small_network):
        net = small_network
        good = SlotData(
            np.ones(net.n_tier1), np.ones(net.n_tier2), np.ones(net.n_edges)
        )
        assert good.validate(net) is good
        bad = SlotData(np.ones(net.n_tier1 + 1), np.ones(net.n_tier2),
                       np.ones(net.n_edges))
        with pytest.raises(ValueError, match="workload has shape"):
            bad.validate(net)
