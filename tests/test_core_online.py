"""Tests for the regularized online algorithm (end-to-end behaviour)."""

import numpy as np
import pytest

from repro.core import SubproblemConfig, RegularizedOnline, single_online_decay
from repro.core.single import SingleResourceProblem
from repro.model import Allocation, check_trajectory, evaluate_cost
from repro.offline import solve_offline

from conftest import make_instance, make_network


class TestFeasibility:
    def test_every_slot_feasible(self, small_instance):
        traj = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(small_instance)
        rep = check_trajectory(small_instance, traj)
        assert rep.ok, rep.describe()

    def test_feasible_across_epsilons(self, small_instance):
        for eps in (1e-3, 1e-1, 10.0):
            traj = RegularizedOnline(SubproblemConfig(epsilon=eps)).run(small_instance)
            assert check_trajectory(small_instance, traj).ok

    def test_initial_state_respected(self, small_instance):
        net = small_instance.network
        init = Allocation(
            np.full(net.n_edges, 0.5),
            np.full(net.n_edges, 0.5),
            np.zeros(net.n_edges),
        )
        traj = RegularizedOnline().run(small_instance, initial=init)
        assert check_trajectory(small_instance, traj).ok


class TestAgainstOffline:
    def test_cost_at_least_offline(self, small_instance):
        on = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(small_instance)
        off = solve_offline(small_instance)
        assert evaluate_cost(small_instance, on).total >= off.objective - 1e-6

    def test_ratio_reasonable_on_small_instance(self, small_instance):
        on = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(small_instance)
        off = solve_offline(small_instance)
        ratio = evaluate_cost(small_instance, on).total / off.objective
        assert ratio < 3.0  # the paper's empirical envelope


class TestScalarEquivalence:
    def test_matches_closed_form_on_single_edge(self, single_edge_instance):
        """On a 1x1 network with free links, P2(t) reduces to eq. (4)-(6)."""
        inst = single_edge_instance
        traj = RegularizedOnline(SubproblemConfig(epsilon=0.05)).run(inst)
        X = traj.tier2_totals(inst.network)[:, 0]

        prob = SingleResourceProblem(
            inst.workload[:, 0],
            inst.tier2_price[:, 0],
            capacity=inst.network.tier2_capacity[0],
            recon_price=inst.network.tier2_recon_price[0],
        )
        x_closed = single_online_decay(prob, epsilon=0.05)
        np.testing.assert_allclose(X, x_closed, rtol=1e-4, atol=1e-5)


class TestDecayBehaviour:
    def test_workload_following_on_the_way_up(self, small_network):
        """Rising demand: allocation tracks the workload exactly."""
        T = 6
        lam = np.linspace(0.5, 4.0, T)[:, None] * np.ones((1, small_network.n_tier1))
        from repro.model import Instance

        inst = Instance(
            small_network,
            lam,
            np.ones((T, small_network.n_tier2)),
            0.1 * np.ones((T, small_network.n_edges)),
        )
        traj = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
        cov = inst.network.aggregate_tier1(traj.s)
        np.testing.assert_allclose(cov, lam, rtol=1e-4, atol=1e-4)

    def test_exponential_release_on_the_way_down(self, small_network):
        """Falling demand: totals decay geometrically, not instantly."""
        from repro.model import Instance

        T = 8
        lam = np.zeros((T, small_network.n_tier1))
        lam[0, :] = 4.0
        lam[1:, :] = 0.01
        inst = Instance(
            small_network,
            lam,
            np.ones((T, small_network.n_tier2)),
            0.1 * np.ones((T, small_network.n_edges)),
        )
        traj = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
        total = traj.tier2_totals(inst.network).sum(axis=1)
        # Strictly decreasing but never an instant cliff to the floor.
        assert np.all(np.diff(total) < 1e-9)
        assert total[1] > 0.3 * total[0]

    def test_lower_epsilon_decays_faster(self, small_network):
        """Decay factor (1 + C/eps)^(-a/b) shrinks as eps -> 0."""
        from repro.model import Instance

        T = 6
        lam = np.zeros((T, small_network.n_tier1))
        lam[0, :] = 4.0
        lam[1:, :] = 0.01
        inst = Instance(
            small_network,
            lam,
            np.ones((T, small_network.n_tier2)),
            0.1 * np.ones((T, small_network.n_edges)),
        )
        slow = RegularizedOnline(SubproblemConfig(epsilon=10.0)).run(inst)
        fast = RegularizedOnline(SubproblemConfig(epsilon=1e-3)).run(inst)
        s_tot = slow.tier2_totals(inst.network).sum(axis=1)
        f_tot = fast.tier2_totals(inst.network).sum(axis=1)
        assert f_tot[-1] < s_tot[-1]


class TestBackends:
    def test_barrier_and_trust_constr_agree_end_to_end(self, small_instance):
        from repro.solvers import SolverOptions

        cfg_b = SubproblemConfig(
            epsilon=1e-2, solver=SolverOptions(backend="barrier", fallback=False)
        )
        cfg_t = SubproblemConfig(
            epsilon=1e-2, solver=SolverOptions(backend="trust-constr")
        )
        short = small_instance.slice(0, 6)
        cb = evaluate_cost(short, RegularizedOnline(cfg_b).run(short)).total
        ct = evaluate_cost(short, RegularizedOnline(cfg_t).run(short)).total
        assert cb == pytest.approx(ct, rel=1e-3)


class TestStepAPI:
    def test_step_matches_run_first_slot(self, small_instance):
        """The public single-step API agrees with the run loop."""
        algo = RegularizedOnline(SubproblemConfig(epsilon=1e-2))
        sub = algo.make_subproblem(small_instance)
        prev = Allocation.zeros(small_instance.network.n_edges)
        stepped = algo.step(sub, small_instance, 0, prev)
        full = algo.run(small_instance)
        np.testing.assert_allclose(
            stepped.tier2_totals(small_instance.network),
            full.tier2_totals(small_instance.network)[0],
            rtol=1e-5,
            atol=1e-7,
        )
