"""The deterministic parallel sweep runner (repro.evaluation.parallel)."""

import time

import numpy as np
import pytest

from repro.engine.stats import RunStats, StepStats
from repro.evaluation.parallel import parallel_map, run_sweep
from repro.evaluation.runner import stats_collector


# Workers must be module-level (picklable under ProcessPoolExecutor).
def _square(x):
    return x * x


def _slow_inverse(x):
    # Later items finish first: exposes any completion-order dependence.
    time.sleep(0.05 * (4 - x))
    return x


def _draw(x):
    # Depends on the per-point seed planted by the runner.
    return float(np.random.random()) + x


def _recording(x):
    stats = RunStats([StepStats(t=0, wall_time=0.0, n_solves=x)])
    stats_collector.add(f"point-{x}", stats)
    return x


@pytest.fixture(autouse=True)
def _clean_collector():
    stats_collector.disable()
    stats_collector.records = []
    yield
    stats_collector.disable()
    stats_collector.records = []


class TestParallelMap:
    def test_results_in_input_order(self):
        items = [0, 1, 2, 3]
        assert parallel_map(_slow_inverse, items, jobs=4) == items

    def test_serial_equals_parallel(self):
        items = list(range(6))
        assert parallel_map(_square, items) == parallel_map(_square, items, jobs=2)

    def test_jobs_one_and_zero_run_inline(self):
        assert parallel_map(_square, [2, 3], jobs=0) == [4, 9]
        assert parallel_map(_square, [2, 3], jobs=1) == [4, 9]

    def test_seed_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="seeds"):
            parallel_map(_square, [1, 2, 3], seeds=[1, 2])


class TestSeeding:
    def test_per_point_seeds_scheduling_free(self):
        grid = list(range(5))
        serial = run_sweep(_draw, grid, base_seed=7)
        parallel = run_sweep(_draw, grid, jobs=3, base_seed=7)
        assert serial == parallel  # bitwise: same floats from same seeds

    def test_seeds_are_per_point_not_per_worker(self):
        # Same point position -> same draw, regardless of grid size.
        a = run_sweep(_draw, [0, 1], jobs=2, base_seed=3)
        b = run_sweep(_draw, [0, 1, 2], jobs=2, base_seed=3)
        assert a == b[:2]


class TestStatsMerge:
    def test_records_merged_in_submission_order(self):
        stats_collector.enable()
        parallel_map(_recording, [3, 1, 2], jobs=3)
        assert [name for name, _ in stats_collector.records] == [
            "point-3",
            "point-1",
            "point-2",
        ]
        assert [s.steps[0].n_solves for _, s in stats_collector.records] == [3, 1, 2]

    def test_serial_and_parallel_records_identical(self):
        stats_collector.enable()
        parallel_map(_recording, [3, 1, 2])
        serial = stats_collector.clear()
        parallel_map(_recording, [3, 1, 2], jobs=2)
        parallel = stats_collector.clear()
        assert [name for name, _ in serial] == [name for name, _ in parallel]

    def test_workers_do_not_duplicate_parent_records(self):
        # Under fork, workers inherit the parent's collector contents;
        # _run_point must reset it so records are merged exactly once.
        stats_collector.enable()
        stats_collector.add("pre-existing", RunStats([]))
        parallel_map(_recording, [1, 2], jobs=2)
        names = [name for name, _ in stats_collector.records]
        assert names == ["pre-existing", "point-1", "point-2"]

    def test_disabled_collector_stays_empty(self):
        parallel_map(_recording, [1, 2], jobs=2)
        assert stats_collector.records == []


def _counting(x):
    # Publishes into whatever registry is active in the worker process.
    from repro.obs import metrics as obs_metrics

    reg = obs_metrics.active()
    if reg is not None:
        reg.counter(
            "sweep_points_total", help="points", parity=str(x % 2)
        ).inc()
        reg.histogram("sweep_point_cost", help="cost").observe(float(x))
    return x


class TestTelemetryMerge:
    def test_parallel_counters_merge_into_parent_registry(self):
        from repro.obs import metrics as obs_metrics

        with obs_metrics.use() as reg:
            parallel_map(_counting, list(range(6)), jobs=2)
            entries = [
                e
                for e in reg.snapshot()["metrics"]
                if e["name"] == "sweep_points_total"
            ]
            assert sum(e["value"] for e in entries) == 6
            hist = [
                e
                for e in reg.snapshot()["metrics"]
                if e["name"] == "sweep_point_cost"
            ]
            assert hist[0]["count"] == 6

    def test_serial_and_parallel_views_identical(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs.telemetry import deterministic_view

        with obs_metrics.use() as reg:
            parallel_map(_counting, list(range(6)), jobs=0)
            serial = deterministic_view(reg.snapshot())
        with obs_metrics.use() as reg:
            parallel_map(_counting, list(range(6)), jobs=3)
            merged = deterministic_view(reg.snapshot())
        assert serial == merged

    def test_no_registry_means_no_telemetry(self):
        from repro.obs import metrics as obs_metrics

        assert obs_metrics.active() is None
        assert parallel_map(_counting, [1, 2], jobs=2) == [1, 2]
