"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_subcommand_prints_help_exit_2(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "usage: repro" in out
        assert "serve" in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_parser_still_rejects_bad_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


@pytest.fixture
def trace_csv(tmp_path):
    path = tmp_path / "trace.csv"
    rows = "\n".join(f"{h},{100 + 20 * (h % 6)}" for h in range(8))
    path.write_text("hour,requests\n" + rows + "\n")
    return path


class TestServeCommand:
    SMALL = ["--n-tier2", "3", "--n-tier1", "4", "--k", "2"]

    def test_serve_trace_all_slots_served(self, capsys, trace_csv, tmp_path):
        events = tmp_path / "events.jsonl"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--events", str(events),
             "--inject-stall", "0.3", "--inject-fail", "0.2",
             "--inject-seed", "7", *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 slots (8 served, 0 unserved)" in out
        payloads = [json.loads(line) for line in events.read_text().splitlines()]
        assert sum(p["event"] == "slot_decided" for p in payloads) == 8

    def test_serve_then_resume(self, capsys, trace_csv, tmp_path):
        ck = tmp_path / "run.ckpt"
        base = ["serve", "--trace", str(trace_csv), "--checkpoint", str(ck),
                *self.SMALL]
        assert main([*base, "--horizon", "3"]) == 0
        assert ck.exists()
        rc = main([*base, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed from" in out and "at slot 3" in out

    def test_replay_renders_event_log(self, capsys, trace_csv, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--events", str(events), *self.SMALL]
        ) == 0
        capsys.readouterr()
        assert main(["replay", str(events)]) == 0
        out = capsys.readouterr().out
        assert "slots" in out and "path:primary" in out

    def test_replay_missing_events_fails(self, capsys, tmp_path):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        assert main(["replay", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err


class TestMetricsFlag:
    SMALL = TestServeCommand.SMALL

    def test_serve_with_metrics_exports_and_disables(self, capsys, trace_csv, tmp_path):
        from repro.obs import metrics, tracing
        from repro.obs.export import parse_prometheus

        prom = tmp_path / "serve.prom"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--metrics", str(prom), *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # The layer is switched off again after the command.
        assert metrics.active() is None and tracing.active() is None
        samples = parse_prometheus(prom.read_text())
        assert samples[("serve_slot_seconds_count", ())] == 4
        assert samples[("serve_slots_total", (("path", "primary"),))] == 4
        trace = tmp_path / "serve.prom.trace.jsonl"
        assert trace.exists()
        assert "== metrics ==" in out
        assert "serve_phase_seconds" in out

    def test_replay_with_metrics_reaggregates(self, capsys, trace_csv, tmp_path):
        from repro.obs.export import parse_prometheus

        events = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "3",
             "--events", str(events), *self.SMALL]
        ) == 0
        capsys.readouterr()
        prom = tmp_path / "replay.prom"
        assert main(["replay", str(events), "--metrics", str(prom)]) == 0
        samples = parse_prometheus(prom.read_text())
        assert samples[("serve_slots_total", (("path", "primary"),))] == 3
        assert samples[("serve_decide_seconds_count", ())] == 3

    def test_metrics_written_even_when_command_fails(self, capsys, tmp_path):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        prom = tmp_path / "fail.prom"
        assert main(["replay", str(empty), "--metrics", str(prom)]) == 1
        # The registry had nothing, but the export still happened.
        assert prom.exists()


class TestRun:
    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "price_per_gb" in out
        assert "0.09" in out

    def test_run_thm23(self, capsys):
        assert main(["run", "thm23"]) == 0
        out = capsys.readouterr().out
        assert "greedy/opt" in out
