"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_subcommand_prints_help_exit_2(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "usage: repro" in out
        assert "serve" in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_parser_still_rejects_bad_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


@pytest.fixture
def trace_csv(tmp_path):
    path = tmp_path / "trace.csv"
    rows = "\n".join(f"{h},{100 + 20 * (h % 6)}" for h in range(8))
    path.write_text("hour,requests\n" + rows + "\n")
    return path


class TestServeCommand:
    SMALL = ["--n-tier2", "3", "--n-tier1", "4", "--k", "2"]

    def test_serve_trace_all_slots_served(self, capsys, trace_csv, tmp_path):
        events = tmp_path / "events.jsonl"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--events", str(events),
             "--inject-stall", "0.3", "--inject-fail", "0.2",
             "--inject-seed", "7", *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 slots (8 served, 0 unserved)" in out
        payloads = [json.loads(line) for line in events.read_text().splitlines()]
        assert sum(p["event"] == "slot_decided" for p in payloads) == 8

    def test_serve_then_resume(self, capsys, trace_csv, tmp_path):
        ck = tmp_path / "run.ckpt"
        base = ["serve", "--trace", str(trace_csv), "--checkpoint", str(ck),
                *self.SMALL]
        assert main([*base, "--horizon", "3"]) == 0
        assert ck.exists()
        rc = main([*base, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed from" in out and "at slot 3" in out

    def test_replay_renders_event_log(self, capsys, trace_csv, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--events", str(events), *self.SMALL]
        ) == 0
        capsys.readouterr()
        assert main(["replay", str(events)]) == 0
        out = capsys.readouterr().out
        assert "slots" in out and "path:primary" in out

    def test_replay_missing_events_fails(self, capsys, tmp_path):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        assert main(["replay", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err

    @pytest.mark.parametrize("ms", ["0", "-250"])
    def test_nonpositive_deadline_exits_2_naming_the_flag(
        self, capsys, trace_csv, ms
    ):
        rc = main(
            ["serve", "--trace", str(trace_csv), "--deadline-ms", ms, *self.SMALL]
        )
        assert rc == 2
        assert "--deadline-ms" in capsys.readouterr().err


class TestShardedServe:
    # k=1 on 3x6 splits into 3 SLA components; the batched backend on
    # this topology class is the bitwise-parity regime (docs/SERVING.md).
    SHARDABLE = ["--n-tier2", "3", "--n-tier1", "6", "--k", "1",
                 "--backend", "batched"]

    def test_sharded_decisions_byte_equal_single_process(
        self, capsys, trace_csv, tmp_path
    ):
        single = tmp_path / "single.npy"
        sharded = tmp_path / "sharded.npy"
        base = ["serve", "--trace", str(trace_csv), *self.SHARDABLE]
        assert main([*base, "--decisions", str(single)]) == 0
        rc = main(
            [*base, "--shards", "3", "--kill-shard", "1:2",
             "--decisions", str(sharded)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 slots (8 served, 0 unserved)" in out
        assert single.read_bytes() == sharded.read_bytes()

    def test_sharded_prometheus_parity_projection_byte_equal(
        self, capsys, trace_csv, tmp_path
    ):
        from repro.shard import parity_text_from_prometheus

        base = ["serve", "--trace", str(trace_csv), *self.SHARDABLE]
        assert main([*base, "--metrics", str(tmp_path / "single.prom")]) == 0
        assert main(
            [*base, "--shards", "3", "--metrics", str(tmp_path / "sharded.prom")]
        ) == 0
        single = parity_text_from_prometheus(tmp_path / "single.prom")
        sharded = parity_text_from_prometheus(tmp_path / "sharded.prom")
        assert single == sharded
        assert "serve_slots_total" in single

    def test_serve_prints_shard_plan(self, capsys, trace_csv):
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "2",
             "--shards", "2", "--partition", "affinity", *self.SHARDABLE]
        ) == 0
        out = capsys.readouterr().out
        assert "2 shards (affinity)" in out
        assert "0:[3, 5]" in out and "1:[0, 1, 2, 4]" in out

    def test_too_many_shards_exits_2_with_guidance(self, capsys, trace_csv):
        rc = main(
            ["serve", "--trace", str(trace_csv), "--shards", "5", *self.SHARDABLE]
        )
        assert rc == 2
        assert "SLA component" in capsys.readouterr().err

    def test_malformed_kill_shard_exits_2(self, capsys, trace_csv):
        rc = main(
            ["serve", "--trace", str(trace_csv), "--shards", "2",
             "--kill-shard", "nope", *self.SHARDABLE]
        )
        assert rc == 2
        assert "--kill-shard" in capsys.readouterr().err

    def test_shard_status_command(self, capsys, trace_csv, tmp_path):
        tele = tmp_path / "tele"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--shards", "2", "--telemetry", str(tele), *self.SHARDABLE]
        ) == 0
        capsys.readouterr()
        assert main(["shard", "status", str(tele)]) == 0
        out = capsys.readouterr().out
        assert "shard status" in out
        assert "shard-0" in out and "shard-1" in out

    def test_shard_status_missing_dir_fails(self, capsys, tmp_path):
        assert main(["shard", "status", str(tmp_path / "nope")]) == 1
        assert "telemetry" in capsys.readouterr().err


class TestMetricsFlag:
    SMALL = TestServeCommand.SMALL

    def test_serve_with_metrics_exports_and_disables(self, capsys, trace_csv, tmp_path):
        from repro.obs import metrics, tracing
        from repro.obs.export import parse_prometheus

        prom = tmp_path / "serve.prom"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--metrics", str(prom), *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # The layer is switched off again after the command.
        assert metrics.active() is None and tracing.active() is None
        samples = parse_prometheus(prom.read_text())
        assert samples[("serve_slot_seconds_count", ())] == 4
        assert samples[("serve_slots_total", (("path", "primary"),))] == 4
        trace = tmp_path / "serve.prom.trace.jsonl"
        assert trace.exists()
        assert "== metrics ==" in out
        assert "serve_phase_seconds" in out

    def test_replay_with_metrics_reaggregates(self, capsys, trace_csv, tmp_path):
        from repro.obs.export import parse_prometheus

        events = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "3",
             "--events", str(events), *self.SMALL]
        ) == 0
        capsys.readouterr()
        prom = tmp_path / "replay.prom"
        assert main(["replay", str(events), "--metrics", str(prom)]) == 0
        samples = parse_prometheus(prom.read_text())
        assert samples[("serve_slots_total", (("path", "primary"),))] == 3
        assert samples[("serve_decide_seconds_count", ())] == 3

    def test_metrics_written_even_when_command_fails(self, capsys, tmp_path):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        prom = tmp_path / "fail.prom"
        assert main(["replay", str(empty), "--metrics", str(prom)]) == 1
        # The registry had nothing, but the export still happened.
        assert prom.exists()


class TestRun:
    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "price_per_gb" in out
        assert "0.09" in out

    def test_run_thm23(self, capsys):
        assert main(["run", "thm23"]) == 0
        out = capsys.readouterr().out
        assert "greedy/opt" in out


class TestTelemetryAndHealth:
    SMALL = TestServeCommand.SMALL

    def test_serve_telemetry_writes_replayable_sink(self, capsys, trace_csv, tmp_path):
        from repro.obs import telemetry as obs_telemetry

        tdir = tmp_path / "telemetry"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--telemetry", str(tdir), *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"telemetry: {tdir}" in out
        assert obs_telemetry.active_sink() is None  # detached afterwards
        sinks = list(tdir.glob(f"*{obs_telemetry.SINK_SUFFIX}"))
        assert len(sinks) == 1
        snapshot = obs_telemetry.replay_sink(obs_telemetry.read_sink(sinks[0]))
        slots = [
            e for e in snapshot["metrics"] if e["name"] == "serve_slots_total"
        ]
        assert sum(e["value"] for e in slots) == 4

    def test_serve_alert_rule_emits_event_and_health_gauges(
        self, capsys, trace_csv, tmp_path
    ):
        from repro.obs.export import parse_prometheus

        events = tmp_path / "events.jsonl"
        prom = tmp_path / "serve.prom"
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--events", str(events), "--metrics", str(prom),
             "--alert", "competitive_ratio>=1",
             "--alert", "slo_burn_rate>100",  # never fires
             *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 alerts" in out
        assert "ALERT t=0: competitive_ratio>=1" in out
        payloads = [json.loads(line) for line in events.read_text().splitlines()]
        alerts = [p for p in payloads if p["event"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["metric"] == "health_competitive_ratio"
        samples = parse_prometheus(prom.read_text())
        assert samples[("health_competitive_ratio", ())] >= 1.0
        assert ("health_switching_share", ()) in samples
        assert ("health_slo_burn_rate", ()) in samples
        assert samples[
            ("serve_alerts_total", (("rule", "competitive_ratio>=1"),))
        ] == 1
        capsys.readouterr()
        assert main(["replay", str(events)]) == 0
        replay_out = capsys.readouterr().out
        assert "alerts" in replay_out and "competitive_ratio>=1" in replay_out

    def test_serve_rejects_malformed_alert_rule(self, capsys, trace_csv):
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "2",
             "--alert", "not a rule", *self.SMALL]
        )
        assert rc == 1
        assert "malformed alert rule" in capsys.readouterr().err

    def test_serve_watch_renders_frames(self, capsys, trace_csv):
        rc = main(
            ["serve", "--trace", str(trace_csv), "--horizon", "3",
             "--watch", *self.SMALL]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # One frame per slot, driven off the live registry.
        assert out.count("== serve slot") == 3
        assert "slots decided" in out

    def test_telemetry_merge_command(self, capsys, trace_csv, tmp_path):
        tdir = tmp_path / "telemetry"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "4",
             "--telemetry", str(tdir), *self.SMALL]
        ) == 0
        capsys.readouterr()
        out_prom = tmp_path / "merged.prom"
        assert main(
            ["telemetry", "merge", str(tdir), "--out", str(out_prom)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 sinks" in out
        assert "== metrics ==" in out
        from repro.obs.export import parse_prometheus

        samples = parse_prometheus(out_prom.read_text())
        assert samples[("serve_slots_total", (("path", "primary"),))] == 4

    def test_telemetry_merge_empty_dir_fails(self, capsys, tmp_path):
        assert main(["telemetry", "merge", str(tmp_path)]) == 1
        assert "no telemetry" in capsys.readouterr().err

    def test_telemetry_watch_iterations(self, capsys, trace_csv, tmp_path):
        tdir = tmp_path / "telemetry"
        assert main(
            ["serve", "--trace", str(trace_csv), "--horizon", "2",
             "--telemetry", str(tdir), *self.SMALL]
        ) == 0
        capsys.readouterr()
        assert main(
            ["telemetry", "watch", str(tdir), "--iterations", "2",
             "--interval", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("== telemetry") == 2
