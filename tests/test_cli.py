"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "price_per_gb" in out
        assert "0.09" in out

    def test_run_thm23(self, capsys):
        assert main(["run", "thm23"]) == 0
        out = capsys.readouterr().out
        assert "greedy/opt" in out
