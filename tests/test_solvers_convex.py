"""Tests for the convex-program layer: objective math, both backends, KKT."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import (
    ConvexSolverError,
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
    first_order_certificate,
)
from repro.solvers.convex import EntropicTerm


def entropic_program(n=6, seed=0, tight=False):
    """Random covering program with entropic terms (P2(t)-shaped)."""
    rng = np.random.default_rng(seed)
    linear = rng.random(n) * 2.0
    ref = rng.random(n)
    term = EntropicTerm(np.arange(n), weight=rng.random(n) * 3.0, eps=0.05, ref=ref)
    obj = SeparableObjective(n, linear, [term])
    # sum v >= rhs, plus box [0, ub].
    ub = np.full(n, 2.0)
    rhs = 0.5 * n * (1.6 if tight else 0.5)
    A = -sp.csr_matrix(np.ones((1, n)))
    b = np.array([-rhs])
    return SmoothConvexProgram(obj, A, b, np.zeros(n), ub)


class TestSeparableObjective:
    def test_gradient_matches_finite_differences(self):
        prog = entropic_program()
        rng = np.random.default_rng(1)
        v = rng.random(prog.objective.n) + 0.1
        g = prog.objective.grad(v)
        h = 1e-6
        for k in range(prog.objective.n):
            e = np.zeros_like(v)
            e[k] = h
            fd = (prog.objective.value(v + e) - prog.objective.value(v - e)) / (2 * h)
            assert g[k] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_hessian_matches_finite_differences(self):
        prog = entropic_program(seed=2)
        rng = np.random.default_rng(3)
        v = rng.random(prog.objective.n) + 0.2
        hd = prog.objective.hess_diag(v)
        h = 1e-5
        for k in range(prog.objective.n):
            e = np.zeros_like(v)
            e[k] = h
            fd = (
                prog.objective.grad(v + e)[k] - prog.objective.grad(v - e)[k]
            ) / (2 * h)
            assert hd[k] == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_entropic_zero_gradient_at_reference(self):
        """The regularizer's gradient vanishes at the anchor point."""
        n = 4
        ref = np.array([0.5, 1.0, 0.0, 2.0])
        term = EntropicTerm(np.arange(n), weight=1.0, eps=0.1, ref=ref)
        obj = SeparableObjective(n, np.zeros(n), [term])
        np.testing.assert_allclose(obj.grad(ref.copy()), 0.0, atol=1e-12)

    def test_entropic_validation(self):
        with pytest.raises(ValueError, match="eps"):
            EntropicTerm(np.array([0]), 1.0, 0.0, 0.0)
        with pytest.raises(ValueError, match="weight"):
            EntropicTerm(np.array([0]), -1.0, 0.1, 0.0)
        with pytest.raises(ValueError, match="ref"):
            EntropicTerm(np.array([0]), 1.0, 0.1, -0.5)

    def test_out_of_range_indices_rejected(self):
        term = EntropicTerm(np.array([5]), 1.0, 0.1, 0.0)
        with pytest.raises(ValueError, match="out of range"):
            SeparableObjective(3, np.zeros(3), [term])

    def test_huge_weight_tiny_log_precision(self):
        """Regression: eps >> domain with w = b/eta ~ 1e11.

        The naive ln(u/r) loses the entire signal to rounding when u
        and r are ~eps apart by ~1e-6 relative; log1p keeps it.  The
        gradient must match the analytically exact value to high
        relative accuracy (this stalled barrier line searches before).
        """
        eps = 1000.0
        w = 8e11
        ref = np.array([5e-4])
        term = EntropicTerm(np.array([0]), w, eps, ref)
        obj = SeparableObjective(1, np.zeros(1), [term])
        v = np.array([1e-3])
        import math

        exact = w * (math.log1p((v[0] - ref[0]) / (ref[0] + eps)))
        got = obj.grad(v)[0]
        assert got == pytest.approx(exact, rel=1e-12)
        # The value difference across the tiny domain is resolvable.
        f0 = obj.value(np.array([0.0]))
        f1 = obj.value(v)
        # Analytic second-order estimate: w * (v-ref)^2-ish / (2 eps).
        assert abs((f1 - f0)) < 10.0  # not garbage at O(w * u * eps_mach)
        assert f1 != f0


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("tight", [False, True])
    def test_barrier_matches_trust_constr(self, seed, tight):
        prog = entropic_program(seed=seed, tight=tight)
        vb = prog.solve(options=SolverOptions(backend="barrier", fallback=False))
        vt = prog.solve(options=SolverOptions(backend="trust-constr"))
        fb = prog.objective.value(vb)
        ft = prog.objective.value(vt)
        # trust-constr is the looser of the two; allow its tolerance.
        assert fb == pytest.approx(ft, rel=5e-4, abs=1e-5)
        # The barrier result must never be worse than trust-constr's by
        # more than round-off (it is the production backend).
        assert fb <= ft + 1e-5 * (1.0 + abs(ft))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_barrier_solution_is_stationary(self, seed):
        prog = entropic_program(seed=seed)
        v = prog.solve(options=SolverOptions(backend="barrier", fallback=False))
        assert prog.residual(v) <= 1e-8
        assert first_order_certificate(prog, v, active_tol=1e-4) >= -1e-4

    def test_warm_start_accepted(self):
        prog = entropic_program(seed=5)
        v1 = prog.solve()
        # Re-solve warm-started from a perturbed interior point.
        v0 = np.clip(v1 * 0.9 + 0.05, 0.01, 1.9)
        v2 = prog.solve(v0=v0)
        assert prog.objective.value(v2) == pytest.approx(
            prog.objective.value(v1), rel=1e-5
        )


class TestProgramValidation:
    def test_shape_mismatch(self):
        obj = SeparableObjective(3, np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            SmoothConvexProgram(obj, np.ones((2, 4)), np.ones(2), np.zeros(3), np.ones(3))

    def test_lb_above_ub(self):
        obj = SeparableObjective(2, np.zeros(2))
        with pytest.raises(ValueError, match="lb > ub"):
            SmoothConvexProgram(obj, None, None, np.ones(2), np.zeros(2))

    def test_unknown_backend(self):
        prog = entropic_program()
        with pytest.raises(ConvexSolverError, match="unknown backend"):
            prog.solve(options=SolverOptions(backend="nope", fallback=False))

    def test_residual_reports_violation(self):
        prog = entropic_program()
        v = np.full(prog.objective.n, 5.0)  # above ub = 2
        assert prog.residual(v) == pytest.approx(3.0)


class TestPhaseOne:
    def test_interior_start_strictly_feasible(self):
        prog = entropic_program(seed=7)
        v = prog._interior_start()
        assert prog.residual(v) < 0

    def test_infeasible_program_detected(self):
        n = 2
        obj = SeparableObjective(n, np.ones(n))
        # sum v >= 10 but ub = 1 each: infeasible.
        A = -sp.csr_matrix(np.ones((1, n)))
        prog = SmoothConvexProgram(obj, A, np.array([-10.0]), np.zeros(n), np.ones(n))
        with pytest.raises(ConvexSolverError):
            prog.solve()
