"""End-to-end tests of the persistent solver cache (repro.cache).

The acceptance bar from the issue: with ``--cache DIR``, a repeated
run replays **byte-identical** decisions (hot, cold, or disabled), the
warm run's hit rate is ~100 % with zero Newton iterations, and a
corrupted cache can only cost time, never correctness.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cache import runtime as cache_runtime
from repro.core import RegularizedOnline, SubproblemConfig
from repro.engine import SolveSession
from repro.obs import metrics as obs_metrics

from conftest import make_instance, make_network

EPS = SubproblemConfig(epsilon=1e-2)
HORIZON = 8


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    cache_runtime.deactivate()
    yield
    cache_runtime.deactivate()


def run_once(instance, config=EPS):
    network = instance.network
    return SolveSession(RegularizedOnline(config), network).run(instance)


def assert_trajectories_equal(a, b):
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.y, b.y)
    assert np.array_equal(a.s, b.s)


class TestByteIdentity:
    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_cold_and_warm_match_uncached(self, tmp_path, backend):
        config = SubproblemConfig(epsilon=1e-2, backend=backend)
        instance = make_instance(make_network(), horizon=HORIZON, seed=2)
        reference = run_once(instance, config)  # no cache active
        with cache_runtime.use(tmp_path) as store:
            cold = run_once(instance, config)
            warm = run_once(instance, config)
        assert_trajectories_equal(cold, reference)
        assert_trajectories_equal(warm, reference)
        assert store.counters.hit >= HORIZON  # every slot replayed

    def test_warm_run_is_all_hits_zero_newton(self, tmp_path):
        instance = make_instance(make_network(), horizon=HORIZON, seed=2)
        with cache_runtime.use(tmp_path):
            run_once(instance)
            warm = run_once(instance)
        stats = warm.run_stats
        assert stats.warm_hit_rate == 1.0
        assert stats.total_newton_iters == 0
        assert stats.backends == ("cache",)

    def test_corrupted_blob_mid_cache_still_identical(self, tmp_path):
        instance = make_instance(make_network(), horizon=HORIZON, seed=2)
        reference = run_once(instance)
        with cache_runtime.use(tmp_path) as store:
            run_once(instance)
            # Damage one arbitrary solve blob in place.
            blob = sorted((tmp_path / "solve").glob("*/*.npz"))[3]
            blob.write_bytes(blob.read_bytes()[:50])
            store._memory.clear()  # model a fresh process on a dirty dir
            warm = run_once(instance)
        assert_trajectories_equal(warm, reference)
        assert store.counters.corrupt == 1
        # The damaged slot was re-solved cold and is cached again.
        assert store.counters.miss >= 1

    def test_cache_disabled_unaffected_by_dir_contents(self, tmp_path):
        instance = make_instance(make_network(), horizon=HORIZON, seed=2)
        with cache_runtime.use(tmp_path):
            run_once(instance)
        # No ambient store: identical decisions, no cache reads.
        reference = run_once(instance)
        again = run_once(instance)
        assert_trajectories_equal(again, reference)


class TestObsCounters:
    def test_cache_ops_published_and_rendered(self, tmp_path):
        instance = make_instance(make_network(), horizon=4, seed=2)
        obs_metrics.enable()
        try:
            with cache_runtime.use(tmp_path):
                run_once(instance)
                run_once(instance)
            snapshot = obs_metrics.active().snapshot()
        finally:
            obs_metrics.disable()
        ops = {
            entry["labels"]["op"]: entry["value"]
            for entry in snapshot["metrics"]
            if entry["name"] == "solver_cache_ops_total"
        }
        assert ops["miss"] == 4 and ops["store"] == 4 and ops["hit"] == 4
        from repro.evaluation.reporting import render_metrics

        text = render_metrics(snapshot)
        assert "solver cache: hit rate 50% (4/8)" in text


class TestSessionStateCache:
    def test_save_and_resume_roundtrip(self, tmp_path):
        from repro.cache import SolverStateStore, session_key
        from repro.engine import SlotData

        network = make_network()
        instance = make_instance(network, horizon=HORIZON, seed=2)
        store = SolverStateStore(tmp_path)
        key = session_key("fp", "regularized-online", tag="t3")

        session = SolveSession(RegularizedOnline(EPS), network)
        for t in range(3):
            session.step(SlotData.from_instance(instance, t))
        session.save_to_cache(store, key)

        resumed = SolveSession.resume_from_cache(
            RegularizedOnline(EPS), network, store, key
        )
        assert resumed is not None and resumed.t == 3
        for t in range(3, HORIZON):
            session.step(SlotData.from_instance(instance, t))
            resumed.step(SlotData.from_instance(instance, t))
        assert_trajectories_equal(session.trajectory(), resumed.trajectory())

    def test_miss_and_controller_mismatch_return_none(self, tmp_path):
        from repro.cache import SolverStateStore, session_key

        network = make_network()
        store = SolverStateStore(tmp_path)
        key = session_key("fp", "regularized-online")
        assert SolveSession.resume_from_cache(
            RegularizedOnline(EPS), network, store, key
        ) is None

        session = SolveSession(RegularizedOnline(EPS), network)
        session.save_to_cache(store, key)

        class Other(RegularizedOnline):
            name = "other-controller"

        assert SolveSession.resume_from_cache(
            Other(EPS), network, store, key
        ) is None


class TestServeWithCache:
    def test_repeated_serve_sessions_skip_cold_newton(self, tmp_path):
        from repro.serve import ServeConfig, ServeLoop

        instance = make_instance(make_network(), horizon=HORIZON, seed=5)
        reference = ServeLoop(RegularizedOnline(EPS), instance, ServeConfig()).run()
        with cache_runtime.use(tmp_path):
            first = ServeLoop(RegularizedOnline(EPS), instance, ServeConfig()).run()
            second = ServeLoop(RegularizedOnline(EPS), instance, ServeConfig()).run()
        assert_trajectories_equal(first.trajectory, reference.trajectory)
        assert_trajectories_equal(second.trajectory, reference.trajectory)
        assert second.trajectory.run_stats.total_newton_iters == 0
        assert second.trajectory.run_stats.backends == ("cache",)

    def test_serve_event_records_cache_dir(self, tmp_path):
        from repro.serve import EventLog, ServeConfig, ServeLoop

        instance = make_instance(make_network(), horizon=2, seed=5)
        events_path = tmp_path / "events.jsonl"
        with cache_runtime.use(tmp_path / "cache"):
            ServeLoop(
                RegularizedOnline(EPS),
                instance,
                ServeConfig(),
                event_log=EventLog(events_path),
            ).run()
        start = json.loads(events_path.read_text().splitlines()[0])
        assert start["event"] == "serve_start"
        assert start["cache"] == str(tmp_path / "cache")


# Module-level sweep worker (picklable under ProcessPoolExecutor).
def _sweep_point(epsilon):
    network = make_network()
    instance = make_instance(network, horizon=4, seed=9)
    config = SubproblemConfig(epsilon=epsilon)
    traj = SolveSession(RegularizedOnline(config), network).run(instance)
    return traj.x.tobytes()


class TestParallelSharedCache:
    GRID = [1e-2, 2e-2, 1e-2]  # repeated point: workers share blobs

    def test_parallel_equals_serial_with_shared_cache(self, tmp_path):
        from repro.evaluation.parallel import parallel_map

        serial = parallel_map(_sweep_point, self.GRID)
        with cache_runtime.use(tmp_path):
            parallel = parallel_map(_sweep_point, self.GRID, jobs=2)
        assert parallel == serial

    def test_worker_op_counts_merge_into_parent(self, tmp_path):
        from repro.evaluation.parallel import parallel_map

        with cache_runtime.use(tmp_path) as store:
            parallel_map(_sweep_point, self.GRID, jobs=2)
            first = store.counters.as_dict()
            # 2 distinct epsilons x 4 slots solved somewhere; every op
            # a worker performed is visible in the parent's counters.
            assert first["store"] >= 8
            parallel_map(_sweep_point, self.GRID, jobs=2)
            second = store.counters.as_dict()
        # The second sweep reads blobs the first one wrote.
        assert second["hit"] - first["hit"] >= 12


@pytest.fixture
def trace_csv(tmp_path):
    path = tmp_path / "trace.csv"
    rows = "\n".join(f"{h},{100 + 20 * (h % 6)}" for h in range(6))
    path.write_text("hour,requests\n" + rows + "\n")
    return path


class TestCLI:
    SMALL = ["--n-tier2", "3", "--n-tier1", "4", "--k", "2"]

    def test_serve_cache_twice_then_stats_and_clear(self, capsys, trace_csv, tmp_path):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        base = ["serve", "--trace", str(trace_csv), "--cache", str(cache_dir),
                *self.SMALL]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "miss=6" in first and "store=6" in first

        assert main(base) == 0
        second = capsys.readouterr().out
        assert "hit=6" in second and "hit rate 100%" in second

        assert main(["cache", "stats", str(cache_dir)]) == 0
        stats = capsys.readouterr().out
        assert "solve blobs: 6" in stats

        assert main(["cache", "clear", str(cache_dir)]) == 0
        assert "cleared 6 cached blobs" in capsys.readouterr().out

    def test_cache_stats_missing_dir_errors(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["cache", "stats", str(tmp_path / "nope")]) == 1
        assert "no cache directory" in capsys.readouterr().err

    def test_cache_flag_with_metrics_exports_ops(self, capsys, trace_csv, tmp_path):
        from repro.cli import main
        from repro.obs.export import parse_prometheus

        cache_dir = tmp_path / "cache"
        prom = tmp_path / "serve.prom"
        args = ["serve", "--trace", str(trace_csv), "--cache", str(cache_dir),
                "--metrics", str(prom), *self.SMALL]
        assert main(args) == 0
        capsys.readouterr()
        samples = parse_prometheus(prom.read_text())
        ops = {
            labels: value
            for (name, labels), value in samples.items()
            if name == "solver_cache_ops_total"
        }
        assert ops  # cache ops were exported to Prometheus
        assert ops[(("op", "miss"),)] == 6.0
