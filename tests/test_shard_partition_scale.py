"""Shard partitioning at scale: hundreds of SLA components.

The seed suite exercises the partitioner on hand-built networks with a
handful of components; the generated geo topologies push it to the
fleet shapes the ROADMAP targets — here 256 single-region components —
and check every policy still produces total, disjoint,
component-closed covers, plus that ``shard status`` renders the fleet
of a scenario-driven sharded run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.partition import (
    PARTITION_POLICIES,
    plan_partition,
    sla_components,
)
from repro.topology.generate import GeoTopologyConfig, generate_topology

N_REGIONS = 256


@pytest.fixture(scope="module")
def big_network():
    topo = generate_topology(
        GeoTopologyConfig(
            n_regions=N_REGIONS, pops_per_region=1, tier1_per_region=1,
            k=1, seed=3,
        )
    )
    rng = np.random.default_rng(4)
    workload = 1.0 + rng.random((3, topo.n_tier1))
    return topo.build_instance(workload).network


def test_generated_fleet_has_hundreds_of_components(big_network):
    components = [c for c in sla_components(big_network) if c.tier1]
    assert len(components) == N_REGIONS
    assert all(len(c.tier1) == 1 and len(c.tier2) == 1 for c in components)


@pytest.mark.parametrize("policy", PARTITION_POLICIES)
@pytest.mark.parametrize("n_shards", [2, 16, 100, N_REGIONS])
def test_every_policy_covers_the_fleet(big_network, policy, n_shards):
    """Total / disjoint / component-closed, validated by ShardPlan."""
    plan = plan_partition(big_network, n_shards, policy=policy)
    plan.validate(big_network)  # raises on any cover violation
    assigned = sorted(j for shard in plan.assignments for j in shard)
    assert assigned == list(range(big_network.n_tier1))
    assert len(plan.assignments) == n_shards
    assert all(len(shard) > 0 for shard in plan.assignments)


@pytest.mark.parametrize("policy", PARTITION_POLICIES)
def test_policies_are_deterministic(big_network, policy):
    a = plan_partition(big_network, 16, policy=policy)
    b = plan_partition(big_network, 16, policy=policy)
    assert a.assignments == b.assignments


def test_load_balanced_evens_out_demand(big_network):
    rng = np.random.default_rng(9)
    demand = rng.random(big_network.n_tier1) * 100.0
    plan = plan_partition(
        big_network, 8, policy="load-balanced", demand=demand
    )
    plan.validate(big_network)
    loads = [sum(demand[j] for j in shard) for shard in plan.assignments]
    # LPT on 256 ~uniform items over 8 bins lands well within 2x.
    assert max(loads) <= 2.0 * min(loads)


def test_shard_status_renders_scenario_fleet(tmp_path):
    """A sharded serve over a generated-topology scenario streams
    telemetry that ``shard status`` renders as a fleet table."""
    from repro.core import RegularizedOnline, SubproblemConfig
    from repro.obs import metrics as obs_metrics
    from repro.obs import telemetry as obs_telemetry
    from repro.scenarios import get_scenario
    from repro.serve import InstanceSource
    from repro.shard import ShardedServeConfig, ShardedServeLoop, render_shard_status

    built = get_scenario("geo-diurnal").build("smoke")
    instance = built.instance.slice(0, 3)
    tele = tmp_path / "tele"
    registry = obs_metrics.enable()
    obs_telemetry.attach(tele, registry=registry, min_interval_s=0.0)
    try:
        report = ShardedServeLoop(
            RegularizedOnline(SubproblemConfig(epsilon=1e-2, backend="batched")),
            InstanceSource(instance),
            ShardedServeConfig(n_shards=4, telemetry_dir=tele),
        ).run()
    finally:
        obs_telemetry.detach()
        obs_metrics.disable()
    assert report.error is None and report.summary["unserved"] == 0
    text = render_shard_status(tele)
    assert "shard status" in text
    for shard in range(4):
        assert f"shard-{shard}" in text
