"""Tests for the LCP-M baseline."""

import numpy as np
import pytest

from repro.baselines import LCPM
from repro.baselines.lcp import _lazy
from repro.model import Instance, check_trajectory, evaluate_cost
from repro.offline import solve_offline

from conftest import make_instance, make_network


class TestLazyClamp:
    def test_inside_band_keeps_previous(self):
        prev = np.array([2.0])
        assert _lazy(prev, np.array([1.0]), np.array([3.0]))[0] == 2.0

    def test_below_band_raises_to_lower(self):
        assert _lazy(np.array([0.5]), np.array([1.0]), np.array([3.0]))[0] == 1.0

    def test_above_band_drops_to_upper(self):
        assert _lazy(np.array([5.0]), np.array([1.0]), np.array([3.0]))[0] == 3.0

    def test_degenerate_band_resolves_to_lower(self):
        assert _lazy(np.array([5.0]), np.array([2.0]), np.array([1.0]))[0] == 2.0


class TestLCPM:
    def test_feasible(self, small_instance):
        traj = LCPM().run(small_instance)
        assert check_trajectory(small_instance, traj).ok

    def test_at_least_offline(self, small_instance):
        traj = LCPM().run(small_instance)
        off = solve_offline(small_instance)
        assert evaluate_cost(small_instance, traj).total >= off.objective - 1e-6

    def test_lookback_window_feasible(self, small_instance):
        traj = LCPM(lookback=4).run(small_instance)
        assert check_trajectory(small_instance, traj).ok

    def test_lookback_validation(self):
        with pytest.raises(ValueError):
            LCPM(lookback=0)

    def test_online_beats_lcpm_on_vee(self, small_network):
        """Fig 7's shape: the regularized online algorithm outperforms
        LCP-M in the multi-cloud setting (per-variable lazy clamping
        composes badly with shifting LP routings — the very reason the
        paper notes LCP does not generalize to multiple clouds)."""
        from repro.core import SubproblemConfig, RegularizedOnline

        T = 10
        vee = np.concatenate([np.linspace(4.0, 0.5, 5), np.linspace(0.5, 4.0, 5)])
        lam = vee[:, None] * np.ones((1, small_network.n_tier1))
        inst = Instance(
            small_network,
            lam,
            0.01 * np.ones((T, small_network.n_tier2)),
            0.01 * np.ones((T, small_network.n_edges)),
        )
        lcp_cost = evaluate_cost(inst, LCPM().run(inst)).total
        online_cost = evaluate_cost(
            inst, RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(inst)
        ).total
        assert online_cost <= lcp_cost + 1e-6

    def test_single_cloud_lcp_matches_lazy_optimum_shape(self):
        """On a single cloud (the setting LCP was designed for) the lazy
        clamp holds allocation through a valley instead of re-buying."""
        from repro.model import Cloud, CloudNetwork, SLAEdge

        net = CloudNetwork(
            [Cloud("i", 10.0, recon_price=50.0)],
            [Cloud("j", np.inf)],
            [SLAEdge(0, 0, 10.0, recon_price=0.0)],
        )
        vee = np.concatenate([np.linspace(4.0, 0.5, 5), np.linspace(0.5, 4.0, 5)])
        T = len(vee)
        inst = Instance(
            net, vee[:, None], 0.01 * np.ones((T, 1)), np.zeros((T, 1))
        )
        traj = LCPM().run(inst)
        X = traj.tier2_totals(net)[:, 0]
        # Never re-buys: allocation stays at the peak through the valley.
        assert X.min() >= vee[0] - 1e-6
