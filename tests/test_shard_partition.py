"""Tests for deterministic shard partitioning (repro.shard.partition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import Cloud, CloudNetwork, SLAEdge
from repro.shard import (
    PARTITION_POLICIES,
    ShardPlan,
    component_weights,
    plan_partition,
    sla_components,
)

from conftest import make_network


def star_forest(n_components: int = 4, fanout: int = 2) -> CloudNetwork:
    """``n_components`` independent stars of ``fanout`` tier-1 clouds."""
    tier2 = [Cloud(f"i{i}", 10.0, 20.0) for i in range(n_components)]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(n_components * fanout)]
    edges = [SLAEdge(j // fanout, j, 7.0, 12.0) for j in range(n_components * fanout)]
    return CloudNetwork(tier2, tier1, edges)


class TestSLAComponents:
    def test_star_forest_splits_per_tier2(self):
        net = star_forest(n_components=3, fanout=2)
        comps = sla_components(net)
        assert [c.tier2 for c in comps] == [(0,), (1,), (2,)]
        assert [c.tier1 for c in comps] == [(0, 1), (2, 3), (4, 5)]
        assert [c.edges for c in comps] == [(0, 1), (2, 3), (4, 5)]

    def test_canonical_order_is_smallest_tier2_index(self):
        comps = sla_components(star_forest(5, 1))
        assert [c.key for c in comps] == sorted(c.key for c in comps)

    def test_k2_ring_is_one_component(self):
        net = make_network(n_tier2=4, n_tier1=6, k=2)
        comps = sla_components(net)
        assert len(comps) == 1
        assert comps[0].tier1 == tuple(range(6))
        assert comps[0].tier2 == tuple(range(4))

    def test_isolated_tier2_cloud_forms_own_component(self):
        tier2 = [Cloud("i0", 10.0, 20.0), Cloud("lonely", 10.0, 20.0)]
        tier1 = [Cloud("j0", np.inf)]
        net = CloudNetwork(tier2, tier1, [SLAEdge(0, 0, 7.0, 12.0)])
        comps = sla_components(net)
        assert len(comps) == 2
        assert comps[1].tier2 == (1,) and comps[1].tier1 == ()


class TestPlanPartition:
    @pytest.mark.parametrize("policy", PARTITION_POLICIES)
    def test_total_disjoint_cover_per_policy(self, policy):
        net = star_forest(n_components=5, fanout=3)
        for n_shards in (1, 2, 3, 5):
            plan = plan_partition(net, n_shards, policy)
            seen = [j for a in plan.assignments for j in a]
            assert sorted(seen) == list(range(net.n_tier1))
            assert len(seen) == len(set(seen))
            plan.validate(net)  # component closure holds too

    @pytest.mark.parametrize("policy", PARTITION_POLICIES)
    def test_every_shard_gets_work(self, policy):
        plan = plan_partition(star_forest(6, 2), 3, policy)
        assert all(plan.assignments)

    def test_round_robin_deals_components_cyclically(self):
        plan = plan_partition(star_forest(4, 2), 2, "round-robin")
        assert plan.assignments == ((0, 1, 4, 5), (2, 3, 6, 7))

    def test_affinity_keeps_contiguous_regions(self):
        plan = plan_partition(star_forest(4, 2), 2, "affinity")
        assert plan.assignments == ((0, 1, 2, 3), (4, 5, 6, 7))

    def test_load_balanced_balances_demand(self):
        net = star_forest(3, 1)
        # One hot cloud: LPT must isolate it on its own shard.
        demand = np.array([10.0, 1.0, 1.0])
        plan = plan_partition(net, 2, "load-balanced", demand=demand)
        assert (0,) in plan.assignments
        assert (1, 2) in plan.assignments

    def test_more_shards_than_components_is_an_error(self):
        with pytest.raises(ValueError, match="only 2 SLA component"):
            plan_partition(star_forest(2, 2), 3)

    def test_k2_coupled_network_cannot_shard(self):
        net = make_network(n_tier2=4, n_tier1=6, k=2)
        with pytest.raises(ValueError, match="SLA component"):
            plan_partition(net, 2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown partition policy"):
            plan_partition(star_forest(), 2, "zigzag")

    def test_nonpositive_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_partition(star_forest(), 0)

    def test_isolated_tier2_clouds_are_not_partitioned(self):
        tier2 = [Cloud(f"i{i}", 10.0, 20.0) for i in range(3)]
        tier1 = [Cloud("j0", np.inf), Cloud("j1", np.inf)]
        # Tier-2 cloud 2 has no SLA edge: no work, belongs to no shard.
        edges = [SLAEdge(0, 0, 7.0, 12.0), SLAEdge(1, 1, 7.0, 12.0)]
        net = CloudNetwork(tier2, tier1, edges)
        plan = plan_partition(net, 2)
        assert plan.assignments == ((0,), (1,))


class TestShardPlanValidate:
    def test_overlapping_assignment_rejected(self):
        net = star_forest(2, 1)
        plan = ShardPlan(2, "round-robin", ((0,), (0, 1)))
        with pytest.raises(ValueError, match="more than one shard"):
            plan.validate(net)

    def test_missing_cloud_rejected(self):
        net = star_forest(3, 1)
        plan = ShardPlan(2, "round-robin", ((0,), (1,)))
        with pytest.raises(ValueError, match="not assigned"):
            plan.validate(net)

    def test_split_component_rejected(self):
        net = star_forest(1, 2)  # one component with tier-1 clouds {0, 1}
        plan = ShardPlan(2, "round-robin", ((0,), (1,)))
        with pytest.raises(ValueError, match="split across shards"):
            plan.validate(net)

    def test_empty_shard_rejected(self):
        net = star_forest(2, 1)
        plan = ShardPlan(2, "round-robin", ((0, 1), ()))
        with pytest.raises(ValueError, match="no tier-1 clouds"):
            plan.validate(net)

    def test_json_roundtrip(self):
        plan = plan_partition(star_forest(4, 2), 2, "load-balanced")
        assert ShardPlan.from_json(plan.to_json()) == plan

    def test_shard_of(self):
        plan = plan_partition(star_forest(4, 2), 2)
        for k, assignment in enumerate(plan.assignments):
            for j in assignment:
                assert plan.shard_of(j) == k
        with pytest.raises(KeyError):
            plan.shard_of(99)


class TestComponentWeights:
    def test_defaults_to_tier1_counts(self):
        comps = sla_components(star_forest(3, 2))
        assert component_weights(comps) == [2.0, 2.0, 2.0]

    def test_demand_weighted(self):
        comps = sla_components(star_forest(2, 2))
        weights = component_weights(comps, demand=np.array([1.0, 2.0, 3.0, 4.0]))
        assert weights == [3.0, 7.0]
