"""Tests for the competitive-ratio formulas (Theorem 1 / N-tier)."""

import numpy as np
import pytest

from repro.core import empirical_ratio, theorem1_ratio
from repro.core.competitive import (
    capacity_term,
    ntier_ratio,
    theorem1_ratio_normalized,
)

from conftest import make_network


class TestCapacityTerm:
    def test_formula(self):
        caps = np.array([2.0, 5.0])
        eps = 0.5
        expected = max((c + eps) * np.log1p(c / eps) for c in caps)
        assert capacity_term(caps, eps) == pytest.approx(expected)

    def test_decreasing_in_epsilon(self):
        caps = np.array([3.0])
        values = [capacity_term(caps, e) for e in (1e-3, 1e-2, 1e-1, 1.0, 10.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            capacity_term(np.array([1.0]), 0.0)

    def test_empty_is_zero(self):
        assert capacity_term(np.array([]), 1.0) == 0.0


class TestTheorem1:
    def test_value_matches_formula(self):
        net = make_network()
        eps = 0.1
        expected = 1.0 + net.n_tier2 * (
            capacity_term(net.tier2_capacity, eps)
            + capacity_term(net.edge_capacity, eps)
        )
        assert theorem1_ratio(net, eps) == pytest.approx(expected)

    def test_always_above_one(self):
        net = make_network()
        for eps in (1e-3, 1.0, 1e3):
            assert theorem1_ratio(net, eps) > 1.0

    def test_decreasing_in_epsilon(self):
        net = make_network()
        vals = [theorem1_ratio(net, e) for e in (1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_separate_epsilon_prime(self):
        net = make_network()
        assert theorem1_ratio(net, 0.1, epsilon_prime=10.0) < theorem1_ratio(net, 0.1)

    def test_normalized_smaller_than_raw_for_large_caps(self):
        net = make_network(tier2_capacity=500.0, edge_capacity=300.0)
        assert theorem1_ratio_normalized(net, 0.1) < theorem1_ratio(net, 0.1)


class TestNTierRatio:
    def test_reduces_to_theorem1_at_two_tiers(self):
        net = make_network()
        eps = 0.2
        r2 = theorem1_ratio(net, eps)
        rn = ntier_ratio(
            [net.tier2_capacity], [net.edge_capacity], eps
        )
        assert rn == pytest.approx(r2)

    def test_more_tiers_larger_ratio(self):
        caps = np.array([5.0, 5.0])
        links = np.array([3.0, 3.0])
        r2 = ntier_ratio([caps], [links], 0.1)
        r3 = ntier_ratio([caps, caps], [links, links], 0.1)
        assert r3 > r2

    def test_empty_is_one(self):
        assert ntier_ratio([], [], 0.1) == 1.0


class TestEmpiricalRatio:
    def test_basic(self):
        assert empirical_ratio(3.0, 2.0) == pytest.approx(1.5)

    def test_zero_offline_zero_online(self):
        assert empirical_ratio(0.0, 0.0) == 1.0

    def test_zero_offline_positive_online(self):
        assert empirical_ratio(1.0, 0.0) == np.inf


class TestBoundHolds:
    def test_online_cost_within_theorem1_bound(self, small_instance):
        """The realized ratio must respect the worst-case guarantee."""
        from repro.core import SubproblemConfig, RegularizedOnline
        from repro.model import evaluate_cost
        from repro.offline import solve_offline

        eps = 1e-2
        on = RegularizedOnline(SubproblemConfig(epsilon=eps)).run(small_instance)
        off = solve_offline(small_instance)
        actual = evaluate_cost(small_instance, on).total / off.objective
        assert actual <= theorem1_ratio(small_instance.network, eps)
