"""Golden-value equivalence: engine-driven controllers vs. seed outputs.

The values below were captured by running the pre-refactor (bespoke
per-algorithm loop) code on a fixed-seed instance; every controller
now runs through :class:`repro.engine.session.SolveSession` and must
reproduce them.  Each tuple is
``(total cost, x.sum(), y.sum(), s.sum())``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LCPM
from repro.core import RegularizedOnline, SubproblemConfig
from repro.model import evaluate_cost
from repro.prediction import (
    AveragingFixedHorizonControl,
    FixedHorizonControl,
    GaussianNoisePredictor,
    RecedingHorizonControl,
    RegularizedFixedHorizonControl,
    RegularizedRecedingHorizonControl,
)

from conftest import make_instance, make_network
from test_ntier import three_tier

GOLDEN = {
    "online": (499.46554274193863, 72.99514928934951, 78.01743114463983, 72.30054105133289),
    "fhc3": (491.6872702502307, 71.35966071283181, 71.37116301379841, 71.35966071283181),
    "rhc3": (491.2673400768774, 71.35966071283181, 71.37116301379841, 71.35966071283181),
    "afhc3": (491.54919056366373, 71.35966071283181, 71.36732891347621, 71.35966071283181),
    "rfhc3": (495.93224748094957, 72.67809587372543, 76.20223468775814, 72.12523820591707),
    "rrhc3": (493.93238255141137, 71.92857601508686, 74.72499923656284, 71.6996590989462),
    "rrhc3-noisy": (520.2124323619457, 76.13090459620292, 78.68621588090123, 75.86890063981079),
    "lcp": (653.5168057588852, 78.0979375765983, 102.70158948004031, 72.54559327176155),
}

ALGOS = {
    "online": lambda: RegularizedOnline(SubproblemConfig(epsilon=1e-2)),
    "fhc3": lambda: FixedHorizonControl(3),
    "rhc3": lambda: RecedingHorizonControl(3),
    "afhc3": lambda: AveragingFixedHorizonControl(3),
    "rfhc3": lambda: RegularizedFixedHorizonControl(3),
    "rrhc3": lambda: RegularizedRecedingHorizonControl(3),
    "rrhc3-noisy": lambda: RegularizedRecedingHorizonControl(
        3, predictor=GaussianNoisePredictor(0.2, seed=3)
    ),
    "lcp": lambda: LCPM(),
}


@pytest.fixture(scope="module")
def golden_instance():
    net = make_network()
    return make_instance(net, horizon=10, seed=7)


@pytest.mark.parametrize("name", sorted(ALGOS))
def test_two_tier_matches_seed_outputs(name, golden_instance):
    traj = ALGOS[name]().run(golden_instance)
    cost = evaluate_cost(golden_instance, traj).total
    got = (cost, float(traj.x.sum()), float(traj.y.sum()), float(traj.s.sum()))
    assert got == pytest.approx(GOLDEN[name], rel=1e-6)
    # The engine attached per-step statistics along the way.
    stats = traj.run_stats
    assert stats.n_steps == golden_instance.horizon
    assert stats.total_solves > 0


def test_ntier_matches_seed_outputs():
    from repro.ntier import NTierConfig, NTierRegularizedOnline

    inst = three_tier(seed=2, T=8)
    traj = NTierRegularizedOnline(NTierConfig(epsilon=1e-2)).run(inst)
    got = (
        inst.cost(traj),
        float(traj.X.sum()),
        float(traj.Y.sum()),
        float(traj.s.sum()),
    )
    golden = (1259.676858088089, 85.02361454901916, 91.55459670797568, 37.17397679912838)
    assert got == pytest.approx(golden, rel=1e-6)
    assert traj.run_stats.n_steps == inst.horizon
