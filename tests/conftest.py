"""Shared fixtures: small deterministic networks and instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import Cloud, CloudNetwork, Instance, SLAEdge


def make_network(
    n_tier2: int = 4,
    n_tier1: int = 6,
    k: int = 2,
    tier2_capacity: float = 10.0,
    edge_capacity: float = 7.0,
    tier2_recon: float = 20.0,
    edge_recon: float = 12.0,
) -> CloudNetwork:
    """A deterministic ring-ish SLA topology used across the suite."""
    tier2 = [Cloud(f"i{i}", tier2_capacity, tier2_recon) for i in range(n_tier2)]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(n_tier1)]
    edges = [
        SLAEdge((j + m) % n_tier2, j, edge_capacity, edge_recon)
        for j in range(n_tier1)
        for m in range(k)
    ]
    return CloudNetwork(tier2, tier1, edges)


def make_instance(
    network: CloudNetwork,
    horizon: int = 16,
    seed: int = 0,
    peak: float = 2.0,
) -> Instance:
    """Feasible diurnal-ish instance on the given network."""
    rng = np.random.default_rng(seed)
    T, J = horizon, network.n_tier1
    base = 0.5 * peak * (1.0 + 0.8 * np.sin(np.arange(T) * 2 * np.pi / 12.0))
    lam = np.clip(base[:, None] * (1.0 + 0.15 * rng.random((T, J))), 0.01, None)
    a = 1.0 + 0.5 * rng.random((T, network.n_tier2))
    c = 0.4 + 0.1 * rng.random((T, network.n_edges))
    return Instance(network, lam, a, c)


@pytest.fixture
def small_network() -> CloudNetwork:
    return make_network()


@pytest.fixture
def small_instance(small_network) -> Instance:
    return make_instance(small_network)


@pytest.fixture
def single_edge_instance() -> Instance:
    """One tier-2 cloud, one tier-1 cloud, one SLA edge.

    With zero link costs this collapses to the scalar problem (4),
    enabling exact comparison against the closed-form recursion.
    """
    tier2 = [Cloud("i0", capacity=5.0, recon_price=8.0)]
    tier1 = [Cloud("j0", capacity=np.inf)]
    edges = [SLAEdge(0, 0, capacity=5.0, recon_price=0.0)]
    net = CloudNetwork(tier2, tier1, edges)
    rng = np.random.default_rng(3)
    T = 24
    lam = np.clip(
        2.5 + 2.0 * np.sin(np.arange(T) / 2.5) + 0.2 * rng.random(T), 0.05, 5.0
    )[:, None]
    a = (1.0 + 0.5 * rng.random(T))[:, None]
    c = np.zeros((T, 1))
    return Instance(net, lam, a, c)
