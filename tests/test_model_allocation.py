"""Tests for Allocation and Trajectory containers."""

import numpy as np
import pytest

from repro.model import Allocation, Trajectory

from conftest import make_network


class TestAllocation:
    def test_zeros(self):
        a = Allocation.zeros(5)
        assert a.x.shape == (5,)
        assert np.all(a.x == 0) and np.all(a.y == 0) and np.all(a.s == 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            Allocation(np.zeros(3), np.zeros(4), np.zeros(3))

    def test_tier2_totals(self):
        net = make_network(n_tier2=2, n_tier1=2, k=2)  # 4 edges
        a = Allocation(
            np.array([1.0, 2.0, 3.0, 4.0]), np.zeros(4), np.zeros(4)
        )
        totals = a.tier2_totals(net)
        expected = np.zeros(2)
        np.add.at(expected, net.edge_i, a.x)
        np.testing.assert_allclose(totals, expected)

    def test_copy_is_deep(self):
        a = Allocation.zeros(3)
        b = a.copy()
        b.x[0] = 1.0
        assert a.x[0] == 0.0


class TestTrajectory:
    def test_from_steps_roundtrip(self):
        steps = [
            Allocation(np.full(3, t), np.full(3, t + 0.5), np.full(3, t * 0.5))
            for t in range(4)
        ]
        traj = Trajectory.from_steps(steps)
        assert traj.horizon == 4
        got = traj.step(2)
        np.testing.assert_allclose(got.x, steps[2].x)
        np.testing.assert_allclose(got.y, steps[2].y)

    def test_from_steps_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory.from_steps([])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trajectory(-np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 3)))

    def test_concat(self):
        a = Trajectory.zeros(2, 3)
        b = Trajectory.zeros(5, 3)
        assert a.concat(b).horizon == 7

    def test_concat_edge_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory.zeros(2, 3).concat(Trajectory.zeros(2, 4))

    def test_step_returns_copies(self):
        traj = Trajectory.zeros(2, 3)
        step = traj.step(0)
        step.x[0] = 9.0
        assert traj.x[0, 0] == 0.0

    def test_tier2_totals_shape(self):
        net = make_network()
        traj = Trajectory.zeros(6, net.n_edges)
        assert traj.tier2_totals(net).shape == (6, net.n_tier2)
