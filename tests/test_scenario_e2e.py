"""End-to-end: a named scenario through ``serve --shards 2``.

The acceptance path for the scenario corpus: ``flash-crowd`` streamed
through the sharded serve runtime must produce decisions byte-identical
to the single-process run — at the API level (reusing the parity
helpers from ``test_shard_runtime``) and through the CLI's
``scenario run --mode serve --decisions`` file output (the same check
CI's scenario-smoke job performs with ``cmp``).
"""

from __future__ import annotations

import filecmp

import pytest

from repro.scenarios import get_scenario
from repro.serve import InstanceSource, ServeConfig, ServeLoop
from repro.shard import ShardedServeConfig, ShardedServeLoop

# Parity helpers from the sharded-runtime suite (tests/ is on sys.path).
from test_shard_runtime import assert_reports_bitwise_equal, controller


@pytest.fixture(scope="module")
def scenario_instance():
    built = get_scenario("flash-crowd").build("smoke")
    # Keep the e2e run quick: the cascade is fully underway by hour 12.
    return built.instance.slice(0, 12)


def test_scenario_through_two_shards_is_bitwise_identical(scenario_instance):
    single = ServeLoop(
        controller(), InstanceSource(scenario_instance), ServeConfig()
    ).run()
    sharded = ShardedServeLoop(
        controller(),
        InstanceSource(scenario_instance),
        ShardedServeConfig(n_shards=2),
    ).run()
    assert_reports_bitwise_equal(sharded, single)
    assert sharded.summary["slots"] == scenario_instance.horizon
    assert sharded.summary["unserved"] == 0


def test_scenario_parity_survives_a_shard_kill(scenario_instance):
    single = ServeLoop(
        controller(), InstanceSource(scenario_instance), ServeConfig()
    ).run()
    sharded = ShardedServeLoop(
        controller(),
        InstanceSource(scenario_instance),
        ShardedServeConfig(
            n_shards=2, kill_shard={1: 3}, heartbeat_timeout_s=30.0
        ),
    ).run()
    assert_reports_bitwise_equal(sharded, single)


def test_cli_decisions_files_byte_identical_across_shards(tmp_path, capsys):
    from repro.cli import main

    d1, d2 = tmp_path / "d1.npy", tmp_path / "d2.npy"
    base = [
        "scenario", "run", "flash-crowd", "--mode", "serve",
        "--horizon", "6", "--backend", "batched",
    ]
    assert main([*base, "--decisions", str(d1)]) == 0
    assert main([*base, "--shards", "2", "--decisions", str(d2)]) == 0
    out = capsys.readouterr().out
    assert out.count("6 slots (6 served, 0 unserved)") == 2
    assert filecmp.cmp(d1, d2, shallow=False)
