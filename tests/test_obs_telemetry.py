"""Unit tests for the streaming telemetry pipeline (repro.obs.telemetry)."""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as tel
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("ops_total", help="ops", op="solve").inc(3)
    reg.gauge("depth", help="queue depth").set(2.0)
    hist = reg.histogram("lat_seconds", help="latency")
    for v in (0.001, 0.02, 1.5):
        hist.observe(v)
    return reg


class TestTelemetrySink:
    def test_flush_writes_schema_tagged_records(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a")
        assert sink.flush()
        records = tel.read_sink(sink.path)
        assert len(records) == 1
        assert records[0]["schema"] == tel.TELEMETRY_SCHEMA
        assert records[0]["kind"] == "full"
        assert records[0]["sink"] == "a"
        sink.close()

    def test_delta_records_carry_only_changes(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a", full_every=100)
        sink.flush()
        reg.counter("ops_total", op="solve").inc()
        sink.flush()
        records = tel.read_sink(sink.path)
        assert records[1]["kind"] == "delta"
        assert [e["name"] for e in records[1]["metrics"]] == ["ops_total"]
        assert records[1]["metrics"][0]["value"] == 4  # absolute, not +1
        sink.close()

    def test_no_change_no_record(self, tmp_path):
        sink = tel.TelemetrySink(tmp_path, registry=make_registry(), label="a")
        assert sink.flush()
        assert not sink.flush()  # nothing changed
        assert len(tel.read_sink(sink.path)) == 1
        sink.close()

    def test_periodic_full_records(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a", full_every=2)
        for i in range(4):
            reg.counter("ops_total", op="solve").inc()
            sink.flush()
        kinds = [r["kind"] for r in tel.read_sink(sink.path)]
        assert kinds == ["full", "delta", "full", "delta"]
        sink.close()

    def test_min_interval_throttles_unforced_flushes(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(
            tmp_path, registry=reg, label="a", min_interval_s=3600.0
        )
        assert sink.flush(force=False)
        reg.counter("ops_total", op="solve").inc()
        assert not sink.flush(force=False)  # inside the interval
        assert sink.flush(force=True)
        sink.close()

    def test_sink_id_collision_gets_suffixed(self, tmp_path):
        a = tel.TelemetrySink(tmp_path, registry=make_registry(), label="x")
        b = tel.TelemetrySink(tmp_path, registry=make_registry(), label="x")
        assert a.sink_id == "x" and b.sink_id == "x-1"
        assert a.path != b.path
        a.close(), b.close()

    def test_uses_active_registry_when_none_given(self, tmp_path):
        sink = tel.TelemetrySink(tmp_path, label="a")
        assert not sink.flush()  # no registry active -> nothing to write
        with obs_metrics.use() as reg:
            reg.counter("c", help="").inc()
            assert sink.flush()
        sink.close()

    def test_close_is_final_flush(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a")
        sink.flush()
        reg.gauge("depth").set(9.0)
        sink.close()
        snap = tel.replay_sink(tel.read_sink(sink.path))
        depth = [e for e in snap["metrics"] if e["name"] == "depth"][0]
        assert depth["value"] == 9.0

    def test_rejects_bad_full_every(self, tmp_path):
        with pytest.raises(ValueError, match="full_every"):
            tel.TelemetrySink(tmp_path, full_every=0)


class TestReadReplay:
    def test_torn_final_line_is_skipped(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a")
        sink.flush()
        reg.counter("ops_total", op="solve").inc()
        sink.flush()
        sink.close()
        text = sink.path.read_text()
        sink.path.write_text(text[: len(text) - 20])  # crash mid-append
        records = tel.read_sink(sink.path)
        assert len(records) == 1  # only the complete record survives

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "bad.telemetry.jsonl"
        good = json.dumps(
            {"schema": tel.TELEMETRY_SCHEMA, "sink": "a", "seq": 0,
             "kind": "full", "metrics": []}
        )
        path.write_text("not json\n" + good + "\n")
        with pytest.raises(ValueError, match="line 1"):
            tel.read_sink(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.telemetry.jsonl"
        path.write_text(json.dumps({"schema": "other/v9", "seq": 0}) + "\n\n")
        with pytest.raises(ValueError, match="schema"):
            tel.read_sink(path)

    def test_replay_reconstructs_final_snapshot(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a", full_every=2)
        for _ in range(5):
            reg.counter("ops_total", op="solve").inc()
            reg.histogram("lat_seconds").observe(0.25)
            sink.flush()
        sink.close()
        assert tel.replay_sink(tel.read_sink(sink.path)) == reg.snapshot()


class TestMerge:
    def test_counters_sum_gauges_max_histograms_combine(self):
        a, b = make_registry(), make_registry()
        b.counter("ops_total", op="solve").inc(7)
        b.gauge("depth").set(0.5)
        merged = tel.merge_snapshots([a.snapshot(), b.snapshot()])
        by_name = {e["name"]: e for e in merged["metrics"]}
        assert by_name["ops_total"]["value"] == 3 + 10
        assert by_name["depth"]["value"] == 2.0  # max, not last write
        assert by_name["lat_seconds"]["count"] == 6
        assert by_name["lat_seconds"]["sum"] == pytest.approx(2 * 1.521)
        assert by_name["lat_seconds"]["min"] == 0.001
        assert by_name["lat_seconds"]["max"] == 1.5

    def test_merged_snapshot_round_trips_through_registry(self):
        merged = tel.merge_snapshots(
            [make_registry().snapshot(), make_registry().snapshot()]
        )
        assert merged["schema"] == METRICS_SCHEMA
        from repro.obs.metrics import registry_from_snapshot

        assert registry_from_snapshot(merged).snapshot() == merged

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m", help="").inc()
        b.gauge("m", help="").set(1)
        with pytest.raises(ValueError, match="counter"):
            tel.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(ValueError, match="bucket"):
            tel.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_snapshot_into_live_registry(self):
        reg = make_registry()
        tel.merge_snapshot_into(reg, make_registry().snapshot())
        assert reg.counter("ops_total", op="solve").value == 6
        assert reg.gauge("depth").value == 2.0
        assert reg.histogram("lat_seconds").count == 6


class TestAggregator:
    def test_tails_incremental_appends(self, tmp_path):
        reg = make_registry()
        sink = tel.TelemetrySink(tmp_path, registry=reg, label="a")
        sink.flush()
        agg = tel.TelemetryAggregator(tmp_path)
        assert agg.poll() == 1
        reg.counter("ops_total", op="solve").inc(5)
        sink.flush()
        assert agg.poll() == 1  # only the new record
        merged = agg.merged_snapshot()
        ops = [e for e in merged["metrics"] if e["name"] == "ops_total"][0]
        assert ops["value"] == 8
        sink.close()

    def test_partial_trailing_line_left_for_next_poll(self, tmp_path):
        path = tmp_path / "a.telemetry.jsonl"
        full = json.dumps(
            {"schema": tel.TELEMETRY_SCHEMA, "sink": "a", "seq": 0,
             "kind": "full", "metrics": []}
        )
        path.write_text(full + "\n" + full[:10])  # torn tail in flight
        agg = tel.TelemetryAggregator(tmp_path)
        assert agg.poll() == 1
        with open(path, "a") as fh:  # writer completes the line (seq 1)
            fh.write(full[10:].replace('"seq": 0', '"seq": 1') + "\n")
        assert agg.poll() == 1

    def test_duplicate_seq_is_noop(self, tmp_path):
        record = {
            "schema": tel.TELEMETRY_SCHEMA, "sink": "a", "seq": 0,
            "kind": "full", "metrics": [],
        }
        agg = tel.TelemetryAggregator(tmp_path)
        assert agg.ingest(dict(record))
        assert not agg.ingest(dict(record))

    def test_discovers_sinks_recursively(self, tmp_path):
        sub = tmp_path / "shard-0"
        tel.TelemetrySink(sub, registry=make_registry(), label="w").close()
        agg = tel.TelemetryAggregator(tmp_path)
        assert agg.poll() > 0
        assert agg.sink_ids() == ["w"]

    def test_merged_registry_round_trip(self, tmp_path):
        tel.TelemetrySink(tmp_path, registry=make_registry(), label="a").close()
        tel.TelemetrySink(tmp_path, registry=make_registry(), label="b").close()
        agg = tel.TelemetryAggregator(tmp_path)
        agg.poll()
        assert agg.merged().snapshot() == agg.merged_snapshot()

    def test_missing_directory_is_empty(self, tmp_path):
        agg = tel.TelemetryAggregator(tmp_path / "nope")
        assert agg.poll() == 0
        assert agg.merged_snapshot()["metrics"] == []


class TestDeterministicView:
    def test_drops_timing_fields_keeps_counts(self):
        view = tel.deterministic_view(make_registry().snapshot())
        by_name = {e["name"]: e for e in view["metrics"]}
        assert "depth" not in by_name  # gauges dropped
        assert by_name["ops_total"]["value"] == 3
        assert by_name["lat_seconds"] == {
            "name": "lat_seconds",
            "type": "histogram",
            "labels": {},
            "count": 3,
        }

    def test_serial_equals_merged_parallel_shape(self):
        # Two half-runs merged == one full run, in the deterministic view.
        full = MetricsRegistry()
        full.counter("steps_total", help="").inc(10)
        h1, h2 = MetricsRegistry(), MetricsRegistry()
        h1.counter("steps_total", help="").inc(4)
        h2.counter("steps_total", help="").inc(6)
        merged = tel.merge_snapshots([h1.snapshot(), h2.snapshot()])
        assert tel.deterministic_view(merged) == tel.deterministic_view(
            full.snapshot()
        )


class TestAmbientSink:
    def test_attach_autoflush_detach(self, tmp_path):
        with obs_metrics.use() as reg:
            sink = tel.attach(tmp_path, min_interval_s=0.0)
            reg.counter("c", help="").inc()
            assert tel.autoflush()
            assert tel.active_sink() is sink
            assert tel.active_dir() == str(tmp_path)
            tel.detach()
        assert tel.active_sink() is None
        assert not tel.autoflush()
        snap = tel.replay_sink(tel.read_sink(sink.path))
        assert snap["metrics"][0]["value"] == 1

    def test_attach_replaces_previous_sink(self, tmp_path):
        first = tel.attach(tmp_path / "a")
        second = tel.attach(tmp_path / "b")
        assert first._fh is None  # closed by the second attach
        assert tel.active_sink() is second
        tel.detach()

    def test_forget_inherited_severs_without_flushing(self, tmp_path):
        with obs_metrics.use() as reg:
            reg.counter("c", help="").inc()
            sink = tel.attach(tmp_path)
            sink.flush()
            before = sink.path.read_text()
            reg.counter("c").inc()
            tel.forget_inherited()
            assert tel.active_sink() is None
            assert sink.path.read_text() == before  # nothing appended


class TestWatch:
    def test_render_watch_shows_phases_counters_gauges(self):
        reg = MetricsRegistry()
        reg.histogram(
            "serve_phase_seconds", help="", phase="solve"
        ).observe(0.01)
        reg.counter("serve_slots_total", help="", path="primary").inc(3)
        reg.gauge("health_competitive_ratio", help="").set(1.25)
        text = tel.render_watch(reg.snapshot(), title="t")
        assert "slots decided: 3" in text
        assert "serve_phase_seconds{phase=solve}" in text
        assert "health_competitive_ratio" in text and "1.25" in text

    def test_render_watch_empty(self):
        assert "(no telemetry yet)" in tel.render_watch(
            MetricsRegistry().snapshot()
        )

    def test_watch_loop_renders_frames(self, tmp_path):
        import io

        tel.TelemetrySink(tmp_path, registry=make_registry(), label="a").close()
        out = io.StringIO()
        tel.watch(tmp_path, interval_s=0.0, iterations=2, out=out, clear=False)
        assert out.getvalue().count("== telemetry") == 2
        assert "1 sinks" in out.getvalue()
