"""Unit tests for the persistent solver-state store (repro.cache).

The contract under test: a damaged or shared cache can cost a cold
solve, never a wrong result — corrupt blobs are discarded and counted,
eviction is deterministic, and worker op-counts merge exactly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import (
    CacheCounters,
    SolverStateStore,
    array_digest,
    config_fingerprint,
    network_fingerprint,
    session_key,
    solve_key,
    structure_fingerprint,
)
from repro.cache import runtime as cache_runtime
from repro.core.subproblem import SubproblemConfig
from repro.model import Allocation

from conftest import make_network


def _alloc(n_edges: int = 4, seed: int = 0) -> Allocation:
    rng = np.random.default_rng(seed)
    return Allocation(rng.random(n_edges), rng.random(n_edges), rng.random(n_edges))


def _put(store: SolverStateStore, key: str, seed: int = 0) -> "tuple[Allocation, np.ndarray]":
    alloc = _alloc(seed=seed)
    v = np.arange(6.0) + seed
    store.put_solve(key, alloc, v)
    return alloc, v


KEY = "ab" + "0" * 62  # well-formed hex key with a stable shard prefix


class TestSolveBlobs:
    def test_roundtrip(self, tmp_path):
        store = SolverStateStore(tmp_path)
        alloc, v = _put(store, KEY)
        got = store.get_solve(KEY)
        assert got is not None
        got_alloc, got_v = got
        assert np.array_equal(got_alloc.x, alloc.x)
        assert np.array_equal(got_alloc.y, alloc.y)
        assert np.array_equal(got_alloc.s, alloc.s)
        assert np.array_equal(got_v, v)
        assert store.counters.store == 1 and store.counters.hit == 1

    def test_roundtrip_via_fresh_store(self, tmp_path):
        # The point of the exercise: a *different* process (modeled by
        # a fresh store on the same directory) sees the blob.
        alloc, v = _put(SolverStateStore(tmp_path), KEY)
        got = SolverStateStore(tmp_path).get_solve(KEY)
        assert got is not None
        assert np.array_equal(got[0].x, alloc.x)
        assert np.array_equal(got[1], v)

    def test_miss_counts(self, tmp_path):
        store = SolverStateStore(tmp_path)
        assert store.get_solve(KEY) is None
        assert store.counters.miss == 1
        assert store.counters.hit == 0

    def test_returned_arrays_are_copies(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        first = store.get_solve(KEY)
        first[0].x[:] = -1.0
        first[1][:] = -1.0
        second = store.get_solve(KEY)
        assert float(second[0].x.min()) >= 0.0
        assert float(second[1].min()) >= 0.0

    def test_put_is_idempotent(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        before = os.stat(store._blob_path("solve", KEY)).st_mtime_ns
        _put(store, KEY, seed=1)  # second put of the same key: ignored
        got = store.get_solve(KEY)
        assert np.array_equal(got[0].x, _alloc(seed=0).x)
        assert os.stat(store._blob_path("solve", KEY)).st_mtime_ns == before

    def test_truncated_blob_is_corrupt_not_wrong(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        path = store._blob_path("solve", KEY)
        path.write_bytes(path.read_bytes()[:20])
        fresh = SolverStateStore(tmp_path)
        assert fresh.get_solve(KEY) is None
        assert fresh.counters.corrupt == 1
        assert not path.exists()  # discarded best-effort

    def test_foreign_npz_is_corrupt(self, tmp_path):
        store = SolverStateStore(tmp_path)
        path = store._blob_path("solve", KEY)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as fh:
            np.savez(fh, something=np.arange(3))
        assert store.get_solve(KEY) is None
        assert store.counters.corrupt == 1

    def test_key_mismatch_inside_blob_is_corrupt(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        other = "ab" + "f" * 62
        src = store._blob_path("solve", KEY)
        dst = store._blob_path("solve", other)
        dst.write_bytes(src.read_bytes())  # blob claims KEY, filed as other
        fresh = SolverStateStore(tmp_path)
        assert fresh.get_solve(other) is None
        assert fresh.counters.corrupt == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        assert list(tmp_path.rglob("*.tmp")) == []


class TestEviction:
    def test_oldest_evicted_beyond_cap(self, tmp_path):
        store = SolverStateStore(tmp_path, max_entries=2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
        for i, key in enumerate(keys):
            _put(store, key, seed=i)
            # Deterministic, strictly increasing mtimes.
            os.utime(store._blob_path("solve", key), ns=(0, (i + 1) * 10**9))
        assert store.counters.evict == 2
        fresh = SolverStateStore(tmp_path)
        assert fresh.get_solve(keys[0]) is None
        assert fresh.get_solve(keys[1]) is None
        assert fresh.get_solve(keys[2]) is not None
        assert fresh.get_solve(keys[3]) is not None

    def test_bad_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            SolverStateStore(tmp_path, max_entries=0)

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = SolverStateStore(tmp_path)
        for i in range(5):
            _put(store, f"{i:02x}" + "0" * 62, seed=i)
        assert store.counters.evict == 0


class TestStateBlobs:
    def test_state_roundtrip(self, tmp_path):
        store = SolverStateStore(tmp_path)
        prev = Allocation.zeros(3)
        snapshot = {
            "t": 2,
            "steps": [],
            "step_stats": [],
            "controller": {"prev_x": prev.x, "prev_y": prev.y,
                           "prev_s": prev.s, "warm": None},
        }
        key = session_key("fp", "regularized-online")
        store.put_state(key, snapshot, controller_name="regularized-online")
        loaded = SolverStateStore(tmp_path).get_state(key)
        assert loaded["t"] == 2
        assert loaded["controller_name"] == "regularized-online"
        assert loaded["controller"]["warm"] is None

    def test_state_miss_and_corrupt(self, tmp_path):
        store = SolverStateStore(tmp_path)
        key = session_key("fp", "x")
        assert store.get_state(key) is None
        assert store.counters.miss == 1
        path = store._blob_path("state", key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz")
        assert store.get_state(key) is None
        assert store.counters.corrupt == 1


class TestMaintenance:
    def test_stats_shape(self, tmp_path):
        store = SolverStateStore(tmp_path, max_entries=9)
        _put(store, KEY)
        stats = store.stats()
        assert stats["entries"] == {"solve": 1, "state": 0}
        assert stats["bytes"] > 0
        assert stats["max_entries"] == 9
        assert stats["counters"]["store"] == 1

    def test_clear_removes_everything(self, tmp_path):
        store = SolverStateStore(tmp_path)
        _put(store, KEY)
        store.put_state(session_key("fp", "c"), {"t": 0, "steps": [],
                                                 "step_stats": [],
                                                 "controller": {}})
        assert store.clear() == 2
        assert store.stats()["entries"] == {"solve": 0, "state": 0}
        assert SolverStateStore(tmp_path).get_solve(KEY) is None

    def test_merge_counts(self, tmp_path):
        store = SolverStateStore(tmp_path)
        store.merge_counts({"hit": 3, "miss": 1, "store": 1})
        assert store.counters.hit == 3
        assert store.counters.miss == 1
        with pytest.raises(ValueError, match="unknown cache op"):
            store.merge_counts({"frobnicate": 1})

    def test_counters_describe(self):
        counters = CacheCounters(hit=3, miss=1)
        text = counters.describe()
        assert "hit=3" in text and "hit rate 75%" in text
        assert "n/a" in CacheCounters().describe()


class TestRuntime:
    def test_activate_deactivate(self, tmp_path):
        assert cache_runtime.active() is None
        store = cache_runtime.activate(tmp_path)
        try:
            assert cache_runtime.active() is store
            assert cache_runtime.active_dir() == str(tmp_path)
        finally:
            cache_runtime.deactivate()
        assert cache_runtime.active() is None
        assert cache_runtime.active_dir() is None

    def test_use_context_manager(self, tmp_path):
        with cache_runtime.use(tmp_path) as store:
            assert cache_runtime.active() is store
        assert cache_runtime.active() is None


class TestFingerprints:
    def test_array_digest_separates_shape_and_none(self):
        flat = np.arange(6.0)
        assert array_digest(flat.reshape(2, 3)) != array_digest(flat.reshape(3, 2))
        assert array_digest(None) != array_digest(np.array([]))

    def test_network_fingerprint_ignores_names(self):
        from repro.model import Cloud, CloudNetwork, SLAEdge

        def build(prefix):
            tier2 = [Cloud(f"{prefix}{i}", 10.0, 20.0) for i in range(2)]
            tier1 = [Cloud(f"{prefix}-edge-{j}", np.inf) for j in range(3)]
            edges = [SLAEdge(j % 2, j, 7.0, 12.0) for j in range(3)]
            return CloudNetwork(tier2, tier1, edges)

        assert network_fingerprint(build("a")) == network_fingerprint(build("b"))

    def test_network_fingerprint_sees_capacity(self):
        assert network_fingerprint(make_network()) != network_fingerprint(
            make_network(tier2_capacity=11.0)
        )

    def test_config_fingerprint_sees_every_flag(self):
        base = SubproblemConfig(epsilon=1e-2)
        assert config_fingerprint(base) == config_fingerprint(
            SubproblemConfig(epsilon=1e-2)
        )
        for other in (
            SubproblemConfig(epsilon=2e-2),
            SubproblemConfig(epsilon=1e-2, hedging=False),
            SubproblemConfig(epsilon=1e-2, fused_kernels=False),
            SubproblemConfig(epsilon=1e-2, backend="batched"),
        ):
            assert config_fingerprint(base) != config_fingerprint(other)

    def test_solve_key_sees_every_input(self, small_network):
        config = SubproblemConfig(epsilon=1e-2)
        fp = structure_fingerprint(small_network, config)
        J, E = small_network.n_tier1, small_network.n_edges
        workload = np.ones(J)
        t2 = np.ones(small_network.n_tier2)
        link = np.ones(E)
        prev = Allocation.zeros(E)
        base = solve_key(fp, workload, t2, link, prev, None)
        assert base == solve_key(fp, workload, t2, link, prev, None)
        assert base != solve_key(fp, workload + 1e-9, t2, link, prev, None)
        assert base != solve_key(fp, workload, t2, link, prev, np.zeros(3))
        bumped = Allocation(prev.x + 1, prev.y, prev.s)
        assert base != solve_key(fp, workload, t2, link, bumped, None)
