"""Tests for the sharded serve runtime (repro.shard.coordinator/worker).

The load-bearing guarantee: a sharded run — including runs where a
shard is killed and restarted from its checkpoint at *any* slot — is
byte-identical to the single-process run in its merged decisions, its
event stream (modulo shard attribution) and its merged metrics under
the shard-parity projection.  The parity regime is the ``batched``
backend on ``k=1`` topologies, where shard sub-networks are
component-closed and order-preserving (see docs/SERVING.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import runtime as cache_runtime
from repro.core import RegularizedOnline, SubproblemConfig
from repro.evaluation.reporting import render_serve_events
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.serve import EventLog, InstanceSource, ServeConfig, ServeLoop
from repro.shard import (
    ShardedServeConfig,
    ShardedServeLoop,
    load_layout_checkpoint,
    parity_text,
    render_shard_status,
    shard_parity_view,
)

from conftest import make_instance, make_network

HORIZON = 5


def controller():
    return RegularizedOnline(SubproblemConfig(epsilon=1e-2, backend="batched"))


@pytest.fixture
def instance():
    # k=1 -> 3 SLA components (tier-2 cloud i serves tier-1 {i, i+3}),
    # the topology class the bitwise-parity guarantee covers.
    return make_instance(make_network(n_tier2=3, n_tier1=6, k=1), horizon=HORIZON)


def single_run(instance, **cfg):
    return ServeLoop(controller(), InstanceSource(instance), ServeConfig(**cfg)).run()


def assert_reports_bitwise_equal(sharded, single):
    assert sharded.error is None and single.error is None
    assert sharded.paths == single.paths
    assert np.array_equal(sharded.trajectory.x, single.trajectory.x)
    assert np.array_equal(sharded.trajectory.y, single.trajectory.y)
    assert np.array_equal(sharded.trajectory.s, single.trajectory.s)


class TestShardedParity:
    def test_merged_decisions_bitwise_equal_single_process(self, instance):
        single = single_run(instance)
        loop = ShardedServeLoop(
            controller(), InstanceSource(instance), ShardedServeConfig(n_shards=3)
        )
        sharded = loop.run()
        assert_reports_bitwise_equal(sharded, single)
        assert sharded.summary["slots"] == HORIZON
        assert sharded.summary["unserved"] == 0

    @pytest.mark.parametrize("policy", ["round-robin", "load-balanced", "affinity"])
    def test_parity_holds_under_every_policy(self, instance, policy):
        single = single_run(instance)
        sharded = ShardedServeLoop(
            controller(),
            InstanceSource(instance),
            ShardedServeConfig(n_shards=2, partition=policy),
        ).run()
        assert_reports_bitwise_equal(sharded, single)

    @pytest.mark.parametrize("kill_after", range(HORIZON - 1))
    def test_kill_at_every_slot_index_resumes_bitwise(self, instance, kill_after):
        """A shard killed after any slot restarts from checkpoint and the
        run stays byte-identical — the tentpole's recovery guarantee."""
        single = single_run(instance)
        log = EventLog()
        sharded = ShardedServeLoop(
            controller(),
            InstanceSource(instance),
            ShardedServeConfig(
                n_shards=3, kill_shard={1: kill_after}, heartbeat_timeout_s=30.0
            ),
            event_log=log,
        ).run()
        assert_reports_bitwise_equal(sharded, single)
        kinds = [e["event"] for e in log.events]
        assert "shard_down" in kinds and "shard_restart" in kinds

    def test_event_stream_matches_single_modulo_shard_events(self, instance):
        def decided(log):
            return [
                {k: e[k] for k in ("t", "path", "served", "deadline_missed")}
                for e in log.events
                if e["event"] == "slot_decided"
            ]

        single_log, sharded_log = EventLog(), EventLog()
        ServeLoop(
            controller(), InstanceSource(instance), ServeConfig(),
            event_log=single_log,
        ).run()
        ShardedServeLoop(
            controller(), InstanceSource(instance),
            ShardedServeConfig(n_shards=3), event_log=sharded_log,
        ).run()
        assert decided(sharded_log) == decided(single_log)


class TestShardedCheckpointResume:
    def test_layout_checkpoint_resume_is_bitwise(self, instance, tmp_path):
        ckpt = tmp_path / "layout.json"
        single = single_run(instance)
        cfg = ShardedServeConfig(
            n_shards=3, checkpoint_path=ckpt, checkpoint_every=1, max_slots=2
        )
        first = ShardedServeLoop(
            controller(), InstanceSource(instance), cfg
        ).run()
        assert len(first.paths) == 2
        record = load_layout_checkpoint(ckpt)
        assert record["t"] == 2
        assert record["plan"]["n_shards"] == 3

        loop = ShardedServeLoop.resume(
            controller(), InstanceSource(instance), ckpt
        )
        assert loop.t == 2
        resumed = loop.run()
        assert_reports_bitwise_equal(resumed, single)

    def test_resume_restores_plan_not_policy(self, instance, tmp_path):
        ckpt = tmp_path / "layout.json"
        cfg = ShardedServeConfig(
            n_shards=2, partition="affinity", checkpoint_path=ckpt,
            checkpoint_every=1, max_slots=1,
        )
        plan = ShardedServeLoop(
            controller(), InstanceSource(instance), cfg
        ).plan
        ShardedServeLoop(controller(), InstanceSource(instance), cfg).run()
        loop = ShardedServeLoop.resume(controller(), InstanceSource(instance), ckpt)
        assert loop.plan == plan

    def test_resume_rejects_changed_shard_count(self, instance, tmp_path):
        ckpt = tmp_path / "layout.json"
        ShardedServeLoop(
            controller(),
            InstanceSource(instance),
            ShardedServeConfig(
                n_shards=2, checkpoint_path=ckpt, checkpoint_every=1, max_slots=1
            ),
        ).run()
        with pytest.raises(ValueError, match="shard count"):
            ShardedServeLoop.resume(
                controller(),
                InstanceSource(instance),
                ckpt,
                config=ShardedServeConfig(n_shards=3, checkpoint_path=ckpt),
            )


class TestShardedConfigValidation:
    def test_nonpositive_deadline_names_the_flag(self):
        with pytest.raises(ValueError, match="--deadline-ms"):
            ShardedServeConfig(deadline_s=0.0)

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            ShardedServeConfig(partition="zigzag")

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedServeConfig(n_shards=0)


class TestShardedMetricsParity:
    def run_with_registry(self, make_loop):
        obs_metrics.enable()
        try:
            report = make_loop().run()
            snapshot = obs_metrics.active().snapshot()
        finally:
            obs_metrics.disable()
        assert report.error is None
        return snapshot

    def test_merged_registry_parity_view_matches_single(self, instance):
        single = self.run_with_registry(
            lambda: ServeLoop(controller(), InstanceSource(instance), ServeConfig())
        )
        sharded = self.run_with_registry(
            lambda: ShardedServeLoop(
                controller(),
                InstanceSource(instance),
                ShardedServeConfig(n_shards=3, kill_shard={2: 1}),
            )
        )
        assert shard_parity_view(sharded) == shard_parity_view(single)
        assert parity_text(sharded) == parity_text(single)

    def test_shared_cache_ops_counted_exactly_once(self, instance, tmp_path):
        """Concurrent shard writers on one --cache dir must not double
        count ``solver_cache_ops_total`` in the merged registry."""
        n_shards = 3
        obs_metrics.enable()
        try:
            with cache_runtime.use(tmp_path / "cache"):
                report = ShardedServeLoop(
                    controller(),
                    InstanceSource(instance),
                    ShardedServeConfig(n_shards=n_shards),
                ).run()
            snapshot = obs_metrics.active().snapshot()
        finally:
            obs_metrics.disable()
        assert report.error is None
        ops: "dict[str, float]" = {}
        for entry in snapshot["metrics"]:
            if entry["name"] == "solver_cache_ops_total":
                assert entry["labels"].get("shard") is not None
                op = entry["labels"]["op"]
                ops[op] = ops.get(op, 0.0) + entry["value"]
        # Cold run: every shard solves each slot once -> one miss and
        # one store per (shard, slot), nothing else.  A doubled fold
        # would break these exact counts.
        assert ops == {"miss": n_shards * HORIZON, "store": n_shards * HORIZON}


class TestShardStatusAndReporting:
    def test_status_table_lists_worker_sinks(self, instance, tmp_path):
        tele = tmp_path / "tele"
        # Mirror the CLI wiring: the parent registry streams to its own
        # sink, so the folded restart counter is visible to status.
        registry = obs_metrics.enable()
        obs_telemetry.attach(tele, registry=registry, min_interval_s=0.0)
        try:
            ShardedServeLoop(
                controller(),
                InstanceSource(instance),
                ShardedServeConfig(
                    n_shards=3, telemetry_dir=tele, kill_shard={0: 1}
                ),
            ).run()
        finally:
            obs_telemetry.detach()
            obs_metrics.disable()
        text = render_shard_status(tele)
        assert "shard status" in text
        assert "shard-0" in text and "shard-2" in text
        assert "shard restarts: 1" in text

    def test_replay_renders_shard_layout(self, instance):
        log = EventLog()
        ShardedServeLoop(
            controller(),
            InstanceSource(instance),
            ShardedServeConfig(n_shards=2),
            event_log=log,
        ).run()
        start = next(e for e in log.events if e["event"] == "serve_start")
        assert start["shards"] == 2
        assert len(start["assignments"]) == 2
        text = render_serve_events(log.events)
        assert "shards" in text and "shard 0 tier-1 clouds" in text

    def test_merged_step_stats_cover_every_slot(self, instance):
        loop = ShardedServeLoop(
            controller(), InstanceSource(instance), ShardedServeConfig(n_shards=2)
        )
        loop.run()
        assert len(loop.step_stats) == HORIZON
        assert all(s.wall_time > 0 for s in loop.step_stats)
