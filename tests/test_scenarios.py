"""Tests for the scenario registry, corpus and CLI surface.

The golden fingerprints live in ``test_scenarios_golden.py``; this
module covers the registry contract, structural validity of every
built scenario, the evaluation path, the serve path, and ``repro
scenario list|describe|run``.  Full-scale runs are in
``@pytest.mark.slow`` tests (excluded from tier-1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.feasibility import check_instance_feasible, necessary_conditions
from repro.scenarios import (
    SCENARIO_SIZES,
    Scenario,
    all_scenarios,
    evaluate,
    get_scenario,
    register,
    render_evaluation,
    scenario_names,
)

TWO_TIER = [s for s in all_scenarios() if s.tiers == 2]
SMOKES = {s.name: s.build("smoke") for s in all_scenarios()}


class TestRegistry:
    def test_corpus_has_at_least_five_serveable_scenarios(self):
        serveable = [s for s in all_scenarios() if s.serveable]
        assert len(serveable) >= 5

    def test_corpus_includes_an_ntier_scenario(self):
        assert any(s.tiers > 2 for s in all_scenarios())

    def test_expected_names_present(self):
        names = scenario_names()
        for expected in (
            "geo-diurnal", "flash-crowd", "regional-failure",
            "adversarial", "price-spike", "ntier-continental",
        ):
            assert expected in names

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        existing = all_scenarios()[0]
        with pytest.raises(ValueError, match="already registered"):
            register(existing)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario size"):
            all_scenarios()[0].build("galactic")


class TestBuiltScenarios:
    @pytest.mark.parametrize("name", [s.name for s in TWO_TIER])
    def test_two_tier_instances_are_valid_and_feasible(self, name):
        built = SMOKES[name]
        inst = built.instance
        assert inst is not None and built.ntier is None
        assert inst.workload.min() >= 0
        assert necessary_conditions(inst).ok
        assert check_instance_feasible(inst).ok

    @pytest.mark.parametrize("name", [s.name for s in TWO_TIER])
    def test_one_sla_component_per_region(self, name):
        """The sharded runtime partitions along SLA components; the
        generated corpus guarantees one per region."""
        built = SMOKES[name]
        assert built.topology.sla_component_count() == built.topology.n_regions

    def test_ntier_scenario_shape(self):
        built = SMOKES["ntier-continental"]
        assert built.instance is None and built.ntier is not None
        net = built.ntier.network
        assert net.n_tiers == 3
        assert built.ntier.workload.shape == (built.horizon, net.n_tier1)

    def test_flash_crowd_adds_demand_over_diurnal(self):
        base = SMOKES["geo-diurnal"]
        crowd = get_scenario("flash-crowd").build(
            "smoke", seed=get_scenario("geo-diurnal").default_seed
        )
        # Same seed -> same diurnal base, so the cascade only adds.
        diff = crowd.instance.workload - base.instance.workload
        assert diff.min() >= -1e-12 and diff.max() > 1.0

    def test_regional_failure_shifts_load_and_price(self):
        built = SMOKES["regional-failure"]
        topo = built.topology
        failed_pops = np.flatnonzero(topo.tier2_region == 0)
        plain = topo.build_instance(built.instance.workload)
        ratio = built.instance.tier2_price / plain.tier2_price
        assert np.isclose(ratio[np.ix_(range(8, 14), failed_pops)], 10.0).all()
        untouched = np.delete(ratio, failed_pops, axis=1)
        assert np.isclose(untouched, 1.0).all()

    def test_price_spike_only_in_window_and_shocked_regions(self):
        built = SMOKES["price-spike"]
        topo = built.topology
        plain = topo.build_instance(built.instance.workload)
        ratio = built.instance.tier2_price / plain.tier2_price
        shocked = np.flatnonzero(topo.tier2_region % 2 == 1)
        assert np.isclose(ratio[np.ix_(range(13, 17), shocked)], 8.0).all()
        outside = np.delete(np.arange(built.horizon), np.arange(13, 17))
        assert np.isclose(ratio[outside], 1.0).all()

    def test_describe_shape_mentions_sizes(self):
        assert "|J|=12" in SMOKES["geo-diurnal"].describe_shape()
        assert "3-tier" in SMOKES["ntier-continental"].describe_shape()


class TestEvaluate:
    def test_two_tier_eval_orders_offline_online_greedy(self):
        rows = evaluate(SMOKES["adversarial"], backend="batched")
        by_name = {name: total for name, total, *_ in rows}
        assert set(by_name) == {"offline", "online", "greedy"}
        # The adversarial regime is built to punish greedy.
        assert by_name["offline"] <= by_name["online"] < by_name["greedy"]
        assert all(feasible for *_, feasible in rows)

    def test_ntier_eval_runs(self):
        rows = evaluate(SMOKES["ntier-continental"])
        by_name = {name: total for name, total, *_ in rows}
        assert by_name["offline"] <= by_name["online"] < by_name["greedy"]

    def test_render_evaluation_table(self):
        rows = evaluate(SMOKES["geo-diurnal"], include_offline=False)
        text = render_evaluation(rows)
        assert "algorithm" in text and "online" in text
        assert "offline" not in text


class TestServePath:
    def test_smoke_scenario_serves_all_slots(self):
        from repro.core import RegularizedOnline, SubproblemConfig
        from repro.serve import InstanceSource, ServeConfig, ServeLoop

        built = SMOKES["price-spike"]
        report = ServeLoop(
            RegularizedOnline(SubproblemConfig(epsilon=1e-2, backend="batched")),
            InstanceSource(built.instance),
            ServeConfig(),
        ).run()
        assert report.error is None
        assert report.summary["slots"] == built.horizon
        assert report.summary["unserved"] == 0


class TestScenarioCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_describe_prints_fingerprint(self, capsys):
        import json
        from pathlib import Path

        from repro.cli import main

        assert main(["scenario", "describe", "geo-diurnal"]) == 0
        out = capsys.readouterr().out
        golden = json.loads(
            (Path(__file__).parent / "golden" /
             "scenario_fingerprints.json").read_text()
        )
        assert golden["geo-diurnal"]["smoke"] in out

    def test_describe_without_name_exits_2(self, capsys):
        from repro.cli import main

        assert main(["scenario", "describe"]) == 2
        assert "requires a NAME" in capsys.readouterr().err

    def test_run_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_eval_smoke(self, capsys):
        from repro.cli import main

        assert main(
            ["scenario", "run", "flash-crowd", "--backend", "batched"]
        ) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out and "greedy" in out

    def test_serve_mode_rejects_ntier(self, capsys):
        from repro.cli import main

        assert main(
            ["scenario", "run", "ntier-continental", "--mode", "serve"]
        ) == 2
        assert "evaluation-only" in capsys.readouterr().err

    def test_serve_mode_bad_horizon_exits_2(self, capsys):
        from repro.cli import main

        assert main(
            ["scenario", "run", "geo-diurnal", "--mode", "serve",
             "--horizon", "0"]
        ) == 2
        assert "--horizon" in capsys.readouterr().err

    def test_serve_mode_smoke(self, capsys, tmp_path):
        from repro.cli import main

        decisions = tmp_path / "d.npy"
        assert main(
            ["scenario", "run", "geo-diurnal", "--mode", "serve",
             "--horizon", "3", "--backend", "batched",
             "--decisions", str(decisions)]
        ) == 0
        out = capsys.readouterr().out
        assert "3 slots (3 served, 0 unserved)" in out
        assert decisions.exists()


@pytest.mark.slow
class TestFullScale:
    """Continent-scale runs; excluded from tier-1 (run with ``-m slow``)."""

    def test_full_geo_diurnal_builds_valid_240_cloud_instance(self):
        built = get_scenario("geo-diurnal").build("full")
        assert built.instance.network.n_tier1 >= 200
        assert necessary_conditions(built.instance).ok
        assert check_instance_feasible(built.instance).ok

    def test_full_scale_sharded_serve_parity(self):
        from repro.core import RegularizedOnline, SubproblemConfig
        from repro.serve import InstanceSource, ServeConfig, ServeLoop
        from repro.shard import ShardedServeConfig, ShardedServeLoop

        built = get_scenario("geo-diurnal").build("full")
        instance = built.instance.slice(0, 6)

        def controller():
            return RegularizedOnline(
                SubproblemConfig(epsilon=1e-2, backend="batched")
            )

        single = ServeLoop(
            controller(), InstanceSource(instance), ServeConfig()
        ).run()
        sharded = ShardedServeLoop(
            controller(), InstanceSource(instance),
            ShardedServeConfig(n_shards=4),
        ).run()
        assert sharded.error is None and single.error is None
        assert np.array_equal(sharded.trajectory.x, single.trajectory.x)
        assert np.array_equal(sharded.trajectory.y, single.trajectory.y)
        assert np.array_equal(sharded.trajectory.s, single.trajectory.s)

    def test_full_scale_eval_without_offline(self):
        rows = evaluate(
            get_scenario("adversarial").build("full"),
            backend="batched",
            include_offline=False,
        )
        by_name = {name: total for name, total, *_ in rows}
        assert by_name["online"] < by_name["greedy"]
