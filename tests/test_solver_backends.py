"""Tests for the solver-backend layer (repro.solvers.backends).

The acceptance bar: ``BatchedNewtonBackend`` is *decision-identical*
to ``SequentialBackend`` — tier-2 totals, link allocations and costs
agree to solver tolerance on every golden scenario — while the cover
split ``s`` may differ (it is not unique; see the backends doc).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RegularizedOnline, SubproblemConfig
from repro.core.subproblem import RegularizedSubproblem
from repro.evaluation.experiments import make_instance as make_fig_instance
from repro.evaluation.scale import ExperimentScale
from repro.model import Allocation, Cloud, CloudNetwork, SLAEdge
from repro.model.costs import evaluate_cost
from repro.model.feasibility import check_trajectory
from repro.solvers.backends import (
    BatchedNewtonBackend,
    SequentialBackend,
    SolverBackend,
    available_backends,
    get_backend,
)

from conftest import make_instance, make_network

# Decision-identity tolerances: the two backends follow different
# numerical paths to the same unique optimum of a strictly convex
# objective, so they agree to solver tolerance, not bitwise.  Chained
# over a trajectory the measured deviations are ~1e-5 (X), ~3e-3 (y).
DX_TOL = 1e-3
DY_TOL = 2e-2
DCOST_TOL = 1e-3


def rel_gap(a: np.ndarray, b: np.ndarray) -> float:
    a, b = np.asarray(a, float), np.asarray(b, float)
    return float(np.max(np.abs(a - b) / (1.0 + np.abs(a)))) if a.size else 0.0


def run_both(instance, epsilon=1e-2):
    out = {}
    for backend in ("sequential", "batched"):
        algo = RegularizedOnline(SubproblemConfig(epsilon=epsilon, backend=backend))
        out[backend] = algo.run(instance)
    return out["sequential"], out["batched"]


def assert_decision_identical(instance, seq, bat):
    net = instance.network
    assert rel_gap(seq.tier2_totals(net), bat.tier2_totals(net)) < DX_TOL
    assert rel_gap(seq.y, bat.y) < DY_TOL
    ca = evaluate_cost(instance, seq).total
    cb = evaluate_cost(instance, bat).total
    assert abs(ca - cb) <= DCOST_TOL * (1.0 + abs(ca))


def star_network(n_tier1: int = 6) -> CloudNetwork:
    """All-star SLA graph (k=1): every component is closed-form."""
    return make_network(n_tier1=n_tier1, k=1)


def mixed_network() -> CloudNetwork:
    """One dense (non-star) component plus two star components."""
    tier2 = [
        Cloud(f"i{i}", c, b)
        for i, (c, b) in enumerate([(30.0, 2.0), (25.0, 3.0), (40.0, 1.5), (35.0, 2.5)])
    ]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(5)]
    edges = [
        SLAEdge(0, 0, 20.0, 1.0),
        SLAEdge(0, 1, 15.0, 1.2),
        SLAEdge(1, 0, 18.0, 0.8),
        SLAEdge(1, 1, 22.0, 1.1),
        SLAEdge(2, 2, 30.0, 0.9),
        SLAEdge(3, 3, 25.0, 1.3),
        SLAEdge(3, 4, 28.0, 0.7),
    ]
    return CloudNetwork(tier2, tier1, edges)


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(available_backends()) >= {"sequential", "batched"}

    def test_instances_satisfy_protocol(self):
        assert isinstance(get_backend("sequential"), SolverBackend)
        assert isinstance(get_backend("batched"), SolverBackend)
        assert isinstance(SequentialBackend(), SolverBackend)
        assert isinstance(BatchedNewtonBackend(), SolverBackend)

    def test_unknown_backend_names_the_alternatives(self):
        with pytest.raises(ValueError, match="unknown solver backend 'nope'"):
            get_backend("nope")
        with pytest.raises(ValueError, match="sequential"):
            get_backend("nope")

    def test_config_rejects_unknown_backend_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            SubproblemConfig(backend="typo")


class TestSequentialBackend:
    """The migrated reference path stays bitwise-identical."""

    def test_dispatch_equals_coupled_solve(self, small_network):
        inst = make_instance(small_network, horizon=4, seed=2)
        via_backend = RegularizedSubproblem(small_network, SubproblemConfig())
        direct = RegularizedSubproblem(small_network, SubproblemConfig())
        prev = Allocation.zeros(small_network.n_edges)
        for t in range(inst.horizon):
            a1, v1 = via_backend.solve_reduced(
                inst.workload[t], inst.tier2_price[t], inst.link_price[t], prev
            )
            a2, v2 = direct._solve_reduced_coupled(
                inst.workload[t], inst.tier2_price[t], inst.link_price[t], prev
            )
            assert np.array_equal(v1, v2)
            assert np.array_equal(a1.x, a2.x)
            prev = a1


class TestGoldenEquivalence:
    """Batched == sequential decisions across the fig5-fig10 regimes."""

    @pytest.mark.parametrize(
        "workload,k,recon_weight,epsilon",
        [
            # fig5: reconfiguration-weight sweep at k=1
            ("wikipedia", 1, 1e2, 1e-2),
            ("wikipedia", 1, 1e3, 1e-2),
            # fig6: epsilon sweep
            ("wikipedia", 1, 1e3, 1e-3),
            ("wikipedia", 1, 1e3, 1e-1),
            # fig7: SLA-size sweep (k=2 exercises the dense fallback)
            ("wikipedia", 2, 1e3, 1e-2),
            # fig8-10 regime: epsilon=1e-3 anchor + bursty workload
            ("worldcup", 1, 1e3, 1e-3),
        ],
    )
    def test_fig_scenarios(self, workload, k, recon_weight, epsilon):
        inst = make_fig_instance(
            ExperimentScale.tiny(), workload, k=k, recon_weight=recon_weight
        )
        seq, bat = run_both(inst, epsilon=epsilon)
        assert_decision_identical(inst, seq, bat)
        assert check_trajectory(inst, bat).ok

    def test_mixed_components_use_batched_newton(self):
        net = mixed_network()
        sub = RegularizedSubproblem(net, SubproblemConfig(backend="batched"))
        handle = sub._backend_handle
        # Structure check: the dense 2x2 component is a Newton block,
        # the stars are on the closed-form fast path.
        assert len(handle.blocks) == 1
        assert list(handle.fast_i) == [False, False, True, True]
        inst = make_instance(net, horizon=12, seed=4)
        seq, bat = run_both(inst)
        assert_decision_identical(inst, seq, bat)

    def test_single_component_falls_back_bitwise(self, small_network):
        # k=2 ring: one non-star component -> nothing to decompose, the
        # batched backend routes every slot through the coupled solve
        # and the trajectories are bitwise equal.
        inst = make_instance(small_network, horizon=6, seed=5)
        seq, bat = run_both(inst)
        assert np.array_equal(seq.x, bat.x)
        assert np.array_equal(seq.y, bat.y)
        assert np.array_equal(seq.s, bat.s)

    def test_step_stats_tagged_with_backend(self):
        inst = make_instance(star_network(), horizon=5, seed=1)
        bat = RegularizedOnline(SubproblemConfig(backend="batched")).run(inst)
        assert "batched" in bat.run_stats.backends
        seq = RegularizedOnline(SubproblemConfig()).run(inst)
        assert "batched" not in seq.run_stats.backends


class TestObservability:
    def test_fast_path_counters(self):
        from repro.obs import metrics

        inst = make_instance(star_network(), horizon=5, seed=1)
        with metrics.use() as reg:
            RegularizedOnline(SubproblemConfig(backend="batched")).run(inst)
        values = {
            (e["name"], e["labels"].get("reason")): e.get("value")
            for e in reg.snapshot()["metrics"]
        }
        assert values[("backend_slots_total", None)] == 5
        assert values[("backend_fast_path_hits_total", None)] > 0
        # Pure star network: no Newton blocks, no fallbacks.
        assert not any(
            name == "backend_sequential_fallbacks_total" for name, _ in values
        )
        assert not any(
            name == "backend_fused_newton_iters_total" for name, _ in values
        )

    def test_fallback_counter_records_reason(self, small_network):
        from repro.obs import metrics

        inst = make_instance(small_network, horizon=3, seed=5)
        with metrics.use() as reg:
            RegularizedOnline(SubproblemConfig(backend="batched")).run(inst)
        fallbacks = [
            e
            for e in reg.snapshot()["metrics"]
            if e["name"] == "backend_sequential_fallbacks_total"
        ]
        assert fallbacks and fallbacks[0]["labels"]["reason"] == "single_component"
        assert sum(e["value"] for e in fallbacks) == 3

    def test_batch_size_histogram_on_newton_components(self):
        from repro.obs import metrics

        inst = make_instance(mixed_network(), horizon=3, seed=4)
        with metrics.use() as reg:
            RegularizedOnline(SubproblemConfig(backend="batched")).run(inst)
        hist = [
            e
            for e in reg.snapshot()["metrics"]
            if e["name"] == "backend_batch_size"
        ]
        assert hist and hist[0]["count"] == 3  # one stacked solve per slot
        newton = [
            e
            for e in reg.snapshot()["metrics"]
            if e["name"] == "backend_fused_newton_iters_total"
        ]
        assert newton and newton[0]["value"] > 0

    def test_warm_start_counters_and_render(self, small_network):
        from repro.evaluation.reporting import render_metrics
        from repro.obs import metrics

        inst = make_instance(small_network, horizon=6, seed=5)
        with metrics.use() as reg:
            RegularizedOnline(SubproblemConfig()).run(inst)
        snap = reg.snapshot()
        by_outcome = {
            e["labels"]["outcome"]: e["value"]
            for e in snap["metrics"]
            if e["name"] == "subproblem_warm_starts_total"
        }
        # Slot 0 is a cold start; every later slot attempts the warm seed.
        assert by_outcome.get("cold") == 1
        assert by_outcome.get("hit", 0) + by_outcome.get("miss", 0) == 5
        text = render_metrics(snap)
        assert "warm-start hit rate" in text
        assert "cold starts: 1" in text

    def test_render_metrics_without_warm_counters(self):
        from repro.evaluation.reporting import render_metrics
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("other_total", help="x").inc()
        assert "warm-start hit rate" not in render_metrics(reg.snapshot())


class TestKKTCertificates:
    def test_block_certificates_near_zero_at_optimum(self):
        from repro.solvers.kkt import block_first_order_certificates

        programs, solutions = [], []
        for seed in (0, 1):
            net = star_network(n_tier1=4)
            inst = make_instance(net, horizon=2, seed=seed)
            sub = RegularizedSubproblem(net, SubproblemConfig())
            prev = Allocation.zeros(net.n_edges)
            _, v = sub.solve_reduced(
                inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev
            )
            programs.append(
                sub.build(
                    inst.workload[0], inst.tier2_price[0], inst.link_price[0], prev
                )
            )
            solutions.append(v)
        certs = block_first_order_certificates(programs, solutions)
        assert certs.shape == (2,)
        assert np.all(certs > -1e-5)

    def test_block_certificates_length_mismatch(self):
        from repro.solvers.kkt import block_first_order_certificates

        with pytest.raises(ValueError, match="1 programs but 0"):
            block_first_order_certificates([object()], [])


class TestServeWithBatchedBackend:
    """Serve runtime: checkpoints record the backend; resume is bitwise."""

    BATCHED = SubproblemConfig(epsilon=1e-2, backend="batched")

    def make_star_instance(self):
        return make_instance(star_network(), horizon=10, seed=5)

    def test_kill_and_resume_bitwise_under_faults(self, tmp_path):
        from repro.serve import FaultInjector, ServeConfig, ServeLoop

        inst = self.make_star_instance()
        injector = FaultInjector(stall_prob=0.25, fail_prob=0.15, seed=9)
        full = ServeLoop(
            RegularizedOnline(self.BATCHED), inst, ServeConfig(injector=injector)
        ).run()
        assert full.summary["fallbacks"] > 0  # the seed produces faults
        path = tmp_path / "ck.npz"
        ServeLoop(
            RegularizedOnline(self.BATCHED),
            inst,
            ServeConfig(
                injector=injector,
                checkpoint_path=path,
                checkpoint_every=1,
                max_slots=4,
            ),
        ).run()
        resumed = ServeLoop.resume(
            RegularizedOnline(self.BATCHED),
            inst,
            path,
            config=ServeConfig(injector=injector),
        ).run()
        assert np.array_equal(resumed.trajectory.x, full.trajectory.x)
        assert np.array_equal(resumed.trajectory.y, full.trajectory.y)
        assert np.array_equal(resumed.trajectory.s, full.trajectory.s)
        assert resumed.paths == full.paths

    def test_resume_restores_recorded_backend(self, tmp_path):
        from repro.serve import ServeConfig, ServeLoop

        inst = self.make_star_instance()
        path = tmp_path / "ck.npz"
        ServeLoop(
            RegularizedOnline(self.BATCHED),
            inst,
            ServeConfig(checkpoint_path=path, checkpoint_every=1, max_slots=3),
        ).run()
        # Relaunch with the default (sequential) config: the restored
        # session keeps solving on the backend that wrote the checkpoint.
        loop = ServeLoop.resume(RegularizedOnline(SubproblemConfig()), inst, path)
        assert loop.session.state.subproblem.config.backend == "batched"
        full = ServeLoop(RegularizedOnline(self.BATCHED), inst).run()
        resumed = loop.run()
        assert np.array_equal(resumed.trajectory.x, full.trajectory.x)

    def test_serve_start_event_records_backend(self):
        from repro.evaluation.reporting import render_serve_events
        from repro.serve import EventLog, ServeConfig, ServeLoop

        inst = self.make_star_instance()
        log = EventLog()
        ServeLoop(
            RegularizedOnline(self.BATCHED), inst, ServeConfig(max_slots=2), log
        ).run()
        start = next(e for e in log.events if e["event"] == "serve_start")
        assert start["backend"] == "batched"
        assert "solver backend" in render_serve_events(log.events)


class TestParallelSweeps:
    """Backend flags survive process-pool pickling (satellite fix)."""

    def test_fig5_jobs_rows_identical_to_serial_under_batched(self):
        from repro.evaluation.experiments import fig5_cost_no_prediction

        kwargs = dict(
            scale=ExperimentScale.tiny(),
            recon_weights=(1e2, 1e3),
            backend="batched",
        )
        serial = fig5_cost_no_prediction(jobs=None, **kwargs)
        parallel = fig5_cost_no_prediction(jobs=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_point_payload_carries_full_config(self):
        from repro.evaluation.experiments import fig5_cost_no_prediction, _fig5_point
        import pickle

        # The worker payload must round-trip the backend through pickle.
        config = SubproblemConfig(epsilon=1e-2, backend="batched")
        args = (ExperimentScale.tiny(), "wikipedia", 1e2, config, 1)
        restored = pickle.loads(pickle.dumps(args))
        assert restored[3].backend == "batched"
        assert restored[3].fused_kernels == config.fused_kernels
