"""Tests for experiment-result JSON persistence."""

import numpy as np
import pytest

from repro.evaluation.persistence import load_result, result_to_dict, save_result
from repro.evaluation.reporting import ExperimentResult


def sample_result():
    return ExperimentResult(
        name="fig-test",
        headers=["k", "ratio"],
        rows=[(1, np.float64(1.25)), (2, 1.1)],
        series={"cumulative": np.array([1.0, 2.0, 3.5])},
        notes=["a note"],
    )


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        back = load_result(path)
        assert back.name == "fig-test"
        assert back.headers == ["k", "ratio"]
        assert back.rows[0] == (1, 1.25)
        np.testing.assert_array_equal(back.series["cumulative"], [1.0, 2.0, 3.5])
        assert back.notes == ["a note"]

    def test_numpy_scalars_serialized(self):
        d = result_to_dict(sample_result())
        assert isinstance(d["rows"][0][1], float)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_result(path)

    def test_render_after_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        assert "fig-test" in load_result(path).render()
