"""Tests for experiment sizing (repro.evaluation.scale)."""

import pytest

from repro.evaluation import ExperimentScale
from repro.evaluation.experiments import make_instance, make_trace


class TestFromEnv:
    def test_default_is_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        scale = ExperimentScale.from_env()
        assert not scale.full
        assert scale.n_tier2 == 6
        assert scale.n_tier1 == 12
        assert scale.horizon_wiki == 96
        assert scale.horizon_worldcup == 120

    def test_zero_is_reduced(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert not ExperimentScale.from_env().full

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        scale = ExperimentScale.from_env()
        assert scale.full
        # None means "all clouds" — 18 tier-2 and 48 tier-1 at paper scale.
        assert scale.n_tier2 is None
        assert scale.n_tier1 is None
        assert scale.horizon_wiki == 500
        assert scale.horizon_worldcup == 600

    def test_other_values_are_reduced(self, monkeypatch):
        # Only the literal "1" selects paper scale.
        monkeypatch.setenv("REPRO_FULL_SCALE", "true")
        assert not ExperimentScale.from_env().full


class TestReducedKeepsStructure:
    """The reduction must keep the paper figures' qualitative structure."""

    def setup_method(self):
        self.scale = ExperimentScale(
            n_tier2=6, n_tier1=12, horizon_wiki=96, horizon_worldcup=120, full=False
        )

    def test_horizons_are_multi_day(self):
        # Diurnal + weekly structure needs at least 4 days per regime.
        assert self.scale.horizon_wiki >= 96
        assert self.scale.horizon_worldcup >= 96

    @pytest.mark.parametrize("workload", ["wikipedia", "worldcup"])
    def test_both_workload_regimes_generate(self, workload):
        trace = make_trace(workload, self.scale)
        horizon = (
            self.scale.horizon_wiki
            if workload == "wikipedia"
            else self.scale.horizon_worldcup
        )
        assert len(trace) == horizon
        assert (trace >= 0).all()

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_sla_subsets_up_to_k4(self, k):
        # Fig 7 sweeps k in 1..4; the reduced tier-2 pool (6 clouds)
        # must still admit every subset size.
        tiny = ExperimentScale(
            n_tier2=6, n_tier1=12, horizon_wiki=8, horizon_worldcup=8, full=False
        )
        instance = make_instance(tiny, k=k)
        network = instance.network
        assert network.n_tier2 == 6
        assert network.n_tier1 == 12
        for j in range(network.n_tier1):
            subset = network.sla_tier2_of(j)
            assert len(subset) == k
            assert len(set(subset.tolist())) == k


class TestTiny:
    def test_tiny_is_reduced(self):
        scale = ExperimentScale.tiny()
        assert not scale.full
        assert scale.n_tier2 == 3 and scale.n_tier1 == 5
