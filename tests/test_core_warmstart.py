"""Warm-start correctness: the optimization must not change results."""

import numpy as np
import pytest

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.model import Allocation

from conftest import make_instance, make_network


class TestWarmStartEquivalence:
    def test_chain_with_and_without_warm_start_identical(self):
        net = make_network()
        inst = make_instance(net, horizon=10, seed=4)
        sub = RegularizedSubproblem(net, SubproblemConfig(epsilon=1e-2))

        prev_cold = Allocation.zeros(net.n_edges)
        prev_warm = Allocation.zeros(net.n_edges)
        warm = None
        for t in range(inst.horizon):
            prev_cold = sub.solve(
                inst.workload[t], inst.tier2_price[t], inst.link_price[t], prev_cold
            )
            prev_warm, warm = sub.solve_reduced(
                inst.workload[t],
                inst.tier2_price[t],
                inst.link_price[t],
                prev_warm,
                warm=warm,
            )
            np.testing.assert_allclose(
                prev_warm.tier2_totals(net),
                prev_cold.tier2_totals(net),
                rtol=1e-4,
                atol=1e-6,
            )
            np.testing.assert_allclose(prev_warm.y, prev_cold.y, rtol=1e-4, atol=1e-6)

    def test_stale_warm_start_rejected_gracefully(self):
        """A warm vector violating the new constraints must be ignored."""
        net = make_network()
        inst = make_instance(net, horizon=2, seed=5)
        sub = RegularizedSubproblem(net, SubproblemConfig(epsilon=1e-2))
        bogus = np.full(sub.n_vars, -5.0)  # wildly infeasible
        alloc, _ = sub.solve_reduced(
            inst.workload[0],
            inst.tier2_price[0],
            inst.link_price[0],
            Allocation.zeros(net.n_edges),
            warm=bogus,
        )
        cov = net.aggregate_tier1(alloc.s)
        assert np.all(cov >= inst.workload[0] - 1e-6)
