"""Tests for cost evaluation (F_2 + F_12, optional F_1)."""

import numpy as np
import pytest

from repro.model import (
    Allocation,
    Instance,
    Trajectory,
    evaluate_cost,
    pos_part,
    reconfiguration_increments,
)

from conftest import make_instance, make_network


class TestPosPart:
    def test_basic(self):
        np.testing.assert_array_equal(
            pos_part(np.array([-1.0, 0.0, 2.5])), [0.0, 0.0, 2.5]
        )


class TestReconIncrements:
    def test_zero_initial(self):
        series = np.array([[1.0], [3.0], [2.0], [5.0]])
        inc = reconfiguration_increments(series)
        np.testing.assert_allclose(inc.ravel(), [1.0, 2.0, 0.0, 3.0])

    def test_nonzero_initial(self):
        series = np.array([[1.0], [0.5]])
        inc = reconfiguration_increments(series, initial=np.array([2.0]))
        np.testing.assert_allclose(inc.ravel(), [0.0, 0.0])

    def test_monotone_series_total_equals_range(self):
        series = np.cumsum(np.random.default_rng(0).random((10, 3)), axis=0)
        inc = reconfiguration_increments(series)
        np.testing.assert_allclose(inc.sum(axis=0), series[-1])


class TestEvaluateCost:
    def _tiny(self):
        net = make_network(n_tier2=2, n_tier1=2, k=1)
        T = 3
        lam = np.ones((T, 2))
        a = np.full((T, 2), 2.0)
        c = np.full((T, net.n_edges), 0.5)
        return Instance(net, lam, a, c)

    def test_hand_computed_total(self):
        inst = self._tiny()
        net = inst.network
        # Constant allocation x = y = s = 1 on each edge.
        ones = np.ones((3, net.n_edges))
        traj = Trajectory(ones, ones, ones)
        cost = evaluate_cost(inst, traj)
        # Tier-2 alloc: per slot sum_i a_i * X_i = 2 * (1 + 1) = 4; 3 slots = 12.
        assert cost.tier2_alloc.sum() == pytest.approx(12.0)
        # Link alloc: 0.5 * 2 edges * 3 slots = 3.
        assert cost.link_alloc.sum() == pytest.approx(3.0)
        # Recon: only slot 0 (from zero): tier-2 20 * 2 clouds, links 12 * 2.
        assert cost.tier2_recon.sum() == pytest.approx(40.0)
        assert cost.link_recon.sum() == pytest.approx(24.0)
        assert cost.total == pytest.approx(12 + 3 + 40 + 24)

    def test_initial_state_suppresses_first_recon(self):
        inst = self._tiny()
        net = inst.network
        ones = np.ones((3, net.n_edges))
        traj = Trajectory(ones, ones, ones)
        init = Allocation(
            np.ones(net.n_edges), np.ones(net.n_edges), np.ones(net.n_edges)
        )
        cost = evaluate_cost(inst, traj, initial=init)
        assert cost.reconfiguration_total == pytest.approx(0.0)

    def test_cumulative_is_monotone(self, small_instance):
        rng = np.random.default_rng(5)
        E = small_instance.network.n_edges
        s = rng.random((small_instance.horizon, E))
        traj = Trajectory(s + 0.5, s + 0.3, s)
        cum = evaluate_cost(small_instance, traj).cumulative
        assert np.all(np.diff(cum) >= -1e-12)

    def test_horizon_mismatch_raises(self, small_instance):
        E = small_instance.network.n_edges
        traj = Trajectory.zeros(small_instance.horizon - 1, E)
        with pytest.raises(ValueError, match="horizon"):
            evaluate_cost(small_instance, traj)

    def test_tier1_extension_requires_prices(self, small_instance):
        E = small_instance.network.n_edges
        traj = Trajectory.zeros(small_instance.horizon, E)
        with pytest.raises(ValueError, match="tier1_price"):
            evaluate_cost(small_instance, traj, include_tier1=True)

    def test_tier1_extension_charges_s_totals(self):
        net = make_network(n_tier2=2, n_tier1=2, k=1)
        T = 2
        inst = Instance(
            net,
            np.ones((T, 2)),
            np.zeros((T, 2)),
            np.zeros((T, net.n_edges)),
            tier1_price=np.full((T, 2), 3.0),
        )
        ones = np.ones((T, net.n_edges))
        cost = evaluate_cost(inst, Trajectory(ones, ones, ones), include_tier1=True)
        # s totals per tier-1 cloud = 1 each, price 3, 2 clouds, 2 slots.
        assert cost.tier1_alloc.sum() == pytest.approx(12.0)


class TestCostBreakdownProperties:
    def test_per_slot_sums_to_total(self, small_instance):
        rng = np.random.default_rng(9)
        E = small_instance.network.n_edges
        s = rng.random((small_instance.horizon, E))
        cost = evaluate_cost(small_instance, Trajectory(s + 1, s + 1, s))
        assert cost.per_slot.sum() == pytest.approx(cost.total)
        assert cost.total == pytest.approx(
            cost.allocation_total + cost.reconfiguration_total
        )
