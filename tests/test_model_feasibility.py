"""Tests for feasibility checking (instances and trajectories)."""

import numpy as np
import pytest

from repro.model import (
    Cloud,
    CloudNetwork,
    Instance,
    SLAEdge,
    Trajectory,
    check_instance_feasible,
    check_trajectory,
    necessary_conditions,
)

from conftest import make_instance, make_network


class TestNecessaryConditions:
    def test_feasible_instance_passes(self, small_instance):
        assert necessary_conditions(small_instance).ok

    def test_link_capacity_violation_detected(self, small_network):
        T = 2
        # Each tier-1 cloud has 2 edges of capacity 7 => 14 max.
        lam = np.full((T, small_network.n_tier1), 15.0)
        inst = Instance(
            small_network,
            lam,
            np.ones((T, small_network.n_tier2)),
            np.ones((T, small_network.n_edges)),
        )
        rep = necessary_conditions(inst)
        assert not rep.ok
        assert "link_capacity_sum" in rep.violations

    def test_aggregate_tier2_violation_detected(self, small_network):
        T = 1
        # Total tier-2 capacity = 4 * 10 = 40; total workload 6 * 7 = 42.
        lam = np.full((T, small_network.n_tier1), 7.0)
        inst = Instance(
            small_network,
            lam,
            np.ones((T, small_network.n_tier2)),
            np.ones((T, small_network.n_edges)),
        )
        rep = necessary_conditions(inst)
        assert not rep.ok
        assert "tier2_capacity_sum" in rep.violations


class TestExactFeasibility:
    def test_feasible_instance(self, small_instance):
        assert check_instance_feasible(small_instance).ok

    def test_hall_violation_caught(self):
        """Aggregate capacity suffices but SLA structure makes it infeasible."""
        tier2 = [Cloud("big", 100.0), Cloud("small", 1.0)]
        tier1 = [Cloud("j0", np.inf), Cloud("j1", np.inf)]
        # j0 and j1 can only use the small cloud.
        edges = [SLAEdge(1, 0, 50.0), SLAEdge(1, 1, 50.0)]
        net = CloudNetwork(tier2, tier1, edges)
        inst = Instance(
            net, np.full((1, 2), 2.0), np.ones((1, 2)), np.ones((1, 2))
        )
        assert necessary_conditions(inst).ok  # aggregate check passes
        assert not check_instance_feasible(inst).ok  # exact check fails

    def test_zero_workload_trivially_feasible(self, small_network):
        inst = Instance(
            small_network,
            np.zeros((2, small_network.n_tier1)),
            np.ones((2, small_network.n_tier2)),
            np.ones((2, small_network.n_edges)),
        )
        assert check_instance_feasible(inst).ok


class TestTrajectoryCheck:
    def test_zero_trajectory_fails_coverage(self, small_instance):
        E = small_instance.network.n_edges
        rep = check_trajectory(
            small_instance, Trajectory.zeros(small_instance.horizon, E)
        )
        assert not rep.ok
        assert "coverage" in rep.violations

    def test_valid_trajectory_passes(self, small_instance):
        net = small_instance.network
        T = small_instance.horizon
        # Spread each cloud's demand over its edges with headroom.
        counts = net.aggregate_tier1(np.ones(net.n_edges))
        s = small_instance.workload[:, net.edge_j] / counts[net.edge_j]
        traj = Trajectory(s, s, s)
        rep = check_trajectory(small_instance, traj)
        assert rep.ok, rep.describe()

    def test_capacity_violation_detected(self, small_instance):
        net = small_instance.network
        T = small_instance.horizon
        big = np.full((T, net.n_edges), 100.0)
        rep = check_trajectory(small_instance, Trajectory(big, big, big))
        assert not rep.ok
        assert "tier2_capacity" in rep.violations
        assert "link_capacity" in rep.violations

    def test_x_below_s_detected(self, small_instance):
        net = small_instance.network
        T = small_instance.horizon
        s = np.full((T, net.n_edges), 2.0)
        x = np.full((T, net.n_edges), 1.0)
        y = np.full((T, net.n_edges), 2.0)
        rep = check_trajectory(small_instance, Trajectory(x, y, s))
        assert "x_ge_s" in rep.violations

    def test_describe_mentions_violation(self, small_instance):
        E = small_instance.network.n_edges
        rep = check_trajectory(
            small_instance, Trajectory.zeros(small_instance.horizon, E)
        )
        assert "coverage" in rep.describe()
