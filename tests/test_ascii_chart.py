"""Tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.evaluation.ascii_chart import line_chart, sparkline


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        s = sparkline(np.arange(8.0))
        assert len(s) == 8
        assert s[0] == "▁" and s[-1] == "█"
        assert list(s) == sorted(s)

    def test_constant_series_flat(self):
        s = sparkline(np.full(5, 3.0))
        assert len(set(s)) == 1

    def test_downsampling(self):
        s = sparkline(np.arange(100.0), width=10)
        assert len(s) == 10

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart({"a": np.arange(20.0)}, width=40, height=8)
        lines = chart.splitlines()
        assert len(lines) == 8 + 2  # canvas + axis + legend
        assert all(len(l) >= 40 for l in lines[:8])

    def test_legend_contains_names(self):
        chart = line_chart({"up": np.arange(5.0), "down": np.arange(5.0)[::-1]})
        assert "up" in chart and "down" in chart

    def test_distinct_glyphs_per_series(self):
        chart = line_chart({"a": np.zeros(5), "b": np.ones(5)})
        assert "*" in chart and "o" in chart

    def test_axis_ticks_show_range(self):
        chart = line_chart({"a": np.array([2.0, 10.0])})
        assert "10" in chart and "2" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": np.arange(3.0)}, width=4)
        with pytest.raises(ValueError):
            line_chart({"a": np.array([])})


class TestCLIPlot:
    def test_run_fig4_with_plot(self, capsys):
        from repro.cli import main

        assert main(["run", "fig4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out
        assert "+----" in out  # the chart axis
