"""Tests for the topology substrate (geo, capacity, builder)."""

import numpy as np
import pytest

from repro.model import check_instance_feasible, necessary_conditions
from repro.topology import (
    ATT_SITES,
    STATE_CAPITALS,
    PaperTopologyBuilder,
    build_paper_instance,
    haversine_matrix,
    k_nearest,
    provision_capacities,
)
from repro.workloads import WikipediaLikeWorkload


class TestSites:
    def test_counts_match_paper(self):
        assert len(ATT_SITES) == 18
        assert len(STATE_CAPITALS) == 48

    def test_unique_names(self):
        caps = {(s.name, s.state) for s in STATE_CAPITALS}
        assert len(caps) == 48

    def test_continental_coordinates(self):
        for s in ATT_SITES + STATE_CAPITALS:
            assert 24 < s.lat < 50
            assert -125 < s.lon < -66


class TestGeo:
    def test_haversine_zero_on_diagonal(self):
        lats = np.array([40.0, 30.0])
        lons = np.array([-100.0, -90.0])
        d = haversine_matrix(lats, lons, lats, lons)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    def test_haversine_known_distance(self):
        # NYC to LA: ~3936 km.
        d = haversine_matrix(
            np.array([40.71]), np.array([-74.01]),
            np.array([34.05]), np.array([-118.24]),
        )
        assert d[0, 0] == pytest.approx(3936, rel=0.02)

    def test_haversine_symmetry(self):
        rng = np.random.default_rng(0)
        lats = rng.uniform(25, 49, 5)
        lons = rng.uniform(-120, -70, 5)
        d = haversine_matrix(lats, lons, lats, lons)
        np.testing.assert_allclose(d, d.T, atol=1e-9)

    def test_k_nearest_ordering(self):
        d = np.array([[3.0, 1.0, 2.0]])
        np.testing.assert_array_equal(k_nearest(d, 2)[0], [1, 2])

    def test_k_nearest_validation(self):
        d = np.ones((2, 3))
        with pytest.raises(ValueError):
            k_nearest(d, 0)
        with pytest.raises(ValueError):
            k_nearest(d, 4)

    def test_k_nearest_breaks_ties_by_column_index(self):
        """Equidistant columns resolve to the smallest index (stable
        argsort) — generated topologies and golden scenario
        fingerprints depend on this exact rule."""
        d = np.array([[2.0, 1.0, 1.0, 2.0]])
        np.testing.assert_array_equal(k_nearest(d, 2)[0], [1, 2])
        np.testing.assert_array_equal(k_nearest(d, 4)[0], [1, 2, 0, 3])
        # All-equal rows enumerate columns in index order.
        flat = np.zeros((3, 5))
        np.testing.assert_array_equal(
            k_nearest(flat, 5), np.tile(np.arange(5), (3, 1))
        )


class TestCapacityProvisioning:
    def test_k1_rule(self):
        peaks = np.array([4.0, 2.0])
        assignment = np.array([[0], [0]])
        caps = provision_capacities(peaks, assignment, n_tier2=2)
        assert caps.tier2[0] == pytest.approx(1.25 * 6.0)
        # Unselected cloud gets the minimal floor.
        assert 0 < caps.tier2[1] < 1.0

    def test_k2_even_split(self):
        peaks = np.array([4.0])
        assignment = np.array([[0, 1]])
        caps = provision_capacities(peaks, assignment, n_tier2=2)
        np.testing.assert_allclose(caps.tier2, 1.25 * 2.0)

    def test_edge_capacity_equals_incident_cloud(self):
        peaks = np.array([4.0, 3.0])
        assignment = np.array([[0, 1], [1, 0]])
        caps = provision_capacities(peaks, assignment, n_tier2=2)
        np.testing.assert_allclose(
            caps.edges, caps.tier2[assignment.ravel()]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            provision_capacities(np.array([1.0]), np.array([[0]]), 1, headroom=0.9)
        with pytest.raises(ValueError):
            provision_capacities(np.array([-1.0]), np.array([[0]]), 1)


class TestBuilder:
    def test_instances_are_feasible(self):
        trace = WikipediaLikeWorkload(horizon=30).generate()
        for k in (1, 2, 3):
            inst = build_paper_instance(trace, k=k, n_tier2=5, n_tier1=8)
            assert necessary_conditions(inst).ok
            assert check_instance_feasible(inst).ok

    def test_peak_consumes_80_percent(self):
        trace = WikipediaLikeWorkload(horizon=30).generate()
        inst = build_paper_instance(trace, k=1, n_tier2=5, n_tier1=8)
        net = inst.network
        # At the global peak slot, selected clouds run at 80% capacity.
        used = np.zeros(net.n_tier2)
        peaks = inst.workload.max(axis=0)
        np.add.at(used, net.edge_i, peaks[net.edge_j])
        sel = used > 0
        np.testing.assert_allclose(
            used[sel] / net.tier2_capacity[sel], 0.8, rtol=1e-6
        )

    def test_recon_weight_scales_prices(self):
        trace = WikipediaLikeWorkload(horizon=20).generate()
        lo = build_paper_instance(trace, recon_weight=10.0, n_tier2=4, n_tier1=6)
        hi = build_paper_instance(trace, recon_weight=1000.0, n_tier2=4, n_tier1=6)
        np.testing.assert_allclose(
            hi.network.tier2_recon_price, 100.0 * lo.network.tier2_recon_price
        )

    def test_sla_edges_are_k_nearest(self):
        trace = WikipediaLikeWorkload(horizon=10).generate()
        builder = PaperTopologyBuilder(k=2, n_tier2=6, n_tier1=5)
        inst = builder.build(trace)
        assert inst.network.n_edges == 5 * 2
        for j in range(5):
            assert len(inst.network.edges_of_tier1(j)) == 2

    def test_subset_validation(self):
        trace = WikipediaLikeWorkload(horizon=5).generate()
        with pytest.raises(ValueError):
            PaperTopologyBuilder(n_tier2=99).build(trace)
        with pytest.raises(ValueError):
            PaperTopologyBuilder(n_tier1=0).build(trace)

    def test_per_cloud_workload_matrix_accepted(self):
        T, J = 10, 6
        rng = np.random.default_rng(0)
        workload = rng.random((T, J)) + 0.1
        builder = PaperTopologyBuilder(k=1, n_tier2=4, n_tier1=J)
        inst = builder.build(workload)
        np.testing.assert_array_equal(inst.workload, workload)

    def test_deterministic_prices(self):
        trace = WikipediaLikeWorkload(horizon=12).generate()
        a = build_paper_instance(trace, n_tier2=4, n_tier1=6, seed=11)
        b = build_paper_instance(trace, n_tier2=4, n_tier1=6, seed=11)
        np.testing.assert_array_equal(a.tier2_price, b.tier2_price)
