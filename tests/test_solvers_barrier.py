"""Targeted tests for barrier-solver internals."""

import numpy as np
import pytest

import repro.solvers.barrier as barrier_mod
from repro.solvers import (
    ConvexSolverError,
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
)
from repro.solvers.barrier import _Workspace, barrier_solve
from repro.solvers.convex import EntropicTerm


def covering_program(n=5):
    obj = SeparableObjective(
        n,
        np.linspace(1.0, 2.0, n),
        [EntropicTerm(np.arange(n), 1.0, 0.1, np.zeros(n))],
    )
    A = -np.ones((1, n))
    b = np.array([-1.0])
    return SmoothConvexProgram(obj, A, b, np.zeros(n), np.full(n, 2.0))


class TestWorkspace:
    def test_dense_selected_for_small_problems(self):
        ws = _Workspace(covering_program())
        assert ws.dense
        assert isinstance(ws.A, np.ndarray)

    def test_sparse_path_matches_dense(self, monkeypatch):
        """Force the sparse code path and compare optima."""
        prog = covering_program()
        v_dense = barrier_solve(prog)
        monkeypatch.setattr(barrier_mod, "_DENSE_NNZ_THRESHOLD", 0)
        v_sparse = barrier_solve(prog)
        assert prog.objective.value(v_sparse) == pytest.approx(
            prog.objective.value(v_dense), rel=1e-6
        )

    def test_phi_infinite_outside_interior(self):
        prog = covering_program()
        ws = _Workspace(prog)
        outside = np.full(prog.objective.n, -1.0)
        assert ws.phi(outside, 1.0) == np.inf

    def test_max_step_keeps_interior(self):
        prog = covering_program()
        ws = _Workspace(prog)
        v = np.full(prog.objective.n, 0.5)
        dv = np.full(prog.objective.n, 10.0)  # toward the upper bounds
        step = ws.max_step(v, dv)
        assert np.isfinite(ws.phi(v + step * dv, 1.0))


class TestBarrierSolve:
    def test_unconstrained_program_rejected(self):
        obj = SeparableObjective(2, np.ones(2))
        prog = SmoothConvexProgram(
            obj, None, None, np.full(2, -np.inf), np.full(2, np.inf)
        )
        with pytest.raises(ConvexSolverError, match="at least one constraint"):
            barrier_solve(prog)

    def test_noninterior_warm_start_falls_back_to_phase1(self):
        prog = covering_program()
        bad_v0 = np.zeros(prog.objective.n)  # on the lower bounds
        v = barrier_solve(prog, v0=bad_v0)
        assert prog.residual(v) <= 1e-8

    def test_box_only_program(self):
        """No general constraints: pure box-constrained minimization."""
        n = 3
        obj = SeparableObjective(
            n,
            np.array([1.0, -1.0, 0.5]),
            [EntropicTerm(np.arange(n), 2.0, 0.2, np.full(n, 0.5))],
        )
        prog = SmoothConvexProgram(obj, None, None, np.zeros(n), np.ones(n))
        v = barrier_solve(prog)
        vt = prog._solve_trust_constr(None, SolverOptions())
        assert obj.value(v) == pytest.approx(obj.value(vt), rel=1e-5, abs=1e-7)


class TestFallback:
    def test_solve_falls_back_when_barrier_fails(self, monkeypatch):
        """A barrier failure must transparently use trust-constr."""
        prog = covering_program()

        def boom(*args, **kwargs):
            raise ConvexSolverError("injected failure")

        monkeypatch.setattr(barrier_mod, "barrier_solve", boom)
        v = prog.solve(options=SolverOptions(backend="barrier", fallback=True))
        assert prog.residual(v) <= 1e-6

    def test_no_fallback_propagates(self, monkeypatch):
        prog = covering_program()

        def boom(*args, **kwargs):
            raise ConvexSolverError("injected failure")

        monkeypatch.setattr(barrier_mod, "barrier_solve", boom)
        with pytest.raises(ConvexSolverError, match="injected"):
            prog.solve(options=SolverOptions(backend="barrier", fallback=False))
