"""Fig 10: predictive control vs prediction error rate (short window).

Expected shape (paper): RFHC/RRHC grow only mildly with the error rate
while FHC/RHC degrade markedly; at short windows and large errors the
regularized predictive controllers can even fall behind the
prediction-free online algorithm.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show


def test_fig10(benchmark, scale):
    errors = (0.0, 0.05, 0.10, 0.15)
    result = benchmark.pedantic(
        experiments.fig10_error_sweep,
        args=(scale,),
        kwargs={"errors": errors, "window": 2},
        rounds=1,
        iterations=1,
    )
    show(result)
    fhc = np.array(result.column("fhc"))
    rfhc = np.array(result.column("rfhc"))
    rrhc = np.array(result.column("rrhc"))
    rhc = np.array(result.column("rhc"))
    online = np.array(result.column("online_no_pred"))
    # At every error rate the regularized controllers win.
    assert np.all(rfhc <= fhc + 1e-6)
    assert np.all(rrhc <= rhc + 1e-6)
    # Noise hurts the standard controllers.
    assert fhc[-1] > fhc[0]
    # The paper's Fig-10 observation: at a short window with noisy
    # forecasts, RFHC/RRHC can end up worse than the prediction-free
    # online algorithm (with exact forecasts they are never worse).
    assert rfhc[0] <= online[0] * (1 + 1e-6)
    assert rfhc[-1] >= rfhc[0]
