"""Fig 8: predictive control vs prediction window (accurate forecasts).

Expected shape (paper): with exact predictions RFHC and RRHC are never
worse than the prediction-free online algorithm (Theorem 4) and
improve with the window; FHC and RHC can stay above the online
algorithm whenever workload ramp-downs exceed the window.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show


def test_fig8(benchmark, scale):
    windows = (2, 4, 6, 8, 10) if scale.full else (2, 4, 6)
    result = benchmark.pedantic(
        experiments.fig8_prediction_window,
        args=(scale,),
        kwargs={"windows": windows},
        rounds=1,
        iterations=1,
    )
    show(result)
    online = result.rows[0][5]
    for row in result.rows:
        w, fhc, rhc, rfhc, rrhc, _ = row
        # Theorem 4: regularized controllers inherit the online bound.
        assert rfhc <= online * (1 + 1e-6), f"w={w}"
        assert rrhc <= online * (1 + 1e-6), f"w={w}"
        # And they dominate their standard counterparts.
        assert rfhc <= fhc + 1e-6, f"w={w}"
        assert rrhc <= rhc + 1e-6, f"w={w}"
