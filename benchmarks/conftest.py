"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure via the experiment
registry, prints the rows (run pytest with ``-s`` to see them inline;
they are also summarized in EXPERIMENTS.md), and asserts the *shape*
the paper reports — who wins, roughly by how much, where crossovers
fall.  Absolute values are not compared: the inputs are synthetic and
the default scale is reduced (set ``REPRO_FULL_SCALE=1`` for paper
scale).
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


def show(result) -> None:
    print()
    print(result.render())
