"""Fig 9: predictive control vs window under 15% prediction error.

Expected shape (paper): all controllers degrade relative to Fig 8, but
RFHC/RRHC remain much better than FHC/RHC.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show


def test_fig9(benchmark, scale):
    windows = (2, 4, 6, 8, 10) if scale.full else (2, 4, 6)
    result = benchmark.pedantic(
        experiments.fig9_noisy_prediction,
        args=(scale,),
        kwargs={"windows": windows, "error": 0.15},
        rounds=1,
        iterations=1,
    )
    show(result)
    fhc = np.array(result.column("fhc"))
    rhc = np.array(result.column("rhc"))
    rfhc = np.array(result.column("rfhc"))
    rrhc = np.array(result.column("rrhc"))
    # Regularized controllers keep their advantage under noise.
    assert rfhc.mean() < fhc.mean()
    assert rrhc.mean() < rhc.mean()
    assert np.all(rfhc >= 1.0 - 1e-9)
