"""Ablation: AFHC (prior state of the art) vs the paper's RFHC/RRHC.

The paper's related work singles out AFHC (Lin et al.) as the existing
prediction-based method applicable to multiple clouds.  This bench
compares it with RFHC/RRHC under accurate and noisy predictions.
Expected shape: AFHC improves on FHC but, lacking the regularized
anchor, does not inherit a prediction-free guarantee — under noise or
short windows it trails RFHC/RRHC.
"""

import pytest

from repro.core import SubproblemConfig
from repro.evaluation import ExperimentScale, format_table
from repro.evaluation.experiments import make_instance
from repro.model import evaluate_cost
from repro.offline import solve_offline
from repro.prediction import (
    AveragingFixedHorizonControl,
    FixedHorizonControl,
    GaussianNoisePredictor,
    RegularizedFixedHorizonControl,
)

WINDOW = 3
ERROR = 0.15


def run_comparison():
    scale = ExperimentScale.from_env()
    inst = make_instance(scale, "wikipedia", k=1, recon_weight=1e3)
    if not scale.full:
        inst = inst.slice(0, min(72, inst.horizon))
    off = solve_offline(inst).objective

    def cost(ctrl):
        return evaluate_cost(inst, ctrl.run(inst)).total / off

    rows = []
    for err in (0.0, ERROR):
        pred = lambda: GaussianNoisePredictor(err, seed=5) if err else None
        rows.append(
            (
                f"{err:.0%}",
                cost(FixedHorizonControl(WINDOW, predictor=pred())),
                cost(AveragingFixedHorizonControl(WINDOW, predictor=pred())),
                cost(
                    RegularizedFixedHorizonControl(
                        WINDOW, SubproblemConfig(epsilon=1e-3), predictor=pred()
                    )
                ),
            )
        )
    return rows


def test_afhc_vs_rfhc(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("== ablation/afhc ==")
    print(format_table(["error", "fhc", "afhc", "rfhc"], rows))
    for err, fhc, afhc, rfhc in rows:
        # Averaging improves on plain FHC...
        assert afhc <= fhc + 1e-6, err
        # ...but the regularized controller stays ahead.
        assert rfhc <= afhc + 1e-6, err
