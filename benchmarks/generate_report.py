#!/usr/bin/env python
"""Regenerate every paper table/figure and dump the rows to stdout.

Used to produce the measured numbers recorded in EXPERIMENTS.md:

    python benchmarks/generate_report.py > report.txt
    python benchmarks/generate_report.py --json results/   # also archive JSON
    REPRO_FULL_SCALE=1 python benchmarks/generate_report.py   # paper scale
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.evaluation import ExperimentScale, experiments, save_result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also archive each result as JSON under DIR",
    )
    args = parser.parse_args()
    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)
    scale = ExperimentScale.from_env()
    print(f"scale: full={scale.full} tier2={scale.n_tier2} tier1={scale.n_tier1} "
          f"T_wiki={scale.horizon_wiki} T_wc={scale.horizon_worldcup}")

    jobs = [
        ("table1", lambda: experiments.table1_electricity()),
        ("table2", lambda: experiments.table2_bandwidth()),
        ("fig4", lambda: experiments.fig4_workloads(scale)),
        ("fig5/wikipedia", lambda: experiments.fig5_cost_no_prediction(scale, "wikipedia")),
        ("fig5/worldcup", lambda: experiments.fig5_cost_no_prediction(scale, "worldcup")),
        ("fig6/wikipedia", lambda: experiments.fig6_ratio_vs_epsilon(scale, "wikipedia")),
        ("fig6/worldcup", lambda: experiments.fig6_ratio_vs_epsilon(scale, "worldcup")),
        ("fig7", lambda: experiments.fig7_sla(scale, lcp_lookback=12)),
        ("fig8", lambda: experiments.fig8_prediction_window(
            scale, windows=(2, 4, 6, 8, 10) if scale.full else (2, 4, 6))),
        ("fig9", lambda: experiments.fig9_noisy_prediction(
            scale, windows=(2, 4, 6, 8, 10) if scale.full else (2, 4, 6))),
        ("fig10", lambda: experiments.fig10_error_sweep(scale)),
        ("thm2-3", lambda: experiments.theorem23_adversarial()),
    ]
    for name, job in jobs:
        start = time.perf_counter()
        result = job()
        elapsed = time.perf_counter() - start
        print()
        print(result.render())
        print(f"[{name}: {elapsed:.1f}s]")
        if json_dir:
            save_result(result, json_dir / (name.replace("/", "_") + ".json"))


if __name__ == "__main__":
    main()
