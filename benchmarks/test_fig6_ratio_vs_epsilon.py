"""Fig 6: actual competitive ratio vs the parameter epsilon.

Expected shape (paper): the realized ratio stays below ~3 for every
epsilon and reconfiguration price, is non-monotone in epsilon (there
is a valley: the best epsilon is interior), and the Theorem-1
worst-case bound decreases monotonically in epsilon while dominating
the realized ratio everywhere.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show

EPSILONS = (1e-3, 1e-2, 1e-1, 1.0, 10.0, 1e2, 1e3)


@pytest.mark.parametrize("workload", ["wikipedia", "worldcup"])
def test_fig6(benchmark, scale, workload):
    recon_weights = (1e2, 1e3, 1e4) if scale.full else (1e2, 1e3)
    result = benchmark.pedantic(
        experiments.fig6_ratio_vs_epsilon,
        args=(scale, workload),
        kwargs={"epsilons": EPSILONS, "recon_weights": recon_weights},
        rounds=1,
        iterations=1,
    )
    show(result)
    rows = result.rows
    for b in recon_weights:
        sub = [r for r in rows if r[1] == b]
        actual = np.array([r[3] for r in sub])
        bound = np.array([r[4] for r in sub])
        # Realized ratio within the paper's empirical envelope and
        # always below the worst-case guarantee.
        assert np.all(actual >= 1.0 - 1e-9)
        assert np.all(actual <= 3.0)
        assert np.all(actual <= bound + 1e-9)
        # Theorem-1 bound decreases monotonically in epsilon.
        assert np.all(np.diff(bound) < 0)
