"""Table I: electricity price statistics per RTO market."""

import pytest

from repro.evaluation import experiments

from conftest import show


def test_table1_electricity(benchmark):
    result = benchmark.pedantic(
        experiments.table1_electricity, kwargs={"horizon": 3000}, rounds=1, iterations=1
    )
    show(result)
    # Synthesized sample moments track the table (truncation at zero
    # biases the highest-variance markets slightly upward).
    for market, mean_p, sd_p, mean_s, sd_s in result.rows:
        assert mean_s == pytest.approx(mean_p, rel=0.10), market
        assert sd_s == pytest.approx(sd_p, rel=0.15), market
