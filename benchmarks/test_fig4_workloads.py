"""Fig 4: the two workload regimes (regular vs bursty)."""

from repro.evaluation import experiments

from conftest import show


def test_fig4_workloads(benchmark, scale):
    result = benchmark.pedantic(
        experiments.fig4_workloads, args=(scale,), rounds=1, iterations=1
    )
    show(result)
    rows = {r[0]: r for r in result.rows}
    wiki, wc = rows["wikipedia"], rows["worldcup"]
    # Fig 4a: regular dynamics — modest peak-to-mean.
    assert wiki[3] < 3.0
    # Fig 4b: large spikes — burstiness far above the wikipedia regime.
    assert wc[3] > 2.0 * wiki[3]
    assert wc[4] > wiki[4]
