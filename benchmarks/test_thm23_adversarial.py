"""Theorems 2-3: myopic control blows up on V-shaped workloads.

Expected shape: the greedy/FHC/RHC cost ratios over the offline
optimum grow with the reconfiguration price (unbounded in the limit on
repeated valleys), while the regularized online algorithm's ratio
stays bounded and eventually *decreases* (it learns to hold the peak).
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show


def test_theorems_2_and_3(benchmark):
    result = benchmark.pedantic(
        experiments.theorem23_adversarial,
        kwargs={"recon_prices": (1.0, 10.0, 1e2, 1e3), "window": 3, "n_valleys": 4},
        rounds=1,
        iterations=1,
    )
    show(result)
    greedy = np.array(result.column("greedy/opt"))
    fhc = np.array(result.column("fhc/opt"))
    rhc = np.array(result.column("rhc/opt"))
    online = np.array(result.column("online/opt"))

    # Myopic ratios grow monotonically with the reconfiguration price.
    assert np.all(np.diff(greedy) > 0)
    assert np.all(np.diff(fhc) > 0)
    assert np.all(np.diff(rhc) > 0)
    # Repeated valleys: the divergence is substantial.
    assert greedy[-1] > 3.0
    # The regularized online algorithm stays bounded and wins clearly.
    assert online[-1] < 2.0
    assert online[-1] < greedy[-1] / 2.0
