"""Fig 7: effect of the SLA size k (number of usable tier-2 clouds).

Expected shape (paper): as k grows there is more room to optimize and
the online algorithm's cost approaches the offline optimum; LCP-M does
not track the offline optimum as well as the regularized online
algorithm.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show


def test_fig7(benchmark, scale):
    ks = (1, 2, 3, 4)
    lookback = 24 if scale.full else 12
    result = benchmark.pedantic(
        experiments.fig7_sla,
        args=(scale,),
        kwargs={"ks": ks, "lcp_lookback": lookback},
        rounds=1,
        iterations=1,
    )
    show(result)
    online = np.array(result.column("online/offline"))
    lcpm = np.array(result.column("lcpm/offline"))
    one_shot = np.array(result.column("one_shot/offline"))

    assert np.all(online >= 1.0 - 1e-9)
    # Online approaches the offline optimum as the SLA widens.
    assert online[-1] <= online[0] + 1e-6
    # LCP-M trails the regularized online algorithm on average.
    assert lcpm.mean() >= online.mean()
    # And the online algorithm beats greedy one-shot on average.
    assert online.mean() <= one_shot.mean() + 1e-9
