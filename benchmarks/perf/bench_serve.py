#!/usr/bin/env python
"""Sharded-serve throughput benchmarks -> ``BENCH_serve.json``.

Measures end-to-end serve throughput (slots/sec) and per-slot latency
(p50/p99) of the sharded serve runtime (:mod:`repro.shard`) against the
single-process :class:`~repro.serve.runtime.ServeLoop` on a widened
synthetic topology, at ``--shards 1``, ``2`` and ``4``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py            # full suite
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --out f.json --repeats 5

Where the speedup comes from
----------------------------

The workload is a ``k=1`` star forest — ``n_tier2`` independent SLA
components of ``fanout`` tier-1 clouds each — solved with the
``sequential`` reference backend, whose per-slot cost is one coupled
barrier solve over *all* edges.  That solve's dense Newton steps are
strongly superlinear in program size, so even on a single CPU a shard
solving a quarter of the network does far less than a quarter of the
work: the sharded speedup is the decomposition win (smaller coupled
Newton systems), not parallelism, and it compounds with any real
multi-core headroom the host adds.  The ``batched`` backend already
exploits the same component structure in-process (see
docs/SOLVER_BACKENDS.md), which is why the bench pins the sequential
reference: sharding is the multi-process route to the identical
decomposition.

The suite runs two scenarios: the controlled ``sharded-serve`` star
forest above, and ``geo-diurnal-full`` — the scenario corpus's
continent-scale ``geo-diurnal`` topology at full size (24 regions x
240 edge clouds, docs/SCENARIOS.md) sliced to a short horizon, with
its golden ``scenario_fingerprint`` stamped into the record so the
numbers name their exact generated data.

The JSON is self-describing (``schema`` key).  Each shard count
records median wall time over ``--repeats`` runs, slots/sec, and
p50/p99 per-slot latency (wall-clock between merged-slot completions,
pooled across repeats); each scenario records ``speedup_2v1`` and
``speedup_4v1`` — CI's perf-smoke job asserts ``speedup_4v1 >= 1.8``
on the star scenario and pins the geo fingerprint to the golden file.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[2]


def star_instance(n_tier2: int, fanout: int, horizon: int, seed: int = 7):
    """A widened synthetic ``k=1`` star-forest instance.

    ``n_tier2`` tier-2 clouds each serve ``fanout`` dedicated tier-1
    clouds — ``n_tier2`` SLA components, so the topology partitions
    cleanly across 1/2/4 shards.  Capacities scale with the fan-out so
    every slot stays strictly feasible; demand is the suite's diurnal
    shape with per-cloud jitter.
    """
    from repro.model import Cloud, CloudNetwork, Instance, SLAEdge

    capacity = 1.9 * fanout * 1.25  # peak per-cloud demand x fanout, 25% headroom
    tier2 = [Cloud(f"i{i}", capacity, 20.0) for i in range(n_tier2)]
    tier1 = [Cloud(f"j{j}", np.inf) for j in range(n_tier2 * fanout)]
    edges = [SLAEdge(j // fanout, j, 2.4, 12.0) for j in range(n_tier2 * fanout)]
    network = CloudNetwork(tier2, tier1, edges)

    rng = np.random.default_rng(seed)
    T, J = horizon, network.n_tier1
    base = 1.0 + 0.8 * np.sin(np.arange(T) * 2 * np.pi / 12.0)
    workload = np.clip(base[:, None] * (1.0 + 0.15 * rng.random((T, J))), 0.01, None)
    tier2_price = 1.0 + 0.5 * rng.random((T, network.n_tier2))
    link_price = 0.4 + 0.1 * rng.random((T, network.n_edges))
    return Instance(network, workload, tier2_price, link_price)


def geo_instance(horizon: int):
    """The scenario corpus's continent-scale topology, short horizon.

    ``geo-diurnal`` at full size: 24 regions x 10 edge clouds (240
    tier-1, one ``k=1`` SLA component per region) with time-zone-
    shifted diurnal demand.  Returns ``(instance, fingerprint)`` — the
    fingerprint ties the benchmark to the golden scenario snapshot.
    """
    from repro.scenarios import get_scenario

    built = get_scenario("geo-diurnal").build("full")
    return built.instance.slice(0, horizon), built.fingerprint()


def _controller(epsilon: float, backend: str):
    from repro.core.online import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig

    return RegularizedOnline(SubproblemConfig(epsilon=epsilon, backend=backend))


def _one_run(
    instance, shards: int, epsilon: float, backend: str
) -> "tuple[float, list[float]]":
    """Serve the instance once; return (total wall, per-slot latencies)."""
    from repro.serve.runtime import ServeConfig, ServeLoop
    from repro.serve.sources import InstanceSource
    from repro.shard.coordinator import ShardedServeConfig, ShardedServeLoop

    latencies: "list[float]" = []
    last = time.perf_counter()

    def on_slot(loop, outcome) -> None:
        nonlocal last
        now = time.perf_counter()
        latencies.append(now - last)
        last = now

    start = time.perf_counter()
    if shards == 1:
        loop = ServeLoop(
            _controller(epsilon, backend),
            InstanceSource(instance),
            ServeConfig(),
            on_slot=on_slot,
        )
    else:
        loop = ShardedServeLoop(
            _controller(epsilon, backend),
            InstanceSource(instance),
            ShardedServeConfig(n_shards=shards),
            on_slot=on_slot,
        )
    report = loop.run()
    wall = time.perf_counter() - start
    if report.error is not None:
        raise RuntimeError(f"serve run failed at {shards} shard(s): {report.error}")
    if len(latencies) != instance.horizon:
        raise RuntimeError(
            f"expected {instance.horizon} slots, observed {len(latencies)}"
        )
    return wall, latencies


def bench_shards(
    instance,
    name: str,
    shard_counts: "tuple[int, ...]",
    repeats: int,
    epsilon: float,
    backend: str = "sequential",
    extra: "dict | None" = None,
) -> dict:
    """Throughput/latency of the serve runtime at each shard count."""
    horizon = instance.horizon
    net = instance.network
    by_shards: "dict[str, dict]" = {}
    for shards in shard_counts:
        walls, pooled = [], []
        for _ in range(repeats):
            wall, latencies = _one_run(instance, shards, epsilon, backend)
            walls.append(wall)
            pooled.extend(latencies)
        wall = statistics.median(walls)
        lat = np.sort(np.asarray(pooled))
        by_shards[str(shards)] = {
            "wall_time_s": round(wall, 4),
            "wall_time_runs_s": [round(w, 4) for w in walls],
            "slots_per_sec": round(horizon / wall, 3),
            "p50_ms": round(float(np.quantile(lat, 0.50)) * 1e3, 2),
            "p99_ms": round(float(np.quantile(lat, 0.99)) * 1e3, 2),
        }
    record = {
        "name": name,
        "kind": "serve",
        "algorithm": "RegularizedOnline",
        "backend": backend,
        "partition": "round-robin",
        "scale": {
            "n_tier2": net.n_tier2,
            "n_tier1": net.n_tier1,
            "n_edges": net.n_edges,
            "k": net.n_edges // net.n_tier1,
            "horizon": horizon,
        },
        "epsilon": epsilon,
        "repeats": repeats,
        "by_shards": by_shards,
    }
    record.update(extra or {})
    base = by_shards.get("1", {}).get("slots_per_sec")
    for shards in shard_counts:
        if shards == 1 or base is None:
            continue
        record[f"speedup_{shards}v1"] = round(
            by_shards[str(shards)]["slots_per_sec"] / base, 3
        )
    return record


def run(repeats: int, smoke: bool) -> dict:
    repeats = 1 if smoke else repeats
    star = bench_shards(
        star_instance(n_tier2=16, fanout=16, horizon=4 if smoke else 8),
        name="sharded-serve",
        shard_counts=(1, 2, 4),
        repeats=repeats,
        epsilon=1e-2,
    )
    geo_inst, geo_fp = geo_instance(horizon=3 if smoke else 6)
    geo = bench_shards(
        geo_inst,
        name="geo-diurnal-full",
        shard_counts=(1, 2, 4),
        repeats=repeats,
        epsilon=1e-2,
        extra={
            "scenario": "geo-diurnal",
            "scenario_size": "full",
            "scenario_fingerprint": geo_fp,
        },
    )
    return {
        "schema": "repro-bench-serve/v2",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": _cpu_count(),
        },
        "scenarios": [star, geo],
    }


def _cpu_count() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="output path (default: repo-root BENCH_serve.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per shard count; the median is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="shorter-horizon single-repeat run for CI (same topology, "
        "same >=1.8x speedup gate)",
    )
    args = parser.parse_args(argv)

    report = run(args.repeats, args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for sc in report["scenarios"]:
        scale = sc["scale"]
        print(
            f"{sc['name']}: {scale['n_tier2']}x{scale['n_tier1']} k=1, "
            f"{scale['horizon']} slots, backend={sc['backend']}"
        )
        for shards, row in sc["by_shards"].items():
            print(
                f"  shards={shards}: {row['slots_per_sec']:7.2f} slots/s  "
                f"p50 {row['p50_ms']:8.1f} ms  p99 {row['p99_ms']:8.1f} ms  "
                f"(wall {row['wall_time_s']:.2f}s)"
            )
        for key in ("speedup_2v1", "speedup_4v1"):
            if key in sc:
                print(f"  {key.replace('_', ' ')}: {sc[key]:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
