#!/usr/bin/env python
"""Solver performance microbenchmarks -> ``BENCH_solver.json``.

Measures the wall-time effect of the solver performance flags
(:class:`~repro.core.subproblem.SubproblemConfig` ``fused_kernels`` and
``reuse_structure``) on full :class:`~repro.core.online.RegularizedOnline`
trajectories, plus kernel-level call timings of the fused
:class:`~repro.solvers.convex.SeparableObjective` against its per-term
loop reference.  The two configurations are solved in the *same run* on
the *same instance*, and the fused kernels are bitwise identical to the
loop reference (property-tested), so both take exactly the same Newton
path — the speedup is pure per-iteration work, not a different
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_solver.py              # full suite
    PYTHONPATH=src python benchmarks/perf/bench_solver.py --smoke      # CI-sized
    PYTHONPATH=src python benchmarks/perf/bench_solver.py --out f.json --repeats 5

Scenario scales:

* ``small``  — :meth:`ExperimentScale.tiny` (3x5 clouds, 30 slots);
* ``medium`` — the repo's default laptop scale (6x12 clouds, 96 slots,
  ``k=2``), the scale the figure experiments run at.

The ``batched`` scenarios time the ``--backend batched`` solver layer
(component decomposition + closed-form stars + batched block-diagonal
Newton, see docs/SOLVER_BACKENDS.md) against the ``sequential``
reference on the same instance, and record the residual decision gap
alongside the speedup.  ``batched-k2-parity`` pins the k=2 fallback
case, where the two backends are bitwise identical.

The ``cache-cold`` / ``cache-warm`` scenarios measure the persistent
cross-run solver cache (``--cache``, :mod:`repro.cache`): each repeat
runs the same RegularizedOnline trajectory twice against a fresh cache
directory — the first run (cold) populates it, the second (warm)
replays every solve from the store.  Recorded: second-run speedup,
warm-start hit rate (a cache hit is the warmest possible start), and
whether the cached decisions are byte-identical to an uncached run
(they must be: backends are deterministic and hits are exact-input).

The JSON is self-describing (``schema`` key); every trajectory scenario
records median wall time over ``--repeats`` runs, total Newton
iterations, solve count, and warm-start hit rate for the baseline
(flags off) and optimized (flags on, the default) configurations, plus
their speedup ratio.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Trajectory scenarios: flags off vs flags on, same instance, same run
# ----------------------------------------------------------------------
def _config_metrics(times: "list[float]", stats) -> dict:
    """Summarize one configuration's repeated runs."""
    return {
        "wall_time_s": round(statistics.median(times), 4),
        "wall_time_runs_s": [round(t, 4) for t in times],
        "newton_iters": stats.total_newton_iters,
        "solves": stats.total_solves,
        "warm_start_hit_rate": round(stats.warm_hit_rate, 4),
        "steps": stats.n_steps,
    }


def bench_trajectory(
    name: str,
    scale,
    workload: str,
    k: int,
    epsilon: float,
    repeats: int,
) -> dict:
    """Time RegularizedOnline with perf flags off vs on (defaults)."""
    from repro.core.online import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.evaluation.experiments import make_instance
    from repro.evaluation.runner import run_algorithm

    instance = make_instance(scale, workload, k=k)

    def measure(**flags) -> dict:
        times, stats = [], None
        for _ in range(repeats):
            cfg = SubproblemConfig(epsilon=epsilon, **flags)
            result = run_algorithm("bench", RegularizedOnline(cfg), instance)
            times.append(result.runtime)
            stats = result.stats
        return _config_metrics(times, stats)

    baseline = measure(reuse_structure=False, fused_kernels=False)
    optimized = measure()  # the defaults: reuse_structure=True, fused_kernels=True
    return {
        "name": name,
        "kind": "trajectory",
        "algorithm": "RegularizedOnline",
        "workload": workload,
        "scale": {
            "n_tier2": scale.n_tier2,
            "n_tier1": scale.n_tier1,
            "horizon": scale.horizon_wiki
            if workload == "wikipedia"
            else scale.horizon_worldcup,
            "k": k,
        },
        "epsilon": epsilon,
        "repeats": repeats,
        "baseline": baseline,
        "optimized": optimized,
        "speedup": round(baseline["wall_time_s"] / optimized["wall_time_s"], 3),
        "same_newton_path": baseline["newton_iters"] == optimized["newton_iters"],
    }


# ----------------------------------------------------------------------
# Backend scenario: sequential vs batched per-slot solve strategy
# ----------------------------------------------------------------------
def bench_backend(
    name: str,
    scale,
    workload: str,
    k: int,
    epsilon: float,
    repeats: int,
) -> dict:
    """Time RegularizedOnline under the two solver backends.

    Unlike the flags scenarios the two configurations take *different*
    numerical paths (closed-form stars + batched Newton vs the coupled
    barrier), so alongside wall time the scenario records the maximum
    relative decision deviation (tier-2 totals, link allocations, total
    cost) — the equivalence contract from docs/SOLVER_BACKENDS.md.
    """
    from repro.core.online import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.evaluation.experiments import make_instance
    from repro.evaluation.runner import run_algorithm
    from repro.model.costs import evaluate_cost

    instance = make_instance(scale, workload, k=k)
    net = instance.network

    def measure(backend: str) -> "tuple[dict, object]":
        times, stats, result = [], None, None
        for _ in range(repeats):
            cfg = SubproblemConfig(epsilon=epsilon, backend=backend)
            result = run_algorithm("bench", RegularizedOnline(cfg), instance)
            times.append(result.runtime)
            stats = result.stats
        return _config_metrics(times, stats), result.trajectory

    sequential, traj_seq = measure("sequential")
    batched, traj_bat = measure("batched")

    def rel_gap(a, b):
        a, b = np.asarray(a, float), np.asarray(b, float)
        return float(np.max(np.abs(a - b) / (1.0 + np.abs(a))))

    cost_seq = evaluate_cost(instance, traj_seq).total
    cost_bat = evaluate_cost(instance, traj_bat).total
    return {
        "name": name,
        "kind": "backend",
        "algorithm": "RegularizedOnline",
        "workload": workload,
        "scale": {
            "n_tier2": scale.n_tier2,
            "n_tier1": scale.n_tier1,
            "horizon": scale.horizon_wiki
            if workload == "wikipedia"
            else scale.horizon_worldcup,
            "k": k,
        },
        "epsilon": epsilon,
        "repeats": repeats,
        "sequential": sequential,
        "batched": batched,
        "speedup": round(
            sequential["wall_time_s"] / batched["wall_time_s"], 3
        ),
        "decision_gap": {
            "tier2_totals_rel": rel_gap(
                traj_seq.tier2_totals(net), traj_bat.tier2_totals(net)
            ),
            "link_rel": rel_gap(traj_seq.y, traj_bat.y),
            "cost_rel": abs(cost_bat - cost_seq) / (1.0 + abs(cost_seq)),
        },
    }


# ----------------------------------------------------------------------
# Cache scenario: first run populates the store, second run replays it
# ----------------------------------------------------------------------
def bench_cache(
    scale,
    workload: str,
    k: int,
    epsilon: float,
    repeats: int,
) -> "list[dict]":
    """Time RegularizedOnline against a fresh persistent cache.

    Returns two scenario records sharing one measurement: ``cache-cold``
    (first run on an empty store — the uncached path plus store writes)
    and ``cache-warm`` (second run on the populated store — every solve
    replayed, zero Newton iterations).  Decisions of both are compared
    bitwise against an uncached reference run.
    """
    import shutil
    import tempfile

    from repro.cache import runtime as cache_runtime
    from repro.core.online import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.evaluation.experiments import make_instance
    from repro.evaluation.runner import run_algorithm

    instance = make_instance(scale, workload, k=k)

    def one_run():
        cfg = SubproblemConfig(epsilon=epsilon)
        return run_algorithm("bench", RegularizedOnline(cfg), instance)

    ref = one_run()  # uncached reference (decisions + wall time)

    def identical(traj) -> bool:
        return (
            np.array_equal(traj.x, ref.trajectory.x)
            and np.array_equal(traj.y, ref.trajectory.y)
            and np.array_equal(traj.s, ref.trajectory.s)
        )

    cold_times, warm_times = [], []
    cold_stats = warm_stats = None
    all_identical = True
    hits = misses = 0
    for _ in range(repeats):
        root = tempfile.mkdtemp(prefix="bench-cache-")
        try:
            with cache_runtime.use(root) as store:
                cold = one_run()
                before = store.counters.as_dict()
                warm = one_run()
                after = store.counters.as_dict()
                # The warm *run*'s lookup outcomes only (the cold run
                # is all misses by construction).
                hits += after["hit"] - before["hit"]
                misses += after["miss"] - before["miss"]
            cold_times.append(cold.runtime)
            warm_times.append(warm.runtime)
            cold_stats, warm_stats = cold.stats, warm.stats
            all_identical = (
                all_identical and identical(cold.trajectory)
                and identical(warm.trajectory)
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    shared = {
        "kind": "cache",
        "algorithm": "RegularizedOnline",
        "workload": workload,
        "scale": {
            "n_tier2": scale.n_tier2,
            "n_tier1": scale.n_tier1,
            "horizon": scale.horizon_wiki
            if workload == "wikipedia"
            else scale.horizon_worldcup,
            "k": k,
        },
        "epsilon": epsilon,
        "repeats": repeats,
        "decisions_identical_to_uncached": all_identical,
    }
    cold_wall = statistics.median(cold_times)
    warm_wall = statistics.median(warm_times)
    return [
        {
            "name": "cache-cold",
            **shared,
            **_config_metrics(cold_times, cold_stats),
            "uncached_wall_time_s": round(ref.runtime, 4),
            "store_overhead": round(cold_wall / max(ref.runtime, 1e-12), 3),
        },
        {
            "name": "cache-warm",
            **shared,
            **_config_metrics(warm_times, warm_stats),
            "second_run_speedup": round(cold_wall / max(warm_wall, 1e-12), 3),
            "cache_hit_rate": round(hits / max(hits + misses, 1), 4),
        },
    ]


# ----------------------------------------------------------------------
# Kernel scenario: fused vs loop objective evaluations on one program
# ----------------------------------------------------------------------
def bench_kernels(scale, workload: str, k: int, calls: int) -> dict:
    """Per-call timings of the fused objective kernels vs the loop path."""
    from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
    from repro.evaluation.experiments import make_instance
    from repro.model.allocation import Allocation

    instance = make_instance(scale, workload, k=k)
    sub = RegularizedSubproblem(
        instance.network, SubproblemConfig(epsilon=1e-3, reuse_structure=False)
    )
    prog = sub.build(
        instance.workload[0],
        instance.tier2_price[0],
        instance.link_price[0],
        Allocation.zeros(instance.network.n_edges),
    )
    obj = prog.objective
    v = prog._interior_start()

    def per_call(fn) -> float:
        fn(v)  # warm up scratch buffers / allocation paths
        start = time.perf_counter()
        for _ in range(calls):
            fn(v)
        return (time.perf_counter() - start) / calls

    timings = {}
    for kernel in ("value", "grad", "hess_diag"):
        obj.fused = True
        fused_t = per_call(getattr(obj, kernel))
        loop_t = per_call(getattr(obj, f"_{kernel}_loop"))
        timings[kernel] = {
            "fused_us": round(fused_t * 1e6, 2),
            "loop_us": round(loop_t * 1e6, 2),
            "speedup": round(loop_t / fused_t, 2),
        }
    obj.fused = True
    return {
        "name": "kernels",
        "kind": "microbench",
        "n_vars": prog.objective.n,
        "n_entropic_terms": len(obj.entropic),
        "calls": calls,
        "kernels": timings,
    }


# ----------------------------------------------------------------------
def run(repeats: int, smoke: bool) -> dict:
    from repro.evaluation.scale import ExperimentScale

    tiny = ExperimentScale.tiny()
    scenarios = [
        bench_kernels(tiny if smoke else ExperimentScale.from_env(),
                      "wikipedia", k=2, calls=50 if smoke else 500),
        bench_trajectory(
            "small", tiny, "wikipedia", k=1, epsilon=1e-3,
            repeats=1 if smoke else repeats,
        ),
    ]
    scenarios.append(
        bench_backend(
            "batched", tiny if smoke else ExperimentScale.from_env(),
            "wikipedia", k=1, epsilon=1e-2, repeats=1 if smoke else repeats,
        )
    )
    # Persistent-cache scenarios: tiny at smoke, the default scale
    # otherwise (the "repeated default-scale run" acceptance numbers).
    scenarios.extend(
        bench_cache(
            tiny if smoke else ExperimentScale.from_env(),
            "wikipedia", k=2, epsilon=1e-2, repeats=1 if smoke else repeats,
        )
    )
    if not smoke:
        scenarios.append(
            bench_trajectory(
                "medium", ExperimentScale.from_env(), "wikipedia",
                k=2, epsilon=1e-2, repeats=repeats,
            )
        )
        # k=2 parity row: one whole-graph component -> the batched
        # backend falls back to the coupled solve; speedup ~1x and the
        # decision gaps are exactly zero (bitwise fallback).
        scenarios.append(
            bench_backend(
                "batched-k2-parity", ExperimentScale.from_env(),
                "wikipedia", k=2, epsilon=1e-2, repeats=repeats,
            )
        )
    return {
        "schema": "repro-bench-solver/v2",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "scenarios": scenarios,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_solver.json",
        help="output path (default: repo-root BENCH_solver.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per configuration; the median is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-scale single-repeat run for CI (valid JSON, no "
        "speedup threshold)",
    )
    args = parser.parse_args(argv)

    report = run(args.repeats, args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for sc in report["scenarios"]:
        if sc["kind"] == "trajectory":
            print(
                f"{sc['name']:8s} baseline {sc['baseline']['wall_time_s']:.3f}s"
                f" -> optimized {sc['optimized']['wall_time_s']:.3f}s"
                f"  ({sc['speedup']:.2f}x, same Newton path:"
                f" {sc['same_newton_path']})"
            )
        elif sc["kind"] == "cache":
            if sc["name"] == "cache-cold":
                print(
                    f"{sc['name']:10s} first run {sc['wall_time_s']:.3f}s"
                    f" (uncached {sc['uncached_wall_time_s']:.3f}s,"
                    f" store overhead {sc['store_overhead']:.2f}x)"
                )
            else:
                print(
                    f"{sc['name']:10s} second run {sc['wall_time_s']:.3f}s"
                    f"  ({sc['second_run_speedup']:.2f}x vs cold,"
                    f" hit rate {sc['cache_hit_rate']:.0%},"
                    f" identical decisions:"
                    f" {sc['decisions_identical_to_uncached']})"
                )
        elif sc["kind"] == "backend":
            gap = sc["decision_gap"]
            print(
                f"{sc['name']:8s} sequential {sc['sequential']['wall_time_s']:.3f}s"
                f" -> batched {sc['batched']['wall_time_s']:.3f}s"
                f"  ({sc['speedup']:.2f}x, decision gap X {gap['tier2_totals_rel']:.1e}"
                f" y {gap['link_rel']:.1e} cost {gap['cost_rel']:.1e})"
            )
        else:
            parts = ", ".join(
                f"{k} {t['speedup']:.1f}x" for k, t in sc["kernels"].items()
            )
            print(f"{sc['name']:8s} per-call fused vs loop: {parts}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
