"""Section III-E: the N-tier generalization on a 3-tier instance.

Expected shape: the same ordering as the two-tier results — offline <=
regularized online <= greedy — carries over to three tiers, and the
reconstructed N-tier competitive bound dominates the realized ratio.
"""

import numpy as np
import pytest

from repro.core.competitive import ntier_ratio
from repro.model import Cloud
from repro.ntier import (
    LayeredNetwork,
    LayerLink,
    NTierConfig,
    NTierGreedy,
    NTierInstance,
    NTierRegularizedOnline,
    solve_ntier_offline,
)

EPS = 1e-2


def build_three_tier(T: int):
    rng = np.random.default_rng(17)
    edge = [Cloud(f"e{j}", np.inf) for j in range(6)]
    mid = [Cloud(f"m{u}", 8.0, 60.0) for u in range(4)]
    top = [Cloud(f"t{u}", 12.0, 90.0) for u in range(3)]
    links = []
    for j in range(6):
        for u in (j % 4, (j + 1) % 4):
            links.append(LayerLink(1, j, u, 6.0, 40.0))
    for u in range(4):
        for v in (u % 3, (u + 1) % 3):
            links.append(LayerLink(2, u, v, 8.0, 40.0))
    net = LayeredNetwork([edge, mid, top], links)
    vee = np.concatenate(
        [np.linspace(1.8, 0.1, T // 2), np.linspace(0.1, 1.8, T - T // 2 + 1)[1:]]
    )
    lam = vee[:, None] * (1 + 0.1 * rng.random((T, 6)))
    node_price = 0.05 * (1 + 0.3 * rng.random((T, net.n_upper_nodes)))
    link_price = 0.02 * np.ones((T, net.n_links))
    return NTierInstance(net, lam, node_price, link_price)


def test_ntier_three_tier(benchmark):
    inst = build_three_tier(T=24)

    def run():
        online = NTierRegularizedOnline(NTierConfig(epsilon=EPS)).run(inst)
        greedy = NTierGreedy().run(inst)
        off = solve_ntier_offline(inst)
        return online, greedy, off

    online, greedy, off = benchmark.pedantic(run, rounds=1, iterations=1)
    c_on, c_gr = inst.cost(online), inst.cost(greedy)
    print(
        f"\n== ntier/3-tier ==\noffline={off.objective:.2f} "
        f"online={c_on:.2f} ({c_on / off.objective:.3f}x) "
        f"greedy={c_gr:.2f} ({c_gr / off.objective:.3f}x)"
    )
    assert inst.check_feasible(online)
    assert off.objective <= c_on + 1e-6
    # The V-shaped workload with expensive reconfiguration is exactly
    # where smoothing wins: online beats greedy.
    assert c_on < c_gr
    # The reconstructed N-tier bound dominates the realized ratio.
    net = inst.network
    bound = ntier_ratio(
        [net.node_capacity[:4], net.node_capacity[4:]],
        [net.link_capacity[:12], net.link_capacity[12:]],
        EPS,
    )
    assert c_on / off.objective <= bound
