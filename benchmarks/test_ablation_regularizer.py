"""Ablation: design choices of the regularized subproblem.

DESIGN.md calls out two optional ingredients of P2(t):

* *hedging* — the overflow-covering constraints (3d)/(3e) from the
  competitive proof;
* *capacity caps* — explicit ``X <= C``, ``y <= B`` bounds (Lemma 1
  makes them redundant at the optimum but they guard numerics).

This bench quantifies their cost/runtime impact on a full online run.
"""

import pytest

from repro.core import SubproblemConfig, RegularizedOnline
from repro.evaluation import ExperimentScale
from repro.evaluation.experiments import make_instance
from repro.model import check_trajectory, evaluate_cost
from repro.offline import solve_offline


@pytest.fixture(scope="module")
def instance():
    scale = ExperimentScale.from_env()
    horizon = 48 if not scale.full else scale.horizon_wiki
    inst = make_instance(scale, "wikipedia", k=2, recon_weight=1e3)
    return inst.slice(0, min(horizon, inst.horizon))


def _run(inst, hedging, caps):
    cfg = SubproblemConfig(epsilon=1e-2, hedging=hedging, capacity_caps=caps)
    traj = RegularizedOnline(cfg).run(inst)
    assert check_trajectory(inst, traj).ok
    return evaluate_cost(inst, traj).total


def test_full_algorithm(benchmark, instance):
    benchmark.pedantic(lambda: _run(instance, True, True), rounds=1, iterations=1)


def test_no_hedging(benchmark, instance):
    benchmark.pedantic(lambda: _run(instance, False, True), rounds=1, iterations=1)


def test_no_caps(benchmark, instance):
    benchmark.pedantic(lambda: _run(instance, True, False), rounds=1, iterations=1)


def test_ablation_costs_comparable(instance):
    """Neither ingredient changes feasibility; costs stay in a band.

    Hedging can only add cost (extra covering constraints); removing
    the caps must not change the optimum (Lemma 1).
    """
    full = _run(instance, True, True)
    no_hedge = _run(instance, False, True)
    no_caps = _run(instance, True, False)
    off = solve_offline(instance).objective
    print(
        f"\n== ablation/regularizer ==\noffline={off:.2f} full={full:.2f} "
        f"no_hedging={no_hedge:.2f} no_caps={no_caps:.2f}"
    )
    assert no_hedge <= full + 1e-6
    assert no_caps == pytest.approx(full, rel=1e-3)
    assert off <= min(full, no_hedge, no_caps) + 1e-6
