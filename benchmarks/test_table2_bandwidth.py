"""Table II: tiered bandwidth pricing."""

import pytest

from repro.evaluation import experiments
from repro.pricing import bandwidth_price

from conftest import show


def test_table2_bandwidth(benchmark):
    result = benchmark.pedantic(experiments.table2_bandwidth, rounds=1, iterations=1)
    show(result)
    prices = result.column("price_per_gb")
    # Paper's schedule verbatim, non-increasing with capacity.
    assert prices[:4] == [0.090, 0.085, 0.070, 0.050]
    assert all(a >= b for a, b in zip(prices, prices[1:]))
    # Spot values used by the topology builder.
    assert bandwidth_price(200.0) == pytest.approx(0.050)
