"""Ablation: solver backends for the regularized subproblem.

Benchmarks a single P2(t) solve with the production barrier backend vs
the trust-constr cross-check backend, and with vs without the cheap
warm-start candidate.  Justifies the defaults recorded in DESIGN.md
(barrier + warm start).
"""

import numpy as np
import pytest

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.evaluation import ExperimentScale
from repro.evaluation.experiments import make_instance
from repro.model import Allocation
from repro.solvers import SolverOptions


@pytest.fixture(scope="module")
def slot():
    scale = ExperimentScale.from_env()
    inst = make_instance(scale, "wikipedia", k=2, recon_weight=1e3)
    net = inst.network
    t = inst.horizon // 2
    return inst, net, t


def _solve(inst, net, t, backend, warm):
    sub = RegularizedSubproblem(
        net,
        SubproblemConfig(
            epsilon=1e-2, solver=SolverOptions(backend=backend, fallback=False)
        ),
    )
    prev = Allocation.zeros(net.n_edges)
    prog = sub.build(inst.workload[t], inst.tier2_price[t], inst.link_price[t], prev)
    v0 = sub._interior_candidate(prog, inst.workload[t]) if warm else None
    v = prog.solve(v0=v0, options=sub.config.solver)
    return prog.objective.value(v)


def test_barrier_warmstart(benchmark, slot):
    inst, net, t = slot
    benchmark(lambda: _solve(inst, net, t, "barrier", True))


def test_barrier_coldstart(benchmark, slot):
    inst, net, t = slot
    benchmark(lambda: _solve(inst, net, t, "barrier", False))


def test_trust_constr(benchmark, slot):
    inst, net, t = slot
    benchmark.pedantic(
        lambda: _solve(inst, net, t, "trust-constr", True), rounds=3, iterations=1
    )


def test_backends_same_objective(slot):
    inst, net, t = slot
    fb = _solve(inst, net, t, "barrier", True)
    ft = _solve(inst, net, t, "trust-constr", True)
    assert fb == pytest.approx(ft, rel=1e-4, abs=1e-6)
