"""Fig 5: total cost over time without prediction.

Greedy one-shot vs the regularized online algorithm vs the offline
optimum, for reconfiguration price weights 10..10^4, on both workload
regimes.  Expected shape (paper): greedy tracks the offline optimum
for cheap reconfiguration but diverges as it gets expensive (up to
~9x), while the online algorithm stays within a small factor (<= ~3x)
everywhere.
"""

import numpy as np
import pytest

from repro.evaluation import experiments

from conftest import show

RECON_WEIGHTS = (10.0, 1e2, 1e3, 1e4)


@pytest.mark.parametrize("workload", ["wikipedia", "worldcup"])
def test_fig5(benchmark, scale, workload):
    result = benchmark.pedantic(
        experiments.fig5_cost_no_prediction,
        args=(scale, workload),
        kwargs={"recon_weights": RECON_WEIGHTS},
        rounds=1,
        iterations=1,
    )
    show(result)
    one_shot = np.array(result.column("one_shot/offline"))
    online = np.array(result.column("online/offline"))

    # Everything is lower-bounded by the offline optimum.
    assert np.all(one_shot >= 1.0 - 1e-9)
    assert np.all(online >= 1.0 - 1e-9)

    # Cheap reconfiguration: greedy is near-optimal (within ~10%).
    assert one_shot[0] < 1.1

    # Expensive reconfiguration: greedy diverges, online does not.
    assert one_shot[-1] > online[-1]
    assert one_shot.max() > 1.5 * online.max() or one_shot.max() > 2.0

    # The paper's envelope: online within ~3x of offline throughout.
    assert online.max() < 3.0

    # Cumulative cost curves are monotone (Fig 5's y-axis).
    for key, series in result.series.items():
        assert np.all(np.diff(series) >= -1e-9), key
