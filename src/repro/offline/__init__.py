"""Offline and one-shot optimization of problem P1.

* :mod:`repro.offline.optimal` — the full-horizon LP (offline optimum)
  with optional pinned terminal state, reversed reconfiguration
  charging, and per-variable lower bounds.  This single formulation
  also powers FHC/RHC windows, the RFHC/RRHC pinned problems, and the
  LCP-M prefix problems.
* :mod:`repro.offline.greedy` — the sequence of greedy one-shot
  optimizations (the paper's prediction-free baseline).
"""

from repro.offline.optimal import OfflineResult, solve_offline
from repro.offline.greedy import GreedyOneShot

__all__ = ["OfflineResult", "solve_offline", "GreedyOneShot"]
