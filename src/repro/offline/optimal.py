"""Full-horizon linear program for problem P1.

P1 is an LP once the ``[.]^+`` reconfiguration terms are linearized
with auxiliary increment variables (``u_{it}`` for tier-2 clouds,
``w_{et}`` for links):

.. math::

    \\min \\sum_t \\Big( \\sum_e a_{i(e)t} x_{et} + \\sum_e c_{et} y_{et}
        + \\sum_i b_i u_{it} + \\sum_e d_e w_{et} \\Big)

subject to the covering, capacity and increment constraints.  The same
builder also supports:

* ``initial`` — the allocation at slot ``-1`` whose increase into slot
  0 is charged (default all-zero, as in the paper);
* ``terminal`` — an optional *pinned* final state: the reconfiguration
  from slot ``T-1`` into ``terminal`` is charged too (this is the
  problem ``P1(x_{tau-1}; ...; x_kappa)`` used by RFHC/RRHC);
* ``charge_decrease`` — charge reconfiguration on *decreases* instead
  of increases (the time-reversed problem used by LCP-M);
* ``lower`` — per-variable lower bounds on ``(x, y, s)`` (used for
  minimal-cost "top-up" repair of decisions planned from noisy
  predictions).

Matrices are assembled once with Kronecker products — no Python loops
over slots or edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.solvers.lp import LinearProgram


@dataclass
class OfflineResult:
    """Solution of the multi-slot LP.

    ``objective`` includes the charged reconfiguration into the pinned
    terminal when one is given (but not the terminal slot's allocation
    cost, which is fixed by the caller).
    """

    trajectory: Trajectory
    objective: float


def _difference_operator(T: int) -> sp.csr_matrix:
    """The ``(T, T)`` first-difference matrix ``(I - S)`` with subdiagonal shift S."""
    eye = sp.identity(T, format="csr")
    if T == 1:
        return eye
    shift = sp.diags([np.ones(T - 1)], [-1], shape=(T, T), format="csr")
    return (eye - shift).tocsr()


def solve_offline(
    instance: Instance,
    initial: "Allocation | None" = None,
    terminal: "Allocation | None" = None,
    charge_decrease: bool = False,
    lower: "Trajectory | None" = None,
) -> OfflineResult:
    """Solve P1 over the instance's whole horizon as a sparse LP.

    Parameters
    ----------
    instance:
        Inputs over ``T`` slots.
    initial:
        Allocation at slot ``-1`` (defaults to zero).
    terminal:
        Optional pinned state after slot ``T-1``; its reconfiguration
        cost is included in the objective.
    charge_decrease:
        Charge ``[prev - cur]^+`` instead of ``[cur - prev]^+``
        (LCP-M's time-reversed problem).
    lower:
        Optional per-slot lower bounds for ``x``, ``y`` and ``s``
        (shape-compatible :class:`Trajectory`); used to force planned
        allocations to only be topped up, never released.
    """
    net = instance.network
    T = instance.horizon
    n_i, n_e = net.n_tier2, net.n_edges
    MI, MJ = net.tier2_incidence, net.tier1_incidence
    eye_T = sp.identity(T, format="csr")
    eye_E = sp.identity(n_e, format="csr")
    eye_I = sp.identity(n_i, format="csr")
    diff = _difference_operator(T)

    X0 = np.zeros(n_i)
    y0 = np.zeros(n_e)
    if initial is not None:
        X0 = initial.tier2_totals(net)
        y0 = np.asarray(initial.y, dtype=float)

    lb_x = np.zeros(T * n_e)
    lb_y = np.zeros(T * n_e)
    lb_s = np.zeros(T * n_e)
    if lower is not None:
        if lower.horizon != T or lower.n_edges != n_e:
            raise ValueError("lower bounds trajectory has wrong shape")
        lb_x = lower.x.ravel()
        lb_y = lower.y.ravel()
        lb_s = lower.s.ravel()

    lp = LinearProgram()
    # Allocation cost on x is a_{i(e)t}; on y it is c_{et}.
    cost_x = instance.tier2_price[:, net.edge_i].ravel()
    cost_y = instance.link_price.ravel()
    lp.add_block("x", T * n_e, lb=lb_x, cost=cost_x)
    lp.add_block("y", T * n_e, lb=lb_y,
                 ub=np.tile(net.edge_capacity, T), cost=cost_y)
    lp.add_block("s", T * n_e, lb=lb_s)
    lp.add_block("u", T * n_i, lb=0.0, cost=np.tile(net.tier2_recon_price, T))
    lp.add_block("w", T * n_e, lb=0.0, cost=np.tile(net.edge_recon_price, T))

    big_eye = sp.identity(T * n_e, format="csr")
    # (2a) s <= x ; (2b) s <= y.
    lp.add_rows("<=", np.zeros(T * n_e), s=big_eye, x=-big_eye)
    lp.add_rows("<=", np.zeros(T * n_e), s=big_eye, y=-big_eye)
    # (2d) coverage.
    cov = sp.kron(eye_T, MJ, format="csr")
    lp.add_rows(">=", instance.workload.ravel(), s=cov)
    # (1b) tier-2 capacity.
    cap = sp.kron(eye_T, MI, format="csr")
    lp.add_rows("<=", np.tile(net.tier2_capacity, T), x=cap)

    # Reconfiguration increments.
    Lx = sp.kron(diff, MI, format="csr")  # (T*I, T*E): X_t - X_{t-1}
    Ly = sp.kron(diff, eye_E, format="csr")  # (T*E, T*E): y_t - y_{t-1}
    rhs_x = np.zeros(T * n_i)
    rhs_x[:n_i] = X0
    rhs_y = np.zeros(T * n_e)
    rhs_y[:n_e] = y0
    u_eye = sp.identity(T * n_i, format="csr")
    w_eye = sp.identity(T * n_e, format="csr")
    if not charge_decrease:
        # u_t >= X_t - X_{t-1}:  Lx x - u <= rhs_x.
        lp.add_rows("<=", rhs_x, x=Lx, u=-u_eye)
        lp.add_rows("<=", rhs_y, y=Ly, w=-w_eye)
    else:
        # u_t >= X_{t-1} - X_t:  -Lx x - u <= -rhs_x.
        lp.add_rows("<=", -rhs_x, x=-Lx, u=-u_eye)
        lp.add_rows("<=", -rhs_y, y=-Ly, w=-w_eye)

    extra_cost = 0.0
    if terminal is not None:
        X_term = terminal.tier2_totals(net)
        y_term = np.asarray(terminal.y, dtype=float)
        lp.add_block("u_term", n_i, lb=0.0, cost=net.tier2_recon_price)
        lp.add_block("w_term", n_e, lb=0.0, cost=net.edge_recon_price)
        # Select slot T-1 columns of x / y.
        sel = sp.csr_matrix(
            (np.ones(n_e), (np.arange(n_e), np.arange((T - 1) * n_e, T * n_e))),
            shape=(n_e, T * n_e),
        )
        if not charge_decrease:
            # u_term >= X_term - X_{T-1}: -M_I x_{T-1} - u_term <= -X_term.
            lp.add_rows("<=", -X_term, x=-(MI @ sel), u_term=-eye_I)
            lp.add_rows("<=", -y_term, y=-sel, w_term=-eye_E)
        else:
            lp.add_rows("<=", X_term, x=MI @ sel, u_term=-eye_I)
            lp.add_rows("<=", y_term, y=sel, w_term=-eye_E)

    sol = lp.solve()
    x = sol["x"].reshape(T, n_e)
    y = sol["y"].reshape(T, n_e)
    s = sol["s"].reshape(T, n_e)
    # Clean tiny LP round-off so downstream feasibility checks are exact.
    s = np.clip(s, 0.0, None)
    x = np.maximum(np.clip(x, 0.0, None), s)
    y = np.maximum(np.clip(y, 0.0, None), s)
    traj = Trajectory(x, y, s)
    return OfflineResult(trajectory=traj, objective=float(sol.objective) + extra_cost)
