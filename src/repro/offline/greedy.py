"""The sequence of greedy one-shot optimizations (Section V-A).

At every slot the controller solves the one-shot slice of P1 — the LP
over that single slot, charging reconfiguration from the previously
applied decision — and applies the result.  This is the myopic
baseline the paper compares against (and, per Theorem 2, it can be
arbitrarily worse than the offline optimum on V-shaped workloads).
It is also exactly FHC/RHC with window length 1.
"""

from __future__ import annotations

from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline


class GreedyOneShot:
    """Greedy control: per-slot one-shot optimization of P1."""

    name = "greedy-one-shot"

    def step(self, instance: Instance, t: int, previous: Allocation) -> Allocation:
        """Solve the one-shot slice of P1 at slot ``t``."""
        result = solve_offline(instance.slice(t, t + 1), initial=previous)
        return result.trajectory.step(0)

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run greedy control over the whole horizon."""
        prev = initial or Allocation.zeros(instance.network.n_edges)
        steps: list[Allocation] = []
        for t in range(instance.horizon):
            prev = self.step(instance, t, prev)
            steps.append(prev)
        return Trajectory.from_steps(steps)
