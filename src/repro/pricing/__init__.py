"""Pricing substrate: operating prices for clouds and networks.

* :mod:`repro.pricing.electricity` — hourly real-time electricity
  prices per RTO market (Table I): iid truncated-Gaussian synthesis,
  with non-market locations pinned to the mean of the geographically
  closest market (the paper's rule);
* :mod:`repro.pricing.bandwidth` — the Amazon-EC2-style tiered WAN
  bandwidth price (Table II), static over time.
"""

from repro.pricing.electricity import (
    ELECTRICITY_MARKETS,
    ElectricityMarket,
    ElectricityPriceModel,
)
from repro.pricing.bandwidth import (
    BANDWIDTH_TIERS,
    bandwidth_price,
    bandwidth_price_table,
)

__all__ = [
    "ElectricityMarket",
    "ELECTRICITY_MARKETS",
    "ElectricityPriceModel",
    "BANDWIDTH_TIERS",
    "bandwidth_price",
    "bandwidth_price_table",
]
