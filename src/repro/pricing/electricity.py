"""Hourly real-time electricity prices per RTO market (Table I).

US wholesale electricity prices vary temporally and spatially; the
hourly real-time prices administered by each RTO (Regional
Transmission Organization) follow Gaussian distributions with
market-specific means and standard deviations [paper ref. 17].  The
paper synthesizes each location's hourly price as an iid draw from its
market's Gaussian; locations without an hourly real-time market get a
*fixed* price equal to the mean of the geographically closest market
[ref. 18].

Table I in our source text is partially garbled by OCR; the four
legible rows (PJM 40.6/26.9 around Annapolis; PJM-Chicago 54.0/34.2;
CAISO 77.9/40.3; ISONE 66.5/25.8) are embedded verbatim and the
remaining major RTO rows carry plausible 2015-era statistics, which is
documented in DESIGN.md §4 (only relative spatial/temporal diversity
matters to the algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator


@dataclass(frozen=True)
class ElectricityMarket:
    """One RTO's hourly real-time price statistics ($/MWh)."""

    name: str
    mean: float
    std: float
    # Representative coordinates used for "closest market" assignment.
    location: tuple[float, float]

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.std < 0:
            raise ValueError(f"market {self.name}: invalid statistics")


#: Table I markets.  The first four rows' statistics are verbatim from
#: the paper; the rest are plausible same-era values (see module doc).
ELECTRICITY_MARKETS: tuple[ElectricityMarket, ...] = (
    ElectricityMarket("PJM", 40.6, 26.9, (39.0, -76.5)),       # Annapolis/DC (paper)
    ElectricityMarket("PJM-Chicago", 54.0, 34.2, (41.9, -87.6)),  # Chicago (paper)
    ElectricityMarket("CAISO", 77.9, 40.3, (37.6, -122.2)),    # SF/San Jose (paper)
    ElectricityMarket("ISONE", 66.5, 25.8, (42.4, -71.1)),     # Boston (paper)
    ElectricityMarket("NYISO", 60.1, 33.5, (41.5, -74.0)),     # Albany/NYC
    ElectricityMarket("MISO", 38.2, 21.4, (44.9, -93.2)),      # Upper Midwest
    ElectricityMarket("ERCOT", 46.8, 39.7, (30.3, -97.7)),     # Texas
    ElectricityMarket("SPP", 35.4, 19.8, (35.5, -97.5)),       # South-central
)


class ElectricityPriceModel:
    """Synthesizes per-location hourly operating prices.

    Parameters
    ----------
    markets:
        The RTO statistics (defaults to Table I).
    market_share:
        Fraction of locations assumed to sit in an hourly real-time
        market; the rest get a fixed price equal to their closest
        market's mean (the paper's rule for non-market states).
    """

    def __init__(
        self,
        markets: "tuple[ElectricityMarket, ...] | None" = None,
        market_share: float = 1.0,
    ) -> None:
        self.markets = tuple(markets) if markets is not None else ELECTRICITY_MARKETS
        if not self.markets:
            raise ValueError("need at least one market")
        if not (0.0 <= market_share <= 1.0):
            raise ValueError("market_share must be in [0, 1]")
        self.market_share = market_share

    # ------------------------------------------------------------------
    def assign_markets(
        self, locations: "list[tuple[float, float]]"
    ) -> np.ndarray:
        """Index of the geographically closest market per location."""
        from repro.topology.geo import haversine_matrix

        locs = np.asarray(locations, dtype=float)
        mlocs = np.asarray([m.location for m in self.markets], dtype=float)
        dist = haversine_matrix(locs[:, 0], locs[:, 1], mlocs[:, 0], mlocs[:, 1])
        return np.argmin(dist, axis=1)

    def series(
        self,
        locations: "list[tuple[float, float]]",
        horizon: int,
        seed=None,
    ) -> np.ndarray:
        """Hourly prices, shape ``(horizon, len(locations))``.

        Each market location draws iid Gaussian hourly prices
        (truncated at a small positive floor — negative wholesale
        prices exist in reality but the paper's cost model assumes
        non-negative operating prices); non-market locations get the
        closest market's mean, constant over time.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        rng = as_generator(seed)
        assign = self.assign_markets(locations)
        n = len(locations)
        means = np.array([self.markets[k].mean for k in assign])
        stds = np.array([self.markets[k].std for k in assign])
        # Deterministically choose which locations are "market" ones:
        # the first ceil(share * n) in closest-market order keeps the
        # choice reproducible without an extra RNG draw.
        is_market = np.zeros(n, dtype=bool)
        n_market = int(np.ceil(self.market_share * n))
        is_market[:n_market] = True

        prices = np.tile(means, (horizon, 1))
        if n_market:
            draw = rng.normal(
                means[is_market], stds[is_market], size=(horizon, n_market)
            )
            prices[:, is_market] = draw
        return np.maximum(prices, 1e-3)

    def table(self) -> list[tuple[str, float, float]]:
        """Rows of Table I: (market, mean, std) — for the bench harness."""
        return [(m.name, m.mean, m.std) for m in self.markets]
