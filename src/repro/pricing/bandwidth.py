"""Tiered WAN bandwidth pricing (Table II).

The paper estimates cloud WAN bandwidth price from network capacity
using Amazon EC2's tiered data-transfer pricing: higher provisioned
capacity falls into a cheaper per-GB tier.  Bandwidth prices change
slowly, so the model is static over time.

Table II (capacity in GB/month -> $/GB):

====================  ========
<= 10                 0.090
10 - 50               0.085
50 - 150              0.070
150 - 500             0.050
> 500                 0.050
====================  ========
"""

from __future__ import annotations

import numpy as np

# (upper capacity bound in GB/month, price in $/GB); inf tier extends
# the paper's last row.
BANDWIDTH_TIERS: tuple[tuple[float, float], ...] = (
    (10.0, 0.090),
    (50.0, 0.085),
    (150.0, 0.070),
    (500.0, 0.050),
    (np.inf, 0.050),
)


def bandwidth_price(capacity_gb: "float | np.ndarray") -> np.ndarray:
    """Per-unit bandwidth price for given network capacities.

    Vectorized step function over Table II.  Capacities are in
    GB/month; negative capacities are rejected.
    """
    caps = np.atleast_1d(np.asarray(capacity_gb, dtype=float))
    if np.any(caps < 0):
        raise ValueError("capacity must be >= 0")
    bounds = np.array([b for b, _ in BANDWIDTH_TIERS])
    prices = np.array([p for _, p in BANDWIDTH_TIERS])
    idx = np.searchsorted(bounds, caps, side="left")
    out = prices[idx]
    if np.isscalar(capacity_gb):
        return float(out[0])
    return out


def bandwidth_price_table() -> list[tuple[str, float]]:
    """Human-readable rendering of Table II (for the bench harness)."""
    rows = []
    prev = 0.0
    for bound, price in BANDWIDTH_TIERS:
        if np.isinf(bound):
            rows.append((f"> {prev:g}", price))
        else:
            rows.append((f"{prev:g} - {bound:g}", price))
            prev = bound
    return rows
