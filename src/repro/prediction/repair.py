"""Minimal-cost top-up of planned decisions against realized workloads.

Controllers that plan from noisy forecasts can undershoot the realized
workload.  SLA compliance requires the applied allocation to cover the
*true* demand of the slot, so every predictive controller in this
library (FHC, RHC, RFHC, RRHC alike — the comparison stays fair)
passes its planned slot decision through :func:`topup_repair`: the
cheapest slot-feasible decision that does not release anything the
plan allocated.

When the plan already covers the realized workload, the repair is the
identity (verified cheaply before solving any LP).
"""

from __future__ import annotations

import numpy as np

from repro.model.allocation import Allocation, Trajectory
from repro.model.feasibility import check_trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline


def topup_repair(
    instance: Instance,
    t: int,
    planned: Allocation,
    previous: Allocation,
) -> Allocation:
    """Return the applied decision for slot ``t`` given a planned one.

    Solves the one-shot slice of P1 at ``t`` (true data) with the
    planned allocation as per-variable lower bounds and reconfiguration
    charged from ``previous``.  If the plan is already feasible for the
    realized slot, it is returned unchanged.
    """
    slot = instance.slice(t, t + 1)
    candidate = Trajectory(
        planned.x[None, :], planned.y[None, :], planned.s[None, :]
    )
    if check_trajectory(slot, candidate).ok:
        return planned
    net = instance.network
    zeros = np.zeros((1, net.n_edges))
    y_cap = np.minimum(planned.y, net.edge_capacity)[None, :]
    s_cap = np.minimum(planned.s, net.edge_capacity)[None, :]
    # Relaxation cascade: keep as much of the plan as remains jointly
    # feasible with the realized workload.  A badly wrong forecast can
    # make "never release anything" infeasible (planned allocations
    # block the capacity the true demand needs), in which case first
    # the covering assignment s is freed (re-routing), then the cloud
    # allocation x, and finally the slot is re-planned from scratch.
    floors = (
        Trajectory(planned.x[None, :], y_cap, s_cap),
        Trajectory(planned.x[None, :], y_cap, zeros.copy()),
        Trajectory(zeros.copy(), y_cap, zeros.copy()),
        None,
    )
    last_error: "Exception | None" = None
    for lower in floors:
        try:
            res = solve_offline(slot, initial=previous, lower=lower)
            return res.trajectory.step(0)
        except Exception as exc:  # LP infeasible under this floor
            last_error = exc
    raise RuntimeError(f"slot {t} repair failed even unconstrained") from last_error
