"""RFHC — Regularized Fixed Horizon Control (Section IV-C).

At block starts ``t = 0, w, 2w, ...`` the controller:

1. extends the regularized chain through the block's last slot
   ``t + w - 1`` (solving P2 with forecast data);
2. keeps the chain value ``x~_{t+w-1}`` as a pinned terminal;
3. solves the exact windowed problem
   ``P1(x_{t-1}; x_t, ..., x_{t+w-2}; x~_{t+w-1})`` — reconfiguration
   into the pinned terminal included — over the forecast window;
4. applies the re-optimized interior followed by the chain terminal.

Theorem 4: because every block's endpoints sit on the regularized
chain, iterating Lemma 3 gives
``COST_RFHC <= COST_online`` — RFHC inherits the prediction-free
algorithm's competitive ratio while exploiting the forecasts.

Engine shape: a :class:`~repro.engine.session.Controller` whose state
holds the chain and the pending block plan; chain subproblem solves
share the state's probe, so per-step statistics include the chain's
warm-started Newton work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.subproblem import SubproblemConfig
from repro.engine.session import SlotData, SolveSession
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.chain import RegularizedChain
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


@dataclass
class ChainedState:
    """Carried state of the chain-pinned controllers (RFHC/RRHC)."""

    instance: Instance
    prev: Allocation
    chain: RegularizedChain
    pending: "list[Allocation]" = field(default_factory=list)
    probe: StatsProbe = field(default_factory=StatsProbe)


class RegularizedFixedHorizonControl:
    """RFHC with pluggable forecast oracle."""

    name = "rfhc"

    def __init__(
        self,
        window: int,
        config: "SubproblemConfig | None" = None,
        predictor: "Predictor | None" = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.config = config or SubproblemConfig()
        self.predictor = predictor or ExactPredictor()

    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> ChainedState:
        self.predictor.reset()
        probe = StatsProbe()
        chain = RegularizedChain(
            instance, self.config, self.predictor, initial, probe=probe
        )
        return ChainedState(
            instance=instance,
            prev=initial or Allocation.zeros(instance.network.n_edges),
            chain=chain,
            probe=probe,
        )

    def decide(self, state: ChainedState, t: int, slot: SlotData) -> Allocation:
        """Apply (and lazily re-plan) the pinned block decision for slot ``t``."""
        if not state.pending:
            stop = min(t + self.window, state.instance.horizon)
            terminal_slot = stop - 1
            terminal = state.chain[terminal_slot]
            plans: list[Allocation] = []
            if terminal_slot > t:
                forecast = self.predictor.window(
                    state.instance, t, terminal_slot - t
                )
                plan = solve_offline(
                    forecast, initial=state.prev, terminal=terminal
                ).trajectory
                state.probe.record_solve(backend="lp")
                plans = [plan.step(k) for k in range(plan.horizon)]
            plans.append(terminal)
            state.pending = plans
        planned = state.pending.pop(0)
        applied = topup_repair(
            slot.as_instance(state.instance.network), 0, planned, state.prev
        )
        state.prev = applied
        return applied

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run RFHC over the whole horizon (true costs, repaired SLA)."""
        return SolveSession(self, instance, initial=initial).run()
