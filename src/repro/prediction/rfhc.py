"""RFHC — Regularized Fixed Horizon Control (Section IV-C).

At block starts ``t = 0, w, 2w, ...`` the controller:

1. extends the regularized chain through the block's last slot
   ``t + w - 1`` (solving P2 with forecast data);
2. keeps the chain value ``x~_{t+w-1}`` as a pinned terminal;
3. solves the exact windowed problem
   ``P1(x_{t-1}; x_t, ..., x_{t+w-2}; x~_{t+w-1})`` — reconfiguration
   into the pinned terminal included — over the forecast window;
4. applies the re-optimized interior followed by the chain terminal.

Theorem 4: because every block's endpoints sit on the regularized
chain, iterating Lemma 3 gives
``COST_RFHC <= COST_online`` — RFHC inherits the prediction-free
algorithm's competitive ratio while exploiting the forecasts.
"""

from __future__ import annotations

from repro.core.subproblem import SubproblemConfig
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.chain import RegularizedChain
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


class RegularizedFixedHorizonControl:
    """RFHC with pluggable forecast oracle."""

    name = "rfhc"

    def __init__(
        self,
        window: int,
        config: "SubproblemConfig | None" = None,
        predictor: "Predictor | None" = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.config = config or SubproblemConfig()
        self.predictor = predictor or ExactPredictor()

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run RFHC over the whole horizon (true costs, repaired SLA)."""
        self.predictor.reset()
        prev = initial or Allocation.zeros(instance.network.n_edges)
        chain = RegularizedChain(instance, self.config, self.predictor, initial)
        steps: list[Allocation] = []
        T = instance.horizon
        for start in range(0, T, self.window):
            stop = min(start + self.window, T)
            terminal_slot = stop - 1
            terminal = chain[terminal_slot]
            if terminal_slot > start:
                forecast = self.predictor.window(
                    instance, start, terminal_slot - start
                )
                plan = solve_offline(
                    forecast, initial=prev, terminal=terminal
                ).trajectory
                for k in range(plan.horizon):
                    applied = topup_repair(instance, start + k, plan.step(k), prev)
                    steps.append(applied)
                    prev = applied
            applied = topup_repair(instance, terminal_slot, terminal, prev)
            steps.append(applied)
            prev = applied
        return Trajectory.from_steps(steps)
