"""Prediction-based control (Section IV).

* :mod:`repro.prediction.predictors` — exact and Gaussian-noise
  forecast oracles for the workload and tier-2 operating prices;
* :mod:`repro.prediction.fhc` / :mod:`repro.prediction.rhc` — the
  standard Fixed / Receding Horizon Control baselines;
* :mod:`repro.prediction.rfhc` / :mod:`repro.prediction.rrhc` — the
  paper's regularized control algorithms, which pin window endpoints
  to the prediction-free regularized chain and therefore inherit its
  competitive ratio (Theorem 4);
* :mod:`repro.prediction.repair` — minimal-cost top-up applied when a
  decision planned from noisy forecasts undershoots the realized
  workload (SLA compliance for all controllers alike).
"""

from repro.prediction.predictors import (
    DecayingAccuracyPredictor,
    ExactPredictor,
    GaussianNoisePredictor,
    Predictor,
)
from repro.prediction.afhc import AveragingFixedHorizonControl
from repro.prediction.fhc import FixedHorizonControl
from repro.prediction.rhc import RecedingHorizonControl
from repro.prediction.rfhc import RegularizedFixedHorizonControl
from repro.prediction.rrhc import RegularizedRecedingHorizonControl
from repro.prediction.repair import topup_repair

__all__ = [
    "Predictor",
    "ExactPredictor",
    "GaussianNoisePredictor",
    "DecayingAccuracyPredictor",
    "AveragingFixedHorizonControl",
    "FixedHorizonControl",
    "RecedingHorizonControl",
    "RegularizedFixedHorizonControl",
    "RegularizedRecedingHorizonControl",
    "topup_repair",
]
