"""FHC — Fixed Horizon Control (Section IV-A).

At slots ``t = 0, w, 2w, ...`` the controller solves P1 over the
prediction window ``[t, t+w)`` (forecast data) given the previously
applied decision, and applies the whole block.  With ``w = 1`` this is
exactly greedy one-shot control.  Theorem 3: when the prediction
window is shorter than the workload's ramp-down phases, FHC's cost can
be arbitrarily larger than the offline optimum.

Engine shape: a :class:`~repro.engine.session.Controller` whose state
carries the pending block plan; ``decide`` re-plans when the pending
queue empties (block boundaries) and repairs each planned slot against
the *streamed* realized slot data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.session import SlotData, SolveSession
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


@dataclass
class WindowedState:
    """Carried state shared by the windowed controllers.

    ``pending`` holds the not-yet-applied tail of the current block
    plan; ``prev`` is the previously *applied* decision.
    """

    instance: Instance
    prev: Allocation
    pending: "list[Allocation]" = field(default_factory=list)
    probe: StatsProbe = field(default_factory=StatsProbe)


class FixedHorizonControl:
    """Standard FHC with pluggable forecast oracle."""

    name = "fhc"

    def __init__(self, window: int, predictor: "Predictor | None" = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.predictor = predictor or ExactPredictor()

    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> WindowedState:
        self.predictor.reset()
        return WindowedState(
            instance=instance,
            prev=initial or Allocation.zeros(instance.network.n_edges),
        )

    def decide(self, state: WindowedState, t: int, slot: SlotData) -> Allocation:
        """Apply (and lazily re-plan) the block decision for slot ``t``."""
        if not state.pending:
            forecast = self.predictor.window(state.instance, t, self.window)
            plan = solve_offline(forecast, initial=state.prev).trajectory
            state.probe.record_solve(backend="lp")
            state.pending = [plan.step(k) for k in range(plan.horizon)]
        planned = state.pending.pop(0)
        applied = topup_repair(
            slot.as_instance(state.instance.network), 0, planned, state.prev
        )
        state.prev = applied
        return applied

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run FHC over the whole horizon (true costs, repaired SLA)."""
        return SolveSession(self, instance, initial=initial).run()
