"""FHC — Fixed Horizon Control (Section IV-A).

At slots ``t = 0, w, 2w, ...`` the controller solves P1 over the
prediction window ``[t, t+w)`` (forecast data) given the previously
applied decision, and applies the whole block.  With ``w = 1`` this is
exactly greedy one-shot control.  Theorem 3: when the prediction
window is shorter than the workload's ramp-down phases, FHC's cost can
be arbitrarily larger than the offline optimum.
"""

from __future__ import annotations

from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


class FixedHorizonControl:
    """Standard FHC with pluggable forecast oracle."""

    name = "fhc"

    def __init__(self, window: int, predictor: "Predictor | None" = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.predictor = predictor or ExactPredictor()

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run FHC over the whole horizon (true costs, repaired SLA)."""
        self.predictor.reset()
        prev = initial or Allocation.zeros(instance.network.n_edges)
        steps: list[Allocation] = []
        T = instance.horizon
        for start in range(0, T, self.window):
            forecast = self.predictor.window(instance, start, self.window)
            plan = solve_offline(forecast, initial=prev).trajectory
            for k in range(forecast.horizon):
                applied = topup_repair(instance, start + k, plan.step(k), prev)
                steps.append(applied)
                prev = applied
        return Trajectory.from_steps(steps)
