"""The shared regularized chain used by RFHC and RRHC.

Both regularized controllers maintain the same object: the sequence of
regularized subproblem solutions ``{x~_1, x~_2, ...}`` that the
prediction-free online algorithm would produce, computed with
*forecast* data as each slot first enters a prediction window.  The
controllers pin their window endpoints to this chain, which is what
makes their cost provably no larger than the online algorithm's
(Lemma 3 / Theorem 4).

The chain is a streaming consumer of the engine: it holds the
prediction-free controller's state and feeds it one forecast slot at a
time — exactly the :class:`~repro.engine.session.SolveSession` step
discipline, so warm starts thread through chain extensions the same
way they do in a plain online run.  When a ``probe`` is supplied
(RFHC/RRHC pass their own state's probe), the chain's subproblem
solves are recorded into the *caller's* per-step statistics.
"""

from __future__ import annotations

from repro.core.online import RegularizedOnline
from repro.core.subproblem import SubproblemConfig
from repro.engine.session import SlotData
from repro.model.allocation import Allocation
from repro.model.instance import Instance
from repro.prediction.predictors import Predictor


class RegularizedChain:
    """Lazily-extended chain of P2(t) solutions under forecast data."""

    def __init__(
        self,
        instance: Instance,
        config: SubproblemConfig,
        predictor: Predictor,
        initial: "Allocation | None" = None,
        probe=None,
    ) -> None:
        self.instance = instance
        self.predictor = predictor
        self._controller = RegularizedOnline(config)
        self._state = self._controller.make_state(instance.network, initial=initial)
        if probe is not None:
            self._state.probe = probe
        self.entries: list[Allocation] = []

    @property
    def subproblem(self):
        """The reusable regularized subproblem (shared with the state)."""
        return self._state.subproblem

    def extend_to(self, slot: int) -> None:
        """Ensure chain entries exist for every slot ``<= slot``.

        Each missing slot ``tau`` is solved from the chain state at
        ``tau - 1`` using the forecast of slot ``tau`` (a one-slot
        predictor window — with a frozen noisy predictor this equals
        the forecast made when ``tau`` first became visible).
        """
        if slot >= self.instance.horizon:
            raise ValueError(f"slot {slot} beyond horizon {self.instance.horizon}")
        while len(self.entries) <= slot:
            tau = len(self.entries)
            forecast = self.predictor.window(self.instance, tau, 1)
            alloc = self._controller.decide(
                self._state, tau, SlotData.from_instance(forecast, 0)
            )
            self.entries.append(alloc)

    def __getitem__(self, slot: int) -> Allocation:
        self.extend_to(slot)
        return self.entries[slot]
