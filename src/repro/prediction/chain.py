"""The shared regularized chain used by RFHC and RRHC.

Both regularized controllers maintain the same object: the sequence of
regularized subproblem solutions ``{x~_1, x~_2, ...}`` that the
prediction-free online algorithm would produce, computed with
*forecast* data as each slot first enters a prediction window.  The
controllers pin their window endpoints to this chain, which is what
makes their cost provably no larger than the online algorithm's
(Lemma 3 / Theorem 4).
"""

from __future__ import annotations

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.model.allocation import Allocation
from repro.model.instance import Instance
from repro.prediction.predictors import Predictor


class RegularizedChain:
    """Lazily-extended chain of P2(t) solutions under forecast data."""

    def __init__(
        self,
        instance: Instance,
        config: SubproblemConfig,
        predictor: Predictor,
        initial: "Allocation | None" = None,
    ) -> None:
        self.instance = instance
        self.predictor = predictor
        self.subproblem = RegularizedSubproblem(instance.network, config)
        self.initial = initial or Allocation.zeros(instance.network.n_edges)
        self.entries: list[Allocation] = []
        self._warm = None  # previous reduced solution (speeds the barrier)

    def extend_to(self, slot: int) -> None:
        """Ensure chain entries exist for every slot ``<= slot``.

        Each missing slot ``tau`` is solved from the chain state at
        ``tau - 1`` using the forecast of slot ``tau`` (a one-slot
        predictor window — with a frozen noisy predictor this equals
        the forecast made when ``tau`` first became visible).
        """
        if slot >= self.instance.horizon:
            raise ValueError(f"slot {slot} beyond horizon {self.instance.horizon}")
        while len(self.entries) <= slot:
            tau = len(self.entries)
            prev = self.entries[-1] if self.entries else self.initial
            forecast = self.predictor.window(self.instance, tau, 1)
            alloc, self._warm = self.subproblem.solve_reduced(
                workload=forecast.workload[0],
                tier2_price=forecast.tier2_price[0],
                link_price=forecast.link_price[0],
                previous=prev,
                warm=self._warm,
            )
            self.entries.append(alloc)

    def __getitem__(self, slot: int) -> Allocation:
        self.extend_to(slot)
        return self.entries[slot]
