"""Forecast oracles for workloads and operating prices.

The paper's prediction model (Section V-B): at slot ``t`` the
controller receives predictions of the operating prices ``a_it`` and
workloads ``lambda_jt`` for the ``w`` slots ``{t, ..., t+w-1}``.
Noisy predictions add zero-mean Gaussian noise whose standard
deviation is a percentage (the *prediction error*) of the time-mean of
the corresponding series.

Predictions are clipped into the feasible region of the instance
(non-negative prices; workloads within the capacity envelope) so the
planning subproblems remain well posed — a forecast that exceeds
physical capacity carries no extra information for the controller.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import Instance
from repro.util.rng import as_generator


class Predictor:
    """Base predictor: exposes the true window (exact oracle semantics).

    Subclasses override :meth:`window` to perturb the returned data.
    A window request past the horizon end is truncated.
    """

    def window(self, instance: Instance, t: int, w: int) -> Instance:
        """Predicted sub-instance over slots ``[t, min(t+w, T))``."""
        stop = min(t + w, instance.horizon)
        return instance.slice(t, stop)

    def reset(self) -> None:
        """Reset internal state before a fresh run (no-op by default)."""


class ExactPredictor(Predictor):
    """Perfect foresight over the prediction window."""

    name = "exact"


class GaussianNoisePredictor(Predictor):
    """Gaussian forecast noise calibrated to the series means.

    Parameters
    ----------
    error_rate:
        Noise standard deviation as a fraction of each series'
        time-mean (the paper varies this up to 0.15).
    seed:
        RNG seed; each :meth:`reset` re-derives the stream so repeated
        runs of a controller see identical forecasts.
    frozen:
        When true (default), the forecast for a given slot is drawn
        once and cached, so a slot re-predicted at a later decision
        time returns the same values (consistent forecasts); when
        false, every call draws fresh noise.
    """

    name = "gaussian"

    def __init__(self, error_rate: float, seed=0, frozen: bool = True) -> None:
        if error_rate < 0:
            raise ValueError("error_rate must be >= 0")
        self.error_rate = float(error_rate)
        self._seed = seed
        self.frozen = frozen
        self.reset()

    def reset(self) -> None:
        # An int/None seed re-derives an identical stream; passing a
        # Generator shares state and makes reset a cache-clear only.
        self._rng = as_generator(self._seed)
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _noisy_slot(self, instance: Instance, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Forecast (workload, tier2_price) for one slot, cached when frozen."""
        if self.frozen and t in self._cache:
            return self._cache[t]
        lam_mean = instance.workload.mean(axis=0)
        price_mean = instance.tier2_price.mean(axis=0)
        lam = instance.workload[t] + self._rng.normal(
            0.0, self.error_rate * lam_mean
        )
        price = instance.tier2_price[t] + self._rng.normal(
            0.0, self.error_rate * price_mean
        )
        lam, price = self._clip_feasible(instance, lam, price)
        if self.frozen:
            self._cache[t] = (lam, price)
        return lam, price

    def _clip_feasible(
        self, instance: Instance, lam: np.ndarray, price: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        net = instance.network
        price = np.maximum(price, 0.0)
        lam = np.maximum(lam, 0.0)
        # Per-cloud: within the SLA link-capacity envelope.
        link_sum = net.aggregate_tier1(net.edge_capacity)
        lam = np.minimum(lam, link_sum * (1.0 - 1e-9))
        fin = np.isfinite(net.tier1_capacity)
        lam[fin] = np.minimum(lam[fin], net.tier1_capacity[fin])
        # Aggregate: within total tier-2 capacity.
        total_cap = float(net.tier2_capacity.sum())
        total = float(lam.sum())
        if total > total_cap:
            lam = lam * (total_cap * (1.0 - 1e-9) / total)
        return lam, price

    def window(self, instance: Instance, t: int, w: int) -> Instance:
        stop = min(t + w, instance.horizon)
        lam = np.empty((stop - t, instance.network.n_tier1))
        price = np.empty((stop - t, instance.network.n_tier2))
        for k, slot in enumerate(range(t, stop)):
            lam[k], price[k] = self._noisy_slot(instance, slot)
        base = instance.slice(t, stop)
        return base.with_data(workload=lam, tier2_price=price)


class DecayingAccuracyPredictor(GaussianNoisePredictor):
    """Forecast noise growing with lead time.

    Real forecasters are accurate for the next hour and increasingly
    wrong further out.  The noise standard deviation for a slot
    predicted ``lead`` slots ahead is

    ``error_rate * (1 + growth * lead) * series_mean``.

    Unlike the frozen Gaussian model, each slot's forecast is drawn
    when the slot first enters a prediction window and *refreshed*
    whenever a later (closer) decision time re-predicts it with a
    smaller lead — mimicking rolling forecast updates.  Controllers
    query one-slot windows through ``window(instance, t, w)`` with
    ``t`` the first slot of the remaining window; the lead is measured
    from the most recent :meth:`observe` call (the controller's current
    decision time).
    """

    name = "decaying"

    def __init__(self, error_rate: float, growth: float = 0.5, seed=0) -> None:
        if growth < 0:
            raise ValueError("growth must be >= 0")
        self.growth = float(growth)
        super().__init__(error_rate, seed=seed, frozen=True)

    def reset(self) -> None:
        super().reset()
        self._now = 0
        # cache: slot -> (lead, workload, price); refreshed on smaller lead.
        self._lead_cache: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}

    def observe(self, t: int) -> None:
        """Advance the forecaster's current decision time to slot ``t``."""
        self._now = max(self._now, int(t))

    def _noisy_slot(self, instance: Instance, t: int) -> tuple[np.ndarray, np.ndarray]:
        lead = max(int(t) - self._now, 0)
        cached = self._lead_cache.get(t)
        if cached is not None and cached[0] <= lead:
            return cached[1], cached[2]
        factor = self.error_rate * (1.0 + self.growth * lead)
        lam_mean = instance.workload.mean(axis=0)
        price_mean = instance.tier2_price.mean(axis=0)
        lam = instance.workload[t] + self._rng.normal(0.0, factor * lam_mean)
        price = instance.tier2_price[t] + self._rng.normal(0.0, factor * price_mean)
        lam, price = self._clip_feasible(instance, lam, price)
        self._lead_cache[t] = (lead, lam, price)
        return lam, price

    def window(self, instance: Instance, t: int, w: int) -> Instance:
        self.observe(t)
        return super().window(instance, t, w)
