"""RHC — Receding Horizon Control (Section IV-A).

At every slot ``t`` the controller solves P1 over ``[t, t+w)``
(forecast data) given the previously applied decision, but applies
only the slot-``t`` decision.  With ``w = 1`` this is greedy one-shot
control.  Theorem 3 shows RHC shares FHC's unbounded worst case on
ramp-down phases longer than the window.

Engine shape: a :class:`~repro.engine.session.Controller` that
re-plans at every ``decide`` and repairs against the streamed realized
slot data.
"""

from __future__ import annotations

from repro.engine.session import SlotData, SolveSession
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.fhc import WindowedState
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


class RecedingHorizonControl:
    """Standard RHC with pluggable forecast oracle."""

    name = "rhc"

    def __init__(self, window: int, predictor: "Predictor | None" = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.predictor = predictor or ExactPredictor()

    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> WindowedState:
        self.predictor.reset()
        return WindowedState(
            instance=instance,
            prev=initial or Allocation.zeros(instance.network.n_edges),
        )

    def decide(self, state: WindowedState, t: int, slot: SlotData) -> Allocation:
        """Plan over ``[t, t+w)`` and apply only slot ``t`` (repaired)."""
        forecast = self.predictor.window(state.instance, t, self.window)
        plan = solve_offline(forecast, initial=state.prev).trajectory
        state.probe.record_solve(backend="lp")
        applied = topup_repair(
            slot.as_instance(state.instance.network), 0, plan.step(0), state.prev
        )
        state.prev = applied
        return applied

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run RHC over the whole horizon (true costs, repaired SLA)."""
        return SolveSession(self, instance, initial=initial).run()
