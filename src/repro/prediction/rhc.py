"""RHC — Receding Horizon Control (Section IV-A).

At every slot ``t`` the controller solves P1 over ``[t, t+w)``
(forecast data) given the previously applied decision, but applies
only the slot-``t`` decision.  With ``w = 1`` this is greedy one-shot
control.  Theorem 3 shows RHC shares FHC's unbounded worst case on
ramp-down phases longer than the window.
"""

from __future__ import annotations

from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


class RecedingHorizonControl:
    """Standard RHC with pluggable forecast oracle."""

    name = "rhc"

    def __init__(self, window: int, predictor: "Predictor | None" = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.predictor = predictor or ExactPredictor()

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run RHC over the whole horizon (true costs, repaired SLA)."""
        self.predictor.reset()
        prev = initial or Allocation.zeros(instance.network.n_edges)
        steps: list[Allocation] = []
        for t in range(instance.horizon):
            forecast = self.predictor.window(instance, t, self.window)
            plan = solve_offline(forecast, initial=prev).trajectory
            applied = topup_repair(instance, t, plan.step(0), prev)
            steps.append(applied)
            prev = applied
        return Trajectory.from_steps(steps)
