"""AFHC — Averaging Fixed Horizon Control (Lin et al., paper ref. [11]).

The paper's related-work section contrasts its regularized controllers
with AFHC, the strongest prior prediction-based method for the
multi-cloud case ("AFHC, while applicable to multiple clouds, may
always require predictions").  We implement it as an extension
baseline: run ``w`` copies of FHC whose block boundaries are staggered
by one slot each, and apply the *average* of their decisions.

Averaging preserves feasibility: the covering constraints are ``>=``
and the capacity constraints ``<=``, all linear, so a convex
combination of feasible slot decisions is feasible.  The classical
analysis gives AFHC a ``1 + O(1/w)`` competitive ratio under accurate
predictions — but unlike RFHC/RRHC it has no guarantee that survives
the prediction horizon being shorter than workload ramps.

Engine shape: the ``w`` staggered planning passes run once when the
state is built (they need the full forecast stream); ``decide`` then
repairs the averaged slot decision against the streamed realized data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import SlotData, SolveSession
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair


@dataclass
class AveragedState:
    """Carried state: the precomputed averaged plan plus repair state."""

    instance: Instance
    prev: Allocation
    averaged: Trajectory
    probe: StatsProbe = field(default_factory=StatsProbe)


class AveragingFixedHorizonControl:
    """AFHC: the average of ``w`` phase-shifted FHC controllers."""

    name = "afhc"

    def __init__(self, window: int, predictor: "Predictor | None" = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.predictor = predictor or ExactPredictor()

    def _fhc_with_offset(
        self,
        instance: Instance,
        offset: int,
        initial: Allocation,
        probe: "StatsProbe | None" = None,
    ) -> Trajectory:
        """One FHC pass whose first block ends at slot ``offset`` - 1."""
        prev = initial
        steps: list[Allocation] = []
        T = instance.horizon
        starts = [0] + list(range(offset, T, self.window)) if offset else list(
            range(0, T, self.window)
        )
        for idx, start in enumerate(starts):
            stop = min(
                starts[idx + 1] if idx + 1 < len(starts) else T, T
            )
            if stop <= start:
                continue
            forecast = self.predictor.window(instance, start, stop - start)
            plan = solve_offline(forecast, initial=prev).trajectory
            if probe is not None:
                probe.record_solve(backend="lp")
            for k in range(plan.horizon):
                steps.append(plan.step(k))
                prev = steps[-1]
        return Trajectory.from_steps(steps)

    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> AveragedState:
        """Run the ``w`` staggered planning passes and average them."""
        self.predictor.reset()
        init = initial or Allocation.zeros(instance.network.n_edges)
        probe = StatsProbe()
        passes = []
        for offset in range(min(self.window, instance.horizon)):
            self.predictor.reset()
            passes.append(self._fhc_with_offset(instance, offset, init, probe))
        averaged = Trajectory(
            np.mean([p.x for p in passes], axis=0),
            np.mean([p.y for p in passes], axis=0),
            np.mean([p.s for p in passes], axis=0),
        )
        return AveragedState(
            instance=instance, prev=init, averaged=averaged, probe=probe
        )

    def decide(self, state: AveragedState, t: int, slot: SlotData) -> Allocation:
        """Repair the averaged slot plan against the realized slot data."""
        applied = topup_repair(
            slot.as_instance(state.instance.network),
            0,
            state.averaged.step(t),
            state.prev,
        )
        state.prev = applied
        return applied

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run AFHC over the whole horizon (true costs, repaired SLA)."""
        return SolveSession(self, instance, initial=initial).run()
