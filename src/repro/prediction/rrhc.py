"""RRHC — Regularized Receding Horizon Control (Section IV-C).

At every slot ``t`` the controller:

1. extends the regularized chain by (at most) one slot, to the
   window's far edge ``t + w - 1`` — per the paper, subproblems
   ``P2(t) ... P2(t+w-2)`` were already solved at earlier slots and
   are reused;
2. solves the exact pinned problem
   ``P1(x_{t-1}; x_t, ..., x_{t+w-2}; x~_{t+w-1})`` over the forecast
   window, where ``x_{t-1}`` is the previously *applied* decision;
3. applies only the slot-``t`` decision.

Like RFHC, RRHC's cost is bounded by the prediction-free online
algorithm's cost (Theorem 4), hence inherits its competitive ratio.

Engine shape: a per-slot :class:`~repro.engine.session.Controller`
sharing :class:`~repro.prediction.rfhc.ChainedState` with RFHC.
"""

from __future__ import annotations

from repro.core.subproblem import SubproblemConfig
from repro.engine.session import SlotData, SolveSession
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline
from repro.prediction.chain import RegularizedChain
from repro.prediction.predictors import ExactPredictor, Predictor
from repro.prediction.repair import topup_repair
from repro.prediction.rfhc import ChainedState


class RegularizedRecedingHorizonControl:
    """RRHC with pluggable forecast oracle."""

    name = "rrhc"

    def __init__(
        self,
        window: int,
        config: "SubproblemConfig | None" = None,
        predictor: "Predictor | None" = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.config = config or SubproblemConfig()
        self.predictor = predictor or ExactPredictor()

    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> ChainedState:
        self.predictor.reset()
        probe = StatsProbe()
        chain = RegularizedChain(
            instance, self.config, self.predictor, initial, probe=probe
        )
        return ChainedState(
            instance=instance,
            prev=initial or Allocation.zeros(instance.network.n_edges),
            chain=chain,
            probe=probe,
        )

    def decide(self, state: ChainedState, t: int, slot: SlotData) -> Allocation:
        """Solve the pinned window at ``t`` and apply only slot ``t``."""
        terminal_slot = min(t + self.window, state.instance.horizon) - 1
        terminal = state.chain[terminal_slot]
        if terminal_slot > t:
            forecast = self.predictor.window(
                state.instance, t, terminal_slot - t
            )
            plan = solve_offline(
                forecast, initial=state.prev, terminal=terminal
            ).trajectory
            state.probe.record_solve(backend="lp")
            planned = plan.step(0)
        else:
            planned = terminal
        applied = topup_repair(
            slot.as_instance(state.instance.network), 0, planned, state.prev
        )
        state.prev = applied
        return applied

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run RRHC over the whole horizon (true costs, repaired SLA)."""
        return SolveSession(self, instance, initial=initial).run()
