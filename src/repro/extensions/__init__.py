"""Extensions beyond the paper's reduced problem P1.

* :mod:`repro.extensions.full_model` — the full three-cost model
  ``F_1 + F_12 + F_2`` (tier-1 processing costs included), which the
  paper drops for ease of presentation ("all the techniques ... are
  naturally applicable"), implemented by reduction to the N-tier
  machinery.
"""

from repro.extensions.full_model import (
    FullModelResult,
    full_model_greedy,
    full_model_offline,
    full_model_online,
    to_layered,
)

__all__ = [
    "to_layered",
    "full_model_offline",
    "full_model_online",
    "full_model_greedy",
    "FullModelResult",
]
