"""The full three-cost model ``F_1 + F_12 + F_2`` (Section II-B).

The paper removes the tier-1 cost term ``F_1`` (with constraints (2c)
and (1d)) "for the ease of presentation", noting every technique
applies unchanged.  This module restores it by *reduction*: a two-tier
instance with tier-1 prices/capacities is exactly a three-tier layered
problem in which

* tier 1' is a costless origin layer (one dummy node per edge cloud),
* tier 2' holds the original tier-1 clouds with capacity ``C_j``,
  allocation price ``e_jt`` and reconfiguration price ``f_j`` — these
  carry the ``z_{ijt}`` resources of ``F_1``,
* tier 3' holds the original tier-2 clouds (``F_2``),
* the stage-2 links are the original SLA edges (``F_12``), and the
  stage-1 links are free, uncapacitated feeders.

Every N-tier algorithm (offline LP, greedy, regularized online) then
optimizes the full objective; the competitive machinery extends via
:func:`repro.core.competitive.ntier_ratio`.  When tier-1 prices are
zero and capacities ample, the reduction's optimum coincides with the
paper's reduced problem P1 (verified in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.instance import Instance
from repro.model.network import Cloud
from repro.ntier.greedy import NTierGreedy
from repro.ntier.layered import LayeredNetwork, LayerLink
from repro.ntier.offline import solve_ntier_offline
from repro.ntier.online import NTierConfig, NTierRegularizedOnline
from repro.ntier.problem import NTierInstance, NTierTrajectory


@dataclass
class FullModelResult:
    """Outcome of a full-model run: trajectory + realized total cost."""

    trajectory: NTierTrajectory
    total: float


def to_layered(instance: Instance) -> NTierInstance:
    """Reduce a two-tier instance with tier-1 costs to three tiers.

    Requires ``instance.tier1_price`` (the ``e_jt`` series).  Tier-1
    clouds with infinite capacity get a capacity equal to their SLA
    link sum (they can never usefully process more), keeping the
    layered model bounded.
    """
    if instance.tier1_price is None:
        raise ValueError("full model requires instance.tier1_price (e_jt)")
    net = instance.network
    T = instance.horizon

    origin = [Cloud(f"origin-{c.name}", np.inf) for c in net.tier1_clouds]
    link_sum = net.aggregate_tier1(net.edge_capacity)
    tier1 = [
        Cloud(
            c.name,
            float(c.capacity) if np.isfinite(c.capacity) else float(link_sum[j]),
            c.recon_price,
            c.location,
        )
        for j, c in enumerate(net.tier1_clouds)
    ]
    tier2 = [
        Cloud(c.name, c.capacity, c.recon_price, c.location)
        for c in net.tier2_clouds
    ]

    links: list[LayerLink] = []
    # Stage 1: free feeder origin-j -> tier-1 cloud j (capacity = what
    # the cloud itself can pass on).
    feeder_cap = np.maximum(link_sum, 1e-9)
    for j in range(net.n_tier1):
        links.append(LayerLink(1, j, j, float(feeder_cap[j]), 0.0))
    # Stage 2: the original SLA edges.
    for e in range(net.n_edges):
        links.append(
            LayerLink(
                2,
                int(net.edge_j[e]),
                int(net.edge_i[e]),
                float(net.edge_capacity[e]),
                float(net.edge_recon_price[e]),
            )
        )

    layered = LayeredNetwork([origin, tier1, tier2], links)

    # Node prices: [tier-1 clouds (J) | tier-2 clouds (I)] flattened.
    node_price = np.concatenate([instance.tier1_price, instance.tier2_price], axis=1)
    # Link prices: stage-1 feeders are free; stage-2 carries c_et.
    link_price = np.concatenate(
        [np.zeros((T, net.n_tier1)), instance.link_price], axis=1
    )
    return NTierInstance(layered, instance.workload, node_price, link_price)


def full_model_offline(instance: Instance) -> FullModelResult:
    """Offline optimum of ``F_1 + F_12 + F_2``."""
    layered = to_layered(instance)
    res = solve_ntier_offline(layered)
    return FullModelResult(res.trajectory, res.objective)


def full_model_greedy(instance: Instance) -> FullModelResult:
    """Greedy one-shot control of the full model."""
    layered = to_layered(instance)
    traj = NTierGreedy().run(layered)
    return FullModelResult(traj, layered.cost(traj))


def full_model_online(
    instance: Instance, config: "NTierConfig | None" = None
) -> FullModelResult:
    """Regularized online control of the full model.

    All three reconfiguration terms — tier-1 clouds (``f_j``), links
    (``d_ij``) and tier-2 clouds (``b_i``) — are regularized jointly.
    """
    layered = to_layered(instance)
    traj = NTierRegularizedOnline(config or NTierConfig(epsilon=1e-2)).run(layered)
    return FullModelResult(traj, layered.cost(traj))
