"""Geographic helpers: great-circle distances and k-NN SLA assignment."""

from __future__ import annotations

import numpy as np

_EARTH_RADIUS_KM = 6371.0088


def haversine_matrix(
    lat1: np.ndarray,
    lon1: np.ndarray,
    lat2: np.ndarray,
    lon2: np.ndarray,
) -> np.ndarray:
    """Pairwise great-circle distances in km.

    ``lat1/lon1`` have length ``m`` and ``lat2/lon2`` length ``n``;
    the result is ``(m, n)``.  Fully vectorized (broadcasting).
    """
    p1 = np.radians(np.asarray(lat1, dtype=float))[:, None]
    l1 = np.radians(np.asarray(lon1, dtype=float))[:, None]
    p2 = np.radians(np.asarray(lat2, dtype=float))[None, :]
    l2 = np.radians(np.asarray(lon2, dtype=float))[None, :]
    dphi = p2 - p1
    dlam = l2 - l1
    a = np.sin(dphi / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def k_nearest(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of each row's ``k`` nearest columns, nearest first.

    ``distances`` is ``(m, n)``; returns ``(m, k)`` integer indices.
    This is the paper's SLA rule: tier-1 cloud ``j`` may use its ``k``
    geographically closest tier-2 clouds.

    Ties break deterministically by **ascending column index**: the
    sort is a stable argsort, so among equidistant columns the one
    with the smallest index wins.  Generated topologies and golden
    scenario fingerprints rely on this rule — keep it stable.
    """
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[1]
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}], got {k}")
    order = np.argsort(distances, axis=1, kind="stable")
    return order[:, :k]
