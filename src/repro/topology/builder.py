"""Assemble the paper's evaluation instances (Section V-A/V-B).

:class:`PaperTopologyBuilder` wires together every substrate:

* tier-2 clouds at the 18 AT&T-era metros, tier-1 clouds at the 48
  continental state capitals (subsettable for laptop-scale runs);
* SLA edges from geographic k-nearest-neighbour assignment;
* capacities from the 80 %-peak provisioning rule;
* tier-2 operating prices from the Table-I electricity model;
* link operating prices from the Table-II tiered bandwidth model;
* reconfiguration prices as a *relative weight* over each resource's
  time-mean operating price (the paper's control knob ``b``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.instance import Instance
from repro.model.network import Cloud, CloudNetwork, SLAEdge
from repro.pricing.bandwidth import bandwidth_price
from repro.pricing.electricity import ElectricityPriceModel
from repro.topology.capacity import provision_capacities
from repro.topology.geo import haversine_matrix, k_nearest
from repro.topology.sites import ATT_SITES, STATE_CAPITALS, Site
from repro.util.rng import as_generator
from repro.workloads.traces import replicate_across_clouds


@dataclass
class PaperTopologyBuilder:
    """Builds :class:`Instance` objects matching the paper's setup.

    Parameters
    ----------
    k:
        SLA size: each tier-1 cloud may use its ``k`` closest tier-2
        clouds (paper varies 1..4).
    recon_weight:
        The control knob ``b``: reconfiguration price as a multiple of
        the resource's time-mean operating price (paper varies
        ``10 .. 10^4``).
    n_tier2, n_tier1:
        Optional subsetting of the 18/48 site lists for reduced-scale
        runs (sites are taken in list order, which is geographically
        spread).
    headroom:
        Capacity provisioning multiplier (1.25 = peak at 80 %).
    bandwidth_capacity_gb:
        Nominal per-link capacity, in GB/month, used only to look up
        the Table-II price tier for link operating prices.
    seed:
        Seed for electricity price synthesis.
    """

    k: int = 1
    recon_weight: float = 1e3
    n_tier2: "int | None" = None
    n_tier1: "int | None" = None
    headroom: float = 1.25
    bandwidth_capacity_gb: float = 200.0
    market_share: float = 1.0
    seed: "int | None" = 42

    def tier2_sites(self) -> tuple[Site, ...]:
        sites = ATT_SITES
        if self.n_tier2 is not None:
            if not (1 <= self.n_tier2 <= len(ATT_SITES)):
                raise ValueError(f"n_tier2 must be in [1, {len(ATT_SITES)}]")
            sites = ATT_SITES[: self.n_tier2]
        return sites

    def tier1_sites(self) -> tuple[Site, ...]:
        sites = STATE_CAPITALS
        if self.n_tier1 is not None:
            if not (1 <= self.n_tier1 <= len(STATE_CAPITALS)):
                raise ValueError(f"n_tier1 must be in [1, {len(STATE_CAPITALS)}]")
            sites = STATE_CAPITALS[: self.n_tier1]
        return sites

    # ------------------------------------------------------------------
    def build(self, trace: np.ndarray) -> Instance:
        """Build the full instance for a single hourly trace.

        The trace is replicated across all tier-1 clouds (the paper's
        rule).  For per-cloud workloads, pass a ``(T, J)`` matrix.
        """
        trace = np.asarray(trace, dtype=float)
        t2, t1 = self.tier2_sites(), self.tier1_sites()
        if trace.ndim == 1:
            workload = replicate_across_clouds(trace, len(t1))
        else:
            if trace.shape[1] != len(t1):
                raise ValueError(
                    f"workload has {trace.shape[1]} columns, expected {len(t1)}"
                )
            workload = trace
        T = workload.shape[0]

        # SLA assignment: k nearest tier-2 clouds per tier-1 cloud.
        dist = haversine_matrix(
            np.array([s.lat for s in t1]),
            np.array([s.lon for s in t1]),
            np.array([s.lat for s in t2]),
            np.array([s.lon for s in t2]),
        )
        assignment = k_nearest(dist, min(self.k, len(t2)))

        # Capacities from peaks.
        peaks = workload.max(axis=0)
        caps = provision_capacities(peaks, assignment, len(t2), self.headroom)

        # Operating prices.
        elec = ElectricityPriceModel(market_share=self.market_share)
        tier2_price = elec.series(
            [s.location for s in t2], T, seed=as_generator(self.seed)
        )
        link_unit_price = float(bandwidth_price(self.bandwidth_capacity_gb))

        # Reconfiguration prices: relative weight over the time-mean
        # operating price of the corresponding resource.
        tier2_recon = self.recon_weight * tier2_price.mean(axis=0)
        link_recon = self.recon_weight * link_unit_price

        tier2_clouds = [
            Cloud(s.name, float(caps.tier2[i]), float(tier2_recon[i]), s.location)
            for i, s in enumerate(t2)
        ]
        tier1_clouds = [
            Cloud(s.name, np.inf, 0.0, s.location) for s in t1
        ]
        edges = [
            SLAEdge(
                tier2=int(assignment[j, m]),
                tier1=j,
                capacity=float(caps.edges[j * assignment.shape[1] + m]),
                recon_price=link_recon,
            )
            for j in range(len(t1))
            for m in range(assignment.shape[1])
        ]
        network = CloudNetwork(tier2_clouds, tier1_clouds, edges)
        link_price = np.full((T, len(edges)), link_unit_price)
        return Instance(network, workload, tier2_price, link_price)


def build_paper_instance(
    trace: np.ndarray,
    k: int = 1,
    recon_weight: float = 1e3,
    n_tier2: "int | None" = None,
    n_tier1: "int | None" = None,
    seed: "int | None" = 42,
) -> Instance:
    """One-call convenience wrapper around :class:`PaperTopologyBuilder`."""
    return PaperTopologyBuilder(
        k=k,
        recon_weight=recon_weight,
        n_tier2=n_tier2,
        n_tier1=n_tier1,
        seed=seed,
    ).build(trace)
