"""Continent-scale geo topology generator.

The paper's evaluation lives on an 18x48 grid; the ROADMAP's north
star is serving heavy traffic over continent-scale networks.  This
module generates those: seeded city/PoP placement with real lat/lon,
hundreds of tier-1 edge clouds clustered around metro regions,
RTT-derived k-NN SLA subsets via :mod:`repro.topology.geo`, and
capacity/price provisioning through :mod:`repro.topology.capacity`
and :mod:`repro.pricing` — the same substrates the paper topology
uses, scaled up.

Placement model (the SIGMETRICS'25 CloudRouting PoP-map shape):

* ``n_regions`` metro regions.  The first 18 anchor on the AT&T-era
  IDC metros (:data:`repro.topology.sites.ATT_SITES`); additional
  regions draw seeded uniform positions inside the continental
  bounding box.
* Each region hosts ``pops_per_region`` tier-2 PoPs (region center
  plus a small seeded jitter) and ``tier1_per_region`` tier-1 edge
  clouds scattered around the center with a Gaussian radius of
  ``spread_km``.
* SLAs come from k-nearest-neighbour assignment on great-circle RTT.
  With ``regional_sla=True`` (the default) each edge cloud's k-NN is
  confined to its home region's PoPs, so SLA components never span
  regions: each region contributes between 1 and ``pops_per_region
  // k`` connected components — exactly one when ``k ==
  pops_per_region`` (in particular the corpus's single-PoP regions).
  This is the structure the sharded serve runtime partitions along.

Everything is a pure function of :class:`GeoTopologyConfig` (the seed
included): two calls with equal configs produce bitwise-identical
placements, assignments and instances, which the scenario corpus pins
with golden SHA-256 fingerprints (see :mod:`repro.scenarios`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.instance import Instance
from repro.model.network import Cloud, CloudNetwork, SLAEdge
from repro.pricing.bandwidth import bandwidth_price
from repro.pricing.electricity import ElectricityPriceModel
from repro.topology.capacity import provision_capacities
from repro.topology.geo import haversine_matrix, k_nearest
from repro.topology.sites import ATT_SITES
from repro.util.digest import array_digest
from repro.util.rng import as_generator
from repro.util.validation import check_nonnegative

#: Continental bounding box for regions beyond the 18 metro anchors.
_LAT_RANGE = (27.0, 47.0)
_LON_RANGE = (-122.0, -72.0)

#: Great-circle round-trip time per km of fiber path (~1 ms / 100 km:
#: light in fiber covers ~204 km one-way per ms, and real paths are
#: longer than the geodesic).
RTT_MS_PER_KM = 0.01

_KM_PER_DEG_LAT = 111.32


@dataclass(frozen=True)
class GeoTopologyConfig:
    """Sizing and seeding of a generated continent-scale topology.

    Parameters
    ----------
    n_regions:
        Metro regions; with ``regional_sla`` and ``k ==
        pops_per_region`` each is one SLA component (so also the
        sharded-serve width).
    pops_per_region:
        Tier-2 PoPs per region (total tier-2 = regions x PoPs).
    tier1_per_region:
        Edge clouds per region (total tier-1 = regions x this).
    k:
        SLA size: each edge cloud may use its ``k`` RTT-closest PoPs.
        Must not exceed ``pops_per_region`` under ``regional_sla``.
    regional_sla:
        Confine each edge cloud's k-NN to its home region's PoPs, so
        SLA components never span regions (one per region when ``k ==
        pops_per_region``).  With ``False`` the k-NN is global and
        components may merge across regions.
    spread_km:
        Gaussian scatter radius of edge clouds around region centers.
    pop_jitter_km:
        Gaussian scatter of PoPs around region centers.
    headroom:
        Capacity provisioning multiplier (1.25 = peak at 80 %).
    recon_weight:
        Paper knob ``b``: reconfiguration price as a multiple of the
        resource's time-mean operating price.
    bandwidth_capacity_gb:
        Nominal per-link capacity for the Table-II price-tier lookup.
    market_share:
        Fraction of PoPs in an hourly real-time electricity market.
    seed:
        Single seed governing placement *and* default price synthesis.
    """

    n_regions: int = 12
    pops_per_region: int = 1
    tier1_per_region: int = 8
    k: int = 1
    regional_sla: bool = True
    spread_km: float = 150.0
    pop_jitter_km: float = 25.0
    headroom: float = 1.25
    recon_weight: float = 1e3
    bandwidth_capacity_gb: float = 200.0
    market_share: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.pops_per_region < 1:
            raise ValueError("pops_per_region must be >= 1")
        if self.tier1_per_region < 1:
            raise ValueError("tier1_per_region must be >= 1")
        limit = (
            self.pops_per_region
            if self.regional_sla
            else self.n_regions * self.pops_per_region
        )
        if not (1 <= self.k <= limit):
            scope = "pops_per_region" if self.regional_sla else "total PoPs"
            raise ValueError(f"k must be in [1, {limit}] ({scope}), got {self.k}")
        if self.spread_km <= 0 or self.pop_jitter_km < 0:
            raise ValueError("spread_km must be > 0 and pop_jitter_km >= 0")
        if self.headroom <= 1.0:
            raise ValueError("headroom must exceed 1.0")
        if self.recon_weight < 0:
            raise ValueError("recon_weight must be >= 0")

    @property
    def n_tier2(self) -> int:
        return self.n_regions * self.pops_per_region

    @property
    def n_tier1(self) -> int:
        return self.n_regions * self.tier1_per_region


@dataclass
class GeneratedTopology:
    """A generated placement + SLA assignment, ready to build instances.

    Arrays are indexed globally: tier-2 PoP ``i = r * pops_per_region
    + p`` lives in region ``r``; tier-1 cloud ``j = r *
    tier1_per_region + e`` likewise.  ``assignment`` is the ``(J, k)``
    k-NN SLA assignment (global PoP indices, nearest first);
    ``distance_km``/``rtt_ms`` are the full ``(J, I)`` matrices.
    """

    config: GeoTopologyConfig
    region_lat: np.ndarray
    region_lon: np.ndarray
    tier2_lat: np.ndarray
    tier2_lon: np.ndarray
    tier2_region: np.ndarray
    tier1_lat: np.ndarray
    tier1_lon: np.ndarray
    tier1_region: np.ndarray
    distance_km: np.ndarray
    rtt_ms: np.ndarray
    assignment: np.ndarray

    # ------------------------------------------------------------------
    @property
    def n_tier2(self) -> int:
        return self.tier2_lat.shape[0]

    @property
    def n_tier1(self) -> int:
        return self.tier1_lat.shape[0]

    @property
    def n_regions(self) -> int:
        return self.region_lat.shape[0]

    def tier2_name(self, i: int) -> str:
        r, p = divmod(i, self.config.pops_per_region)
        return f"pop-r{r}-{p}"

    def tier1_name(self, j: int) -> str:
        r, e = divmod(j, self.config.tier1_per_region)
        return f"edge-r{r}-{e}"

    def sla_component_count(self) -> int:
        """Connected components of the SLA graph that carry tier-1 work.

        Union-find over PoPs + edge clouds with one union per SLA
        pair; PoPs no edge cloud selected are isolated and not
        counted (they receive no allocation).  Under ``regional_sla``
        with ``k == pops_per_region`` this equals ``n_regions``.
        """
        n_i = self.n_tier2
        parent = list(range(n_i + self.n_tier1))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for j in range(self.n_tier1):
            for i in self.assignment[j]:
                ra, rb = find(int(i)), find(n_i + j)
                if ra != rb:
                    parent[rb] = ra
        return len({find(n_i + j) for j in range(self.n_tier1)})

    # ------------------------------------------------------------------
    def build_instance(
        self,
        workload: np.ndarray,
        tier2_price: "np.ndarray | None" = None,
        link_price: "np.ndarray | None" = None,
        price_seed: "int | None" = None,
    ) -> Instance:
        """Provision capacities from the workload and build an instance.

        ``workload`` is ``(T, J)`` demand per edge cloud.  Tier-2
        operating prices default to the Table-I electricity model over
        the PoP locations (seeded by ``price_seed``, defaulting to the
        topology seed); link prices default to the flat Table-II
        bandwidth tier.  Pass overrides to model scenario shocks
        (price spikes, regional failures) — capacities always come
        from the *true* workload peaks, so shocked instances remain
        feasible.
        """
        cfg = self.config
        workload = check_nonnegative("workload", np.atleast_2d(workload))
        if workload.shape[1] != self.n_tier1:
            raise ValueError(
                f"workload has {workload.shape[1]} columns, "
                f"expected {self.n_tier1}"
            )
        T = workload.shape[0]
        k = self.assignment.shape[1]

        peaks = workload.max(axis=0)
        caps = provision_capacities(
            peaks, self.assignment, self.n_tier2, cfg.headroom
        )

        if tier2_price is None:
            elec = ElectricityPriceModel(market_share=cfg.market_share)
            seed = cfg.seed if price_seed is None else price_seed
            tier2_price = elec.series(
                list(zip(self.tier2_lat, self.tier2_lon)),
                T,
                seed=as_generator(seed),
            )
        tier2_price = np.asarray(tier2_price, dtype=float)
        if link_price is None:
            unit = float(bandwidth_price(cfg.bandwidth_capacity_gb))
            link_price = np.full((T, self.n_tier1 * k), unit)
        link_price = np.asarray(link_price, dtype=float)

        tier2_recon = cfg.recon_weight * tier2_price.mean(axis=0)
        link_recon = cfg.recon_weight * np.atleast_2d(link_price).mean(axis=0)

        tier2_clouds = [
            Cloud(
                self.tier2_name(i),
                float(caps.tier2[i]),
                float(tier2_recon[i]),
                (float(self.tier2_lat[i]), float(self.tier2_lon[i])),
            )
            for i in range(self.n_tier2)
        ]
        tier1_clouds = [
            Cloud(
                self.tier1_name(j),
                np.inf,
                0.0,
                (float(self.tier1_lat[j]), float(self.tier1_lon[j])),
            )
            for j in range(self.n_tier1)
        ]
        edges = [
            SLAEdge(
                tier2=int(self.assignment[j, m]),
                tier1=j,
                capacity=float(caps.edges[j * k + m]),
                recon_price=float(link_recon[j * k + m]),
            )
            for j in range(self.n_tier1)
            for m in range(k)
        ]
        network = CloudNetwork(tier2_clouds, tier1_clouds, edges)
        return Instance(network, workload, tier2_price, link_price)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over placement + assignment (the generator's output)."""
        return array_digest(
            [
                ("region_lat", self.region_lat),
                ("region_lon", self.region_lon),
                ("tier2_lat", self.tier2_lat),
                ("tier2_lon", self.tier2_lon),
                ("tier2_region", self.tier2_region),
                ("tier1_lat", self.tier1_lat),
                ("tier1_lon", self.tier1_lon),
                ("tier1_region", self.tier1_region),
                ("assignment", self.assignment),
            ]
        )

    def __repr__(self) -> str:
        return (
            f"GeneratedTopology(regions={self.n_regions}, "
            f"|I|={self.n_tier2}, |J|={self.n_tier1}, "
            f"k={self.assignment.shape[1]})"
        )


# ----------------------------------------------------------------------
def _scatter(
    rng: np.random.Generator,
    center_lat: np.ndarray,
    center_lon: np.ndarray,
    count: int,
    radius_km: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """``count`` seeded points around each center, Gaussian in km.

    Returns flattened ``(n_centers * count,)`` lat/lon arrays, points
    grouped by center (center-major order).  Longitude displacement is
    corrected by the local latitude cosine so the scatter is isotropic
    in km, and latitudes are clipped to stay on the hemisphere.
    """
    n = center_lat.shape[0]
    d_north = rng.normal(0.0, radius_km, size=(n, count))
    d_east = rng.normal(0.0, radius_km, size=(n, count))
    lat = center_lat[:, None] + d_north / _KM_PER_DEG_LAT
    lat = np.clip(lat, -89.0, 89.0)
    lon = center_lon[:, None] + d_east / (
        _KM_PER_DEG_LAT * np.cos(np.radians(lat))
    )
    return lat.ravel(), lon.ravel()


def generate_topology(config: GeoTopologyConfig) -> GeneratedTopology:
    """Generate a seeded continent-scale placement + SLA assignment.

    A pure function of ``config``: the RNG draw order is fixed
    (region centers, then PoP jitter, then edge-cloud scatter), so
    equal configs yield bitwise-identical topologies.
    """
    rng = as_generator(config.seed)

    # Region centers: metro anchors first, seeded box draws beyond.
    n_anchor = min(config.n_regions, len(ATT_SITES))
    region_lat = np.array([s.lat for s in ATT_SITES[:n_anchor]], dtype=float)
    region_lon = np.array([s.lon for s in ATT_SITES[:n_anchor]], dtype=float)
    extra = config.n_regions - n_anchor
    if extra > 0:
        region_lat = np.concatenate(
            [region_lat, rng.uniform(*_LAT_RANGE, size=extra)]
        )
        region_lon = np.concatenate(
            [region_lon, rng.uniform(*_LON_RANGE, size=extra)]
        )

    tier2_lat, tier2_lon = _scatter(
        rng, region_lat, region_lon, config.pops_per_region, config.pop_jitter_km
    )
    tier2_region = np.repeat(
        np.arange(config.n_regions, dtype=np.intp), config.pops_per_region
    )
    tier1_lat, tier1_lon = _scatter(
        rng, region_lat, region_lon, config.tier1_per_region, config.spread_km
    )
    tier1_region = np.repeat(
        np.arange(config.n_regions, dtype=np.intp), config.tier1_per_region
    )

    distance_km = haversine_matrix(tier1_lat, tier1_lon, tier2_lat, tier2_lon)
    rtt_ms = distance_km * RTT_MS_PER_KM

    if config.regional_sla:
        # k-NN among the home region's PoPs only: sub-matrix columns are
        # ascending global indices, so k_nearest's stable tie rule maps
        # back to "smallest global PoP index wins" — same rule as the
        # global path.
        assignment = np.empty((config.n_tier1, config.k), dtype=np.intp)
        for r in range(config.n_regions):
            pops = np.flatnonzero(tier2_region == r)
            rows = np.flatnonzero(tier1_region == r)
            local = k_nearest(distance_km[np.ix_(rows, pops)], config.k)
            assignment[rows] = pops[local]
    else:
        assignment = k_nearest(distance_km, config.k)

    return GeneratedTopology(
        config=config,
        region_lat=region_lat,
        region_lon=region_lon,
        tier2_lat=tier2_lat,
        tier2_lon=tier2_lon,
        tier2_region=tier2_region,
        tier1_lat=tier1_lat,
        tier1_lon=tier1_lon,
        tier1_region=tier1_region,
        distance_km=distance_km,
        rtt_ms=rtt_ms,
        assignment=assignment,
    )
