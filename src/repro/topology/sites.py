"""Embedded site data: tier-2 metros and the 48 continental state capitals.

The paper uses "the 18 AT&T clouds in North America" [ref. 2] as
tier-2 cloud locations; that source is a defunct web page, so we embed
18 major metros where AT&T operated Internet Data Centers in that era
(DESIGN.md §4 — only the pairwise distance *ranks* matter, since SLAs
come from k-nearest-neighbour assignment, and any well-spread set of
18 metros produces the same structure).

Coordinates are approximate city centers (degrees).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Site:
    """A named geographic site."""

    name: str
    state: str
    lat: float
    lon: float

    @property
    def location(self) -> tuple[float, float]:
        return (self.lat, self.lon)


#: 18 AT&T-era IDC metros (tier-2 clouds).
ATT_SITES: tuple[Site, ...] = (
    Site("Seattle", "WA", 47.61, -122.33),
    Site("San Francisco", "CA", 37.77, -122.42),
    Site("San Jose", "CA", 37.34, -121.89),
    Site("Los Angeles", "CA", 34.05, -118.24),
    Site("San Diego", "CA", 32.72, -117.16),
    Site("Phoenix", "AZ", 33.45, -112.07),
    Site("Denver", "CO", 39.74, -104.99),
    Site("Dallas", "TX", 32.78, -96.80),
    Site("Austin", "TX", 30.27, -97.74),
    Site("Houston", "TX", 29.76, -95.37),
    Site("Chicago", "IL", 41.88, -87.63),
    Site("St. Louis", "MO", 38.63, -90.20),
    Site("Nashville", "TN", 36.16, -86.78),
    Site("Atlanta", "GA", 33.75, -84.39),
    Site("Orlando", "FL", 28.54, -81.38),
    Site("Washington", "DC", 38.91, -77.04),
    Site("New York", "NY", 40.71, -74.01),
    Site("Boston", "MA", 42.36, -71.06),
)

#: The 48 continental US state capitals (tier-1 / edge clouds).
STATE_CAPITALS: tuple[Site, ...] = (
    Site("Montgomery", "AL", 32.38, -86.30),
    Site("Phoenix", "AZ", 33.45, -112.07),
    Site("Little Rock", "AR", 34.75, -92.29),
    Site("Sacramento", "CA", 38.58, -121.49),
    Site("Denver", "CO", 39.74, -104.99),
    Site("Hartford", "CT", 41.77, -72.67),
    Site("Dover", "DE", 39.16, -75.52),
    Site("Tallahassee", "FL", 30.44, -84.28),
    Site("Atlanta", "GA", 33.75, -84.39),
    Site("Boise", "ID", 43.62, -116.20),
    Site("Springfield", "IL", 39.80, -89.65),
    Site("Indianapolis", "IN", 39.77, -86.16),
    Site("Des Moines", "IA", 41.59, -93.60),
    Site("Topeka", "KS", 39.05, -95.68),
    Site("Frankfort", "KY", 38.20, -84.87),
    Site("Baton Rouge", "LA", 30.45, -91.19),
    Site("Augusta", "ME", 44.31, -69.78),
    Site("Annapolis", "MD", 38.98, -76.49),
    Site("Boston", "MA", 42.36, -71.06),
    Site("Lansing", "MI", 42.73, -84.56),
    Site("St. Paul", "MN", 44.95, -93.09),
    Site("Jackson", "MS", 32.30, -90.18),
    Site("Jefferson City", "MO", 38.58, -92.17),
    Site("Helena", "MT", 46.59, -112.04),
    Site("Lincoln", "NE", 40.81, -96.68),
    Site("Carson City", "NV", 39.16, -119.77),
    Site("Concord", "NH", 43.21, -71.54),
    Site("Trenton", "NJ", 40.22, -74.76),
    Site("Santa Fe", "NM", 35.69, -105.94),
    Site("Albany", "NY", 42.65, -73.76),
    Site("Raleigh", "NC", 35.78, -78.64),
    Site("Bismarck", "ND", 46.81, -100.78),
    Site("Columbus", "OH", 39.96, -83.00),
    Site("Oklahoma City", "OK", 35.47, -97.52),
    Site("Salem", "OR", 44.94, -123.04),
    Site("Harrisburg", "PA", 40.26, -76.88),
    Site("Providence", "RI", 41.82, -71.41),
    Site("Columbia", "SC", 34.00, -81.03),
    Site("Pierre", "SD", 44.37, -100.35),
    Site("Nashville", "TN", 36.16, -86.78),
    Site("Austin", "TX", 30.27, -97.74),
    Site("Salt Lake City", "UT", 40.76, -111.89),
    Site("Montpelier", "VT", 44.26, -72.58),
    Site("Richmond", "VA", 37.54, -77.44),
    Site("Olympia", "WA", 47.04, -122.90),
    Site("Charleston", "WV", 38.35, -81.63),
    Site("Madison", "WI", 43.07, -89.40),
    Site("Cheyenne", "WY", 41.14, -104.82),
)
