"""Topology substrate: the paper's evaluation geography.

18 AT&T-era North-American data-center metros as tier-2 clouds, the 48
continental US state capitals as tier-1 (edge) clouds, SLA subsets
from geographic k-nearest-neighbour assignment, and the paper's
capacity-provisioning rules (Section V-A).  Beyond the paper's fixed
site lists, :mod:`repro.topology.generate` grows seeded
continent-scale topologies (hundreds of edge clouds) on the same
substrates — the scenario corpus (:mod:`repro.scenarios`) builds on
it.
"""

from repro.topology.sites import ATT_SITES, STATE_CAPITALS, Site
from repro.topology.geo import haversine_matrix, k_nearest
from repro.topology.capacity import provision_capacities
from repro.topology.builder import PaperTopologyBuilder, build_paper_instance
from repro.topology.generate import (
    GeneratedTopology,
    GeoTopologyConfig,
    generate_topology,
)

__all__ = [
    "Site",
    "ATT_SITES",
    "STATE_CAPITALS",
    "haversine_matrix",
    "k_nearest",
    "provision_capacities",
    "PaperTopologyBuilder",
    "build_paper_instance",
    "GeneratedTopology",
    "GeoTopologyConfig",
    "generate_topology",
]
