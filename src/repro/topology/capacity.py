"""Capacity provisioning rules (Section V-A).

The paper provisions capacities from the workload so that the peak
consumes 80 % of capacity:

* with ``k = 1`` (each tier-1 cloud uses only its closest tier-2
  cloud), tier-2 cloud ``i``'s capacity is ``1.25x`` the sum of the
  peak workloads of the tier-1 clouds whose *closest* cloud is ``i``;
* with general ``k``, every tier-1 cloud's peak is split evenly across
  its ``k`` SLA clouds and the multiplier becomes ``1.25 / k``;
* each SLA link's capacity equals its incident tier-2 cloud's
  capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProvisionedCapacities:
    """Output of :func:`provision_capacities`.

    ``tier2`` has shape ``(I,)``; ``edges`` aligns with the flattened
    SLA edge list ``[(assignment[j, m], j) for j for m]``.
    """

    tier2: np.ndarray
    edges: np.ndarray


def provision_capacities(
    peaks: np.ndarray,
    assignment: np.ndarray,
    n_tier2: int,
    headroom: float = 1.25,
) -> ProvisionedCapacities:
    """Apply the paper's 80 %-peak provisioning rule.

    Parameters
    ----------
    peaks:
        ``(J,)`` per-tier-1-cloud peak workloads.
    assignment:
        ``(J, k)`` k-NN SLA assignment (tier-2 indices per tier-1
        cloud, nearest first).
    n_tier2:
        Number of tier-2 clouds ``I``.
    headroom:
        Capacity multiplier (1.25 = peak consumes 80 %).

    Returns
    -------
    ProvisionedCapacities
        Tier-2 capacities and per-edge link capacities.  A tier-2
        cloud that no tier-1 cloud selects gets a minimal positive
        capacity (it can then only serve overflow hedging).
    """
    peaks = np.atleast_1d(np.asarray(peaks, dtype=float))
    assignment = np.atleast_2d(np.asarray(assignment, dtype=np.intp))
    J, k = assignment.shape
    if peaks.shape != (J,):
        raise ValueError(f"peaks has shape {peaks.shape}, expected ({J},)")
    if np.any(peaks < 0):
        raise ValueError("peaks must be >= 0")
    if headroom <= 1.0:
        raise ValueError("headroom must exceed 1.0 (capacity above peak)")

    # Each tier-1 cloud contributes peak/k to each of its k clouds.
    contrib = np.zeros(n_tier2)
    np.add.at(contrib, assignment.ravel(), np.repeat(peaks / k, k))
    tier2 = headroom * contrib
    floor = max(peaks.max(initial=0.0) * 1e-3, 1e-6)
    tier2 = np.maximum(tier2, floor)

    # Link capacity equals the incident tier-2 cloud's capacity.
    edges = tier2[assignment.ravel()]
    return ProvisionedCapacities(tier2=tier2, edges=edges)
