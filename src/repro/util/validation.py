"""Array validation helpers used across the model layer.

These raise early with precise messages instead of letting NaNs or
negative capacities propagate into the solvers, where failures are far
harder to diagnose.
"""

from __future__ import annotations

import numpy as np


def check_finite(name: str, arr: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` if ``arr`` contains NaN or +/-inf."""
    arr = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(arr)):
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise ValueError(f"{name} contains {bad} non-finite entries")
    return arr


def check_nonnegative(name: str, arr: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` unless every entry of ``arr`` is >= 0."""
    arr = check_finite(name, arr)
    if np.any(arr < 0):
        worst = float(arr.min())
        raise ValueError(f"{name} must be non-negative (min entry {worst})")
    return arr


def check_positive(name: str, arr: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` unless every entry of ``arr`` is > 0."""
    arr = check_finite(name, arr)
    if np.any(arr <= 0):
        worst = float(arr.min())
        raise ValueError(f"{name} must be strictly positive (min entry {worst})")
    return arr


def check_shape(name: str, arr: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Raise ``ValueError`` unless ``arr.shape == shape``."""
    arr = np.asarray(arr)
    if arr.shape != tuple(shape):
        raise ValueError(f"{name} has shape {arr.shape}, expected {tuple(shape)}")
    return arr
