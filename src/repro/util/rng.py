"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (price synthesis, workload
generation, prediction noise) accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  This module
normalizes those inputs so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children
    are statistically independent regardless of how many are drawn.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]
