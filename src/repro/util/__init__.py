"""Shared utilities: RNG handling, validation helpers, timing, digests."""

from repro.util.digest import array_digest
from repro.util.rng import as_generator, spawn_generators
from repro.util.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_shape,
)
from repro.util.timing import Timer

__all__ = [
    "array_digest",
    "as_generator",
    "spawn_generators",
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_shape",
    "Timer",
]
