"""Wall-clock timing, backed by the observability span tracer.

:class:`Timer` is the library's one way to measure elapsed wall time.
It is re-entry and reuse safe — each ``__enter__`` pushes onto a stack,
so the same instance can be nested (recursive code paths) or reused
sequentially, and ``elapsed`` always reports the most recently finished
interval.  When the timer has a ``name`` and tracing is enabled
(:mod:`repro.obs.tracing`), every interval is additionally recorded as
a span on the active tracer; with tracing disabled (the default) the
cost is two ``perf_counter`` calls and a list push/pop.
"""

from __future__ import annotations

import time

from repro.obs import tracing


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Parameters
    ----------
    name:
        Optional span name; when set and a tracer is active, each
        timed interval is also recorded as a span (with ``attrs``).
    attrs:
        Attributes attached to emitted spans.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    Nested and repeated use of one instance is safe::

    >>> t = Timer()
    >>> with t:
    ...     with t:
    ...         pass
    """

    __slots__ = ("name", "attrs", "elapsed", "_stack")

    def __init__(self, name: "str | None" = None, **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self.elapsed: float = 0.0
        self._stack: "list[tuple[float, object | None]]" = []

    @property
    def running(self) -> bool:
        """Is at least one interval currently open?"""
        return bool(self._stack)

    def __enter__(self) -> "Timer":
        span = None
        if self.name is not None and tracing.enabled():
            span = tracing.span(self.name, **self.attrs)
            span.__enter__()
        self._stack.append((time.perf_counter(), span))
        return self

    def __exit__(self, *exc) -> None:
        if not self._stack:
            raise RuntimeError("Timer.__exit__ without a matching __enter__")
        start, span = self._stack.pop()
        self.elapsed = time.perf_counter() - start
        if span is not None:
            span.__exit__(*exc)
