"""Minimal wall-clock timer used by the experiment runner."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None
