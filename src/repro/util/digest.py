"""Canonical SHA-256 digests of named array collections.

The scenario corpus pins *golden fingerprints*: a scenario built from
the same (name, size, seed) must hash to the same hex digest on every
machine and every run.  :func:`array_digest` therefore fixes every
degree of freedom that could leak into the hash — array order (the
caller passes an ordered sequence), dtype (floats canonicalized to
little-endian float64, integers to little-endian int64), memory layout
(C-contiguous) and shape (hashed alongside the bytes, so ``(2, 3)``
and ``(3, 2)`` of the same data differ).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def array_digest(items: "Iterable[tuple[str, np.ndarray]]") -> str:
    """SHA-256 hex digest of an ordered sequence of named arrays.

    Each item is ``(name, array)``; the name, canonical dtype, shape
    and raw bytes all enter the hash.  Float arrays are cast to
    ``<f8`` and integer/bool arrays to ``<i8``; other dtypes are
    rejected (the corpus is numeric).
    """
    h = hashlib.sha256()
    for name, array in items:
        a = np.ascontiguousarray(np.asarray(array))
        if a.dtype.kind == "f":
            a = a.astype("<f8", copy=False)
        elif a.dtype.kind in "iub":
            a = a.astype("<i8")
        else:
            raise TypeError(
                f"array {name!r} has unhashable dtype {a.dtype} "
                "(only float/int/bool arrays are fingerprinted)"
            )
        h.update(name.encode("utf-8"))
        h.update(repr(a.shape).encode("ascii"))
        h.update(a.tobytes())
    return h.hexdigest()
