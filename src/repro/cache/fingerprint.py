"""Deterministic fingerprints keying the persistent solver-state cache.

A cache entry is only reusable if *everything* that influences the
solve is part of its key.  Three layers of keys compose:

* :func:`network_fingerprint` — the topology and its parameter arrays
  (SLA edge index arrays, capacities, reconfiguration prices).  Two
  networks with equal arrays fingerprint equally regardless of cloud
  names or construction order of unrelated metadata.
* :func:`config_fingerprint` — every :class:`SubproblemConfig` field,
  including the nested :class:`SolverOptions` and the solver backend
  name.  Changing any flag (``hedging``, ``fused_kernels``, tolerance,
  …) changes the key, so a cache directory can be shared across
  heterogeneous runs without cross-contamination.
* :func:`solve_key` — one slot's exact solve inputs on top of a
  structure fingerprint: workload, prices, the previous decision
  anchoring the regularizers, and the warm-start seed.  Backends are
  deterministic (same inputs → same outputs, bitwise; the contract in
  :mod:`repro.solvers.backends.base`), so replaying a stored result for
  an exact key match is byte-identical to re-solving.

All digests are SHA-256 over raw array bytes plus canonical JSON of
the scalar fields — stable across processes, platforms and
``PYTHONHASHSEED`` (nothing here uses Python's randomized ``hash()``).
The schema tag is folded into every digest so a future change to what
a fingerprint covers invalidates old entries instead of silently
matching them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

#: Folded into every digest; bump when fingerprint coverage changes.
FINGERPRINT_SCHEMA = "repro-cache-key/v1"


def _hasher() -> "hashlib._Hash":
    h = hashlib.sha256()
    h.update(FINGERPRINT_SCHEMA.encode())
    return h


def _update_array(h: "hashlib._Hash", name: str, arr: "np.ndarray | None") -> None:
    """Fold one array (or its absence) into a running digest.

    Name, dtype and shape are folded alongside the bytes so ``(2, 3)``
    and ``(3, 2)`` arrays with equal buffers cannot collide, and a
    ``None`` is distinguishable from an empty array.
    """
    h.update(name.encode())
    if arr is None:
        h.update(b"<none>")
        return
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())


def array_digest(arr: "np.ndarray | None") -> str:
    """Hex digest of one array's dtype, shape and bytes."""
    h = _hasher()
    _update_array(h, "array", arr)
    return h.hexdigest()


def network_fingerprint(network: Any) -> str:
    """Digest of a :class:`~repro.model.network.CloudNetwork`'s structure.

    Covers everything the subproblem reads from the network: sizes,
    the SLA edge index arrays, and all capacity/reconfiguration-price
    arrays.  Cloud names and locations are presentation metadata and
    deliberately excluded.
    """
    h = _hasher()
    h.update(
        f"network:{network.n_tier2}:{network.n_tier1}:{network.n_edges}".encode()
    )
    for name in (
        "edge_i",
        "edge_j",
        "tier2_capacity",
        "tier2_recon_price",
        "tier1_capacity",
        "tier1_recon_price",
        "edge_capacity",
        "edge_recon_price",
    ):
        _update_array(h, name, getattr(network, name))
    return h.hexdigest()


def _scalarize(value: Any) -> Any:
    """Canonical JSON-encodable form of one config field."""
    if isinstance(value, float):
        # float.hex() round-trips exactly; repr() does too on CPython,
        # but the hex form is explicit about it.
        return value.hex()
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint config field of type {type(value).__name__}: "
        f"{value!r} (extend repro.cache.fingerprint for new field types)"
    )


def config_fingerprint(config: Any) -> str:
    """Digest of every :class:`SubproblemConfig` field (nested dataclasses
    included), so any flag difference yields a different key."""

    def encode(obj: Any) -> Any:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {
                f.name: encode(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        return _scalarize(obj)

    payload = json.dumps(encode(config), sort_keys=True)
    h = _hasher()
    h.update(b"config:")
    h.update(payload.encode())
    return h.hexdigest()


def structure_fingerprint(network: Any, config: Any) -> str:
    """Key prefix shared by every solve of one (network, config) pair."""
    h = _hasher()
    h.update(b"structure:")
    h.update(network_fingerprint(network).encode())
    h.update(config_fingerprint(config).encode())
    return h.hexdigest()


def solve_key(
    structure_fp: str,
    workload: np.ndarray,
    tier2_price: np.ndarray,
    link_price: np.ndarray,
    previous: Any,
    warm: "np.ndarray | None",
) -> str:
    """Exact-input key of one per-slot solve.

    ``previous`` is the anchoring :class:`~repro.model.allocation.Allocation`;
    all three of its components are hashed (conservative — the solve
    reads only the tier-2 totals and ``y``, but a stricter key can only
    cause an extra miss, never a wrong hit).
    """
    h = _hasher()
    h.update(b"solve:")
    h.update(structure_fp.encode())
    _update_array(h, "workload", np.asarray(workload, dtype=float))
    _update_array(h, "tier2_price", np.asarray(tier2_price, dtype=float))
    _update_array(h, "link_price", np.asarray(link_price, dtype=float))
    _update_array(h, "prev_x", np.asarray(previous.x, dtype=float))
    _update_array(h, "prev_y", np.asarray(previous.y, dtype=float))
    _update_array(h, "prev_s", np.asarray(previous.s, dtype=float))
    _update_array(h, "warm", None if warm is None else np.asarray(warm, dtype=float))
    return h.hexdigest()


def session_key(structure_fp: str, controller_name: str, tag: str = "") -> str:
    """Key of a whole-session state blob (``SolveSession.export_state``).

    ``tag`` distinguishes multiple snapshots of the same structure —
    e.g. a trace name or slot index chosen by the caller.
    """
    h = _hasher()
    h.update(b"session:")
    h.update(structure_fp.encode())
    h.update(controller_name.encode())
    h.update(b":")
    h.update(tag.encode())
    return h.hexdigest()
