"""File-backed keyed store of reusable solver state.

The store is a plain directory of ``.npz`` blobs addressed by the
fingerprint keys of :mod:`repro.cache.fingerprint`:

* ``solve/<k0k1>/<key>.npz`` — one per-slot solve result (the
  edge-space :class:`~repro.model.allocation.Allocation` plus the
  reduced solution vector, i.e. the next slot's warm-start seed);
* ``state/<k0k1>/<key>.npz`` — one whole-session snapshot in the
  checkpoint serialization (:mod:`repro.serve.checkpoint`), so the
  blob format is exactly ``SolveSession.export_state``'s.

Concurrency model: **read-mostly sharing with atomic single-writer
renames** (the CloudRouting ``filecache.py`` idiom).  Writers stage
next to the target under a unique temp name and ``os.replace`` into
place, so readers never observe a partial blob and concurrent writers
of the same key are harmless — both produce identical bytes because a
blob is a deterministic function of its key.  Parallel sweep workers
therefore share one directory with no locking (see
:mod:`repro.evaluation.parallel`).

Corruption is contained by construction: every read validates the
blob's schema and embedded key, and *any* failure (truncated file,
foreign npz, wrong schema) is counted as ``corrupt``, the offending
file is discarded best-effort, and the caller falls back to a cold
solve — a damaged cache can cost time, never correctness.

Counters (``hit``/``miss``/``store``/``evict``/``corrupt``) are kept
per store instance and mirrored into the active
:mod:`repro.obs.metrics` registry as
``solver_cache_ops_total{op=...}``.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.model.allocation import Allocation
from repro.obs import metrics as obs_metrics

#: Schema tag embedded in every solve blob.
STORE_SCHEMA = "repro-solver-cache/v1"

#: Counter operations, in reporting order.
OPS = ("hit", "miss", "store", "evict", "corrupt")


@dataclass
class CacheCounters:
    """Per-store operation counts since construction (or last merge)."""

    hit: int = 0
    miss: int = 0
    store: int = 0
    evict: int = 0
    corrupt: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {op: getattr(self, op) for op in OPS}

    def describe(self) -> str:
        attempts = self.hit + self.miss
        rate = f"{100.0 * self.hit / attempts:.0f}%" if attempts else "n/a"
        parts = ", ".join(f"{op}={getattr(self, op)}" for op in OPS)
        return f"{parts} (hit rate {rate})"


class SolverStateStore:
    """A cache directory of keyed solver-state blobs.

    Parameters
    ----------
    root:
        Cache directory; created on first use.
    max_entries:
        Optional cap on the number of *solve* blobs.  When a store
        pushes the count past the cap, the oldest blobs (by
        modification time, ties broken by key so eviction is
        deterministic) are removed and counted as ``evict``.  Session
        state blobs are few and never evicted.
    """

    def __init__(
        self, root: "str | Path", max_entries: "int | None" = None
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.counters = CacheCounters()
        # In-process memo over the file layer: a key read or written
        # once is served from memory afterwards (read-mostly sharing;
        # files exist for *other* processes and later runs).
        self._memory: "dict[str, tuple[Allocation, np.ndarray]]" = {}
        self._solve_count: "int | None" = None  # lazy; maintained once known

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _blob_path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.npz"

    def _publish(self, op: str, amount: int = 1) -> None:
        setattr(self.counters, op, getattr(self.counters, op) + amount)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter(
                "solver_cache_ops_total",
                help="persistent solver-cache operations",
                op=op,
            ).inc(amount)

    def _discard_corrupt(self, path: Path) -> None:
        self._publish("corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        """Stage-and-rename write; readers never see partial blobs."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed replace
                tmp.unlink()

    # ------------------------------------------------------------------
    # Per-slot solve blobs
    # ------------------------------------------------------------------
    def get_solve(self, key: str) -> "tuple[Allocation, np.ndarray] | None":
        """The stored ``(Allocation, reduced v)`` for ``key``, or ``None``.

        Returned arrays are fresh copies — callers may hold or mutate
        them without poisoning the memo.
        """
        entry = self._memory.get(key)
        if entry is None:
            path = self._blob_path("solve", key)
            try:
                with np.load(path, allow_pickle=False) as data:
                    meta = json.loads(str(data["meta"]))
                    if meta.get("schema") != STORE_SCHEMA or meta.get("key") != key:
                        raise ValueError(
                            f"blob {path} does not match schema/key"
                        )
                    entry = (
                        Allocation(
                            data["x"].copy(), data["y"].copy(), data["s"].copy()
                        ),
                        data["v"].copy(),
                    )
            except FileNotFoundError:
                self._publish("miss")
                return None
            except Exception:
                # Truncated npz, foreign file, schema/key mismatch:
                # discard and fall back to a cold solve.
                self._discard_corrupt(path)
                return None
            self._memory[key] = entry
        self._publish("hit")
        alloc, v = entry
        return (
            Allocation(alloc.x.copy(), alloc.y.copy(), alloc.s.copy()),
            v.copy(),
        )

    def put_solve(self, key: str, allocation: Allocation, v: np.ndarray) -> None:
        """Store one solve result under ``key`` (idempotent)."""
        if key in self._memory:
            return
        self._memory[key] = (
            Allocation(
                np.array(allocation.x, dtype=float, copy=True),
                np.array(allocation.y, dtype=float, copy=True),
                np.array(allocation.s, dtype=float, copy=True),
            ),
            np.array(v, dtype=float, copy=True),
        )
        path = self._blob_path("solve", key)
        if not path.exists():
            meta = json.dumps({"schema": STORE_SCHEMA, "key": key}, sort_keys=True)
            buf = io.BytesIO()
            np.savez(
                buf,
                meta=np.array(meta),
                x=np.asarray(allocation.x, dtype=float),
                y=np.asarray(allocation.y, dtype=float),
                s=np.asarray(allocation.s, dtype=float),
                v=np.asarray(v, dtype=float),
            )
            self._atomic_write(path, buf.getvalue())
            if self._solve_count is not None:
                self._solve_count += 1
        self._publish("store")
        self._maybe_evict()

    # ------------------------------------------------------------------
    # Whole-session state blobs (export_state serialization)
    # ------------------------------------------------------------------
    def put_state(
        self, key: str, snapshot: dict, controller_name: str = ""
    ) -> Path:
        """Store a ``SolveSession.export_state`` snapshot under ``key``.

        Reuses the checkpoint serialization
        (:func:`repro.serve.checkpoint.save_checkpoint` — already
        atomic), so a cached session blob *is* a valid checkpoint.
        """
        from repro.serve.checkpoint import save_checkpoint

        path = self._blob_path("state", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_checkpoint(path, snapshot, controller_name=controller_name)
        self._publish("store")
        return path

    def get_state(self, key: str) -> "dict | None":
        """The stored session snapshot for ``key``, or ``None``."""
        from repro.serve.checkpoint import load_checkpoint

        path = self._blob_path("state", key)
        try:
            snapshot = load_checkpoint(path)
        except FileNotFoundError:
            self._publish("miss")
            return None
        except Exception:
            self._discard_corrupt(path)
            return None
        self._publish("hit")
        return snapshot

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _solve_blobs(self) -> "list[Path]":
        solve_dir = self.root / "solve"
        if not solve_dir.is_dir():
            return []
        return [p for p in solve_dir.glob("*/*.npz")]

    def _maybe_evict(self) -> None:
        if self.max_entries is None:
            return
        if self._solve_count is None:
            self._solve_count = len(self._solve_blobs())
        if self._solve_count <= self.max_entries:
            return
        blobs = self._solve_blobs()
        # Oldest first; key name breaks mtime ties deterministically.
        blobs.sort(key=lambda p: (p.stat().st_mtime_ns, p.name))
        for path in blobs[: len(blobs) - self.max_entries]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another writer
                continue
            self._memory.pop(path.stem, None)
            self._publish("evict")
        self._solve_count = min(len(blobs), self.max_entries)

    def stats(self) -> dict:
        """Directory-level view: entry counts, bytes, and op counters."""
        entries: "dict[str, int]" = {}
        total_bytes = 0
        for kind in ("solve", "state"):
            kind_dir = self.root / kind
            blobs = list(kind_dir.glob("*/*.npz")) if kind_dir.is_dir() else []
            entries[kind] = len(blobs)
            total_bytes += sum(p.stat().st_size for p in blobs)
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "max_entries": self.max_entries,
            "counters": self.counters.as_dict(),
        }

    def clear(self) -> int:
        """Remove every blob; returns the number of entries removed."""
        removed = 0
        for kind in ("solve", "state"):
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            removed += sum(1 for _ in kind_dir.glob("*/*.npz"))
            shutil.rmtree(kind_dir)
        self._memory.clear()
        self._solve_count = 0
        return removed

    def merge_counts(self, ops: "dict[str, int]") -> None:
        """Fold a worker process's op counts into this store's counters.

        The parallel sweep coordinator calls this once per point in
        submission order, so merged totals are independent of worker
        scheduling.
        """
        for op, amount in sorted(ops.items()):
            if op not in OPS:
                raise ValueError(f"unknown cache op {op!r} (expected one of {OPS})")
            if amount:
                self._publish(op, int(amount))

    def __repr__(self) -> str:
        return f"SolverStateStore({str(self.root)!r})"
