"""Persistent cross-run warm-start & solution cache.

The regularized online algorithm re-solves a structurally identical
P2(t) every slot, and a repeated run (replayed serve session, re-run
benchmark, sweep point) re-solves the *same* P2(t) chain from scratch
because all amortized state dies with the process.  This package keeps
that state alive across processes:

* :mod:`~repro.cache.fingerprint` — deterministic SHA-256 keys over
  (network shape, :class:`SubproblemConfig` flags + backend, exact
  per-slot solve inputs);
* :mod:`~repro.cache.store` — a dependency-free, file-backed blob
  store (atomic single-writer renames, read-mostly sharing,
  corruption-tolerant reads, optional deterministic eviction);
* :mod:`~repro.cache.runtime` — the ambient activation switch wired
  to the CLI's ``--cache DIR`` flag.

Because solver backends are deterministic, an exact-key hit replays a
byte-identical decision while skipping the Newton iterations entirely
— the warmest possible warm start.  See ``docs/CACHING.md``.
"""

from repro.cache.fingerprint import (
    FINGERPRINT_SCHEMA,
    array_digest,
    config_fingerprint,
    network_fingerprint,
    session_key,
    solve_key,
    structure_fingerprint,
)
from repro.cache.store import STORE_SCHEMA, CacheCounters, SolverStateStore
from repro.cache import runtime

__all__ = [
    "FINGERPRINT_SCHEMA",
    "STORE_SCHEMA",
    "CacheCounters",
    "SolverStateStore",
    "array_digest",
    "config_fingerprint",
    "network_fingerprint",
    "runtime",
    "session_key",
    "solve_key",
    "structure_fingerprint",
]
