"""Ambient activation of the persistent solver cache.

Mirrors the zero-overhead switch of :mod:`repro.obs.metrics`: no store
is active unless :func:`activate` installed one (the CLI's ``--cache``
flag does), and every layer that can amortize state asks
:func:`active` at construction/solve time instead of threading a store
argument through nine controller stacks.

While inactive, the hot path pays one module-global ``is None`` check
per :class:`~repro.core.subproblem.RegularizedSubproblem` solve —
decisions, Newton paths and timings are exactly the uncached ones.
"""

from __future__ import annotations

from pathlib import Path

from repro.cache.store import SolverStateStore

_active: "SolverStateStore | None" = None


def activate(
    store: "SolverStateStore | str | Path",
    max_entries: "int | None" = None,
) -> SolverStateStore:
    """Install ``store`` (or a new store at a directory) as the active one."""
    global _active
    if not isinstance(store, SolverStateStore):
        store = SolverStateStore(store, max_entries=max_entries)
    _active = store
    return store


def deactivate() -> None:
    """Return to the no-cache default."""
    global _active
    _active = None


def active() -> "SolverStateStore | None":
    """The active store, or ``None`` while caching is disabled."""
    return _active


def active_dir() -> "str | None":
    """The active store's directory (workers re-activate from this)."""
    return None if _active is None else str(_active.root)


class use:
    """Context manager installing a store for the block (tests)."""

    def __init__(
        self,
        store: "SolverStateStore | str | Path",
        max_entries: "int | None" = None,
    ) -> None:
        if not isinstance(store, SolverStateStore):
            store = SolverStateStore(store, max_entries=max_entries)
        self.store = store
        self._saved: "SolverStateStore | None" = None

    def __enter__(self) -> SolverStateStore:
        global _active
        self._saved = _active
        _active = self.store
        return self.store

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._saved
