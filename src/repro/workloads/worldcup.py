"""WorldCup-98-like workload generator (Fig. 4b regime).

The paper uses the HTTP-server trace of the 1998 World Cup [3],
restricted to its most bursty 600 hours (hours 901-1500 of the
original): a modest diurnal baseline punctuated by very large
match-day spikes — demand jumping by factors of 5-10 within an hour
or two and decaying over a few hours after the match.

This generator reproduces that regime: a diurnal baseline plus a
schedule of evening match events with heavy-tailed amplitudes, sharp
onset and short decay.  See DESIGN.md §4 for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator
from repro.workloads.synthetic import diurnal_profile


@dataclass
class WorldCupLikeWorkload:
    """Seeded generator for the bursty (flash-crowd) regime.

    Parameters
    ----------
    horizon:
        Number of hours (the paper uses 600).
    peak:
        Target peak demand (trace normalized so its maximum equals it).
    matches_per_week:
        Expected number of spike events per 168-hour week.
    spike_factor_range:
        ``(low, high)`` of the Pareto-ish spike amplitude relative to
        the baseline mean.
    rise_hours, decay_hours:
        Onset and decay lengths of each spike.
    seed:
        RNG seed for reproducibility.
    """

    horizon: int = 600
    peak: float = 1.0
    matches_per_week: float = 10.0
    spike_factor_range: tuple[float, float] = (3.0, 9.0)
    rise_hours: int = 2
    decay_hours: int = 4
    noise_std: float = 0.05
    seed: "int | None" = 1998

    name = "worldcup-like"

    def generate(self) -> np.ndarray:
        """Hourly demand, shape ``(horizon,)``, max exactly ``peak``."""
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.peak <= 0:
            raise ValueError("peak must be > 0")
        lo, hi = self.spike_factor_range
        if not (0 < lo <= hi):
            raise ValueError("spike_factor_range must satisfy 0 < low <= high")
        rng = as_generator(self.seed)

        base = diurnal_profile(self.horizon, base=0.12, amplitude=0.06)
        noise = rng.lognormal(0.0, self.noise_std, size=self.horizon)
        lam = base * noise

        n_events = rng.poisson(self.matches_per_week * self.horizon / 168.0)
        if n_events:
            # Matches start in the afternoon/evening hours of each day.
            days = rng.integers(0, max(self.horizon // 24, 1), size=n_events)
            hour_in_day = rng.integers(13, 21, size=n_events)
            starts = np.minimum(days * 24 + hour_in_day, self.horizon - 1)
            amps = rng.uniform(lo, hi, size=n_events) * base.mean()
            rise = np.linspace(0.0, 1.0, self.rise_hours + 1)[1:]
            decay = np.exp(-np.arange(1, self.decay_hours + 1) / 1.5)
            shape = np.concatenate([rise, decay])
            for s, amp in zip(starts, amps):
                stop = min(s + shape.size, self.horizon)
                lam[s:stop] += amp * shape[: stop - s]
        return lam * (self.peak / lam.max())
