"""Request-level arrival simulation and hourly aggregation.

The paper's workloads are *request logs* aggregated to hourly counts
("the original workload files record the URL requests at a second
granularity, we aggregate the number of requests by hour").  This
module provides that bottom layer: a non-homogeneous Poisson arrival
process driven by an hourly rate profile, and the aggregation back to
hourly counts — so request-level experiments (e.g. admission control
on top of the allocation) and the fluid model used by the algorithms
share one source of truth.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator
from repro.util.validation import check_nonnegative


def simulate_arrivals(
    hourly_rate: np.ndarray,
    seed=None,
    max_events: int = 50_000_000,
) -> np.ndarray:
    """Sample request arrival times from an hourly rate profile.

    The intensity is piecewise-constant: ``hourly_rate[h]`` requests
    per hour during hour ``h``.  Returns sorted arrival times in hours
    (floats in ``[0, len(hourly_rate))``).

    Uses per-hour Poisson counts + uniform placement, which is exact
    for a piecewise-constant intensity and fully vectorized.
    """
    rate = check_nonnegative("hourly_rate", np.atleast_1d(hourly_rate))
    rng = as_generator(seed)
    counts = rng.poisson(rate)
    total = int(counts.sum())
    if total > max_events:
        raise ValueError(
            f"would generate {total} events (> max_events={max_events}); "
            "scale the rate down or raise the cap"
        )
    if total == 0:
        return np.zeros(0)
    hours = np.repeat(np.arange(rate.shape[0], dtype=float), counts)
    times = hours + rng.random(total)
    times.sort()
    return times


def aggregate_hourly(
    arrival_times: np.ndarray, horizon: "int | None" = None
) -> np.ndarray:
    """Hourly request counts from arrival times (the paper's rule).

    ``horizon`` pads/truncates to a fixed number of hours; by default
    it is the ceiling of the last arrival time.
    """
    times = np.atleast_1d(np.asarray(arrival_times, dtype=float))
    if times.size and times.min() < 0:
        raise ValueError("arrival times must be >= 0")
    if horizon is None:
        horizon = int(np.ceil(times.max())) if times.size else 0
        horizon = max(horizon, 1)
    counts = np.zeros(horizon)
    if times.size:
        idx = np.floor(times).astype(int)
        idx = idx[idx < horizon]
        np.add.at(counts, idx, 1.0)
    return counts


def hourly_counts_from_profile(
    hourly_rate: np.ndarray, seed=None
) -> np.ndarray:
    """End-to-end: simulate a request stream and re-aggregate it.

    The result is a Poisson-noisy realization of the profile — the
    natural way to add *sampling* noise (as opposed to model noise) to
    the synthetic generators: relative noise shrinks as rates grow,
    exactly like real aggregated logs.
    """
    rate = np.atleast_1d(np.asarray(hourly_rate, dtype=float))
    times = simulate_arrivals(rate, seed=seed)
    return aggregate_hourly(times, horizon=rate.shape[0])
