"""Trace utilities: CSV loading and multi-cloud replication.

The paper replicates the (single) trace across all tier-1 clouds to
simulate each edge cloud's workload; :func:`replicate_across_clouds`
implements that, optionally with per-cloud phase shifts or scaling so
clouds are not perfectly synchronized.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.util.rng import as_generator
from repro.util.validation import check_nonnegative


def load_hourly_csv(path: "str | Path", column: int = -1) -> np.ndarray:
    """Load an hourly demand trace from a CSV file.

    Accepts either a single-column file of hourly counts or a
    multi-column file (``column`` selects which one; default last).
    Blank lines are skipped, and a leading header row (non-numeric in
    the selected column) is skipped automatically.  Any *other*
    malformed row — non-numeric value or missing column — raises a
    line-numbered :class:`ValueError` instead of being silently
    dropped, so a corrupted export cannot shorten a trace unnoticed.
    """
    values: list[float] = []
    with open(path, newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            if not row or all(not cell.strip() for cell in row):
                continue  # blank line
            try:
                values.append(float(row[column]))
            except IndexError:
                raise ValueError(
                    f"{path}: line {lineno} has {len(row)} columns, "
                    f"cannot select column {column}"
                ) from None
            except ValueError:
                if not values:
                    continue  # leading header row
                raise ValueError(
                    f"{path}: malformed value {row[column]!r} on line {lineno}"
                ) from None
    if not values:
        raise ValueError(f"no numeric rows found in {path}")
    return check_nonnegative("trace", np.asarray(values, dtype=float))


def replicate_across_clouds(
    trace: np.ndarray,
    n_clouds: int,
    phase_shift_hours: int = 0,
    scale_jitter: float = 0.0,
    seed=None,
) -> np.ndarray:
    """Build a ``(T, J)`` workload matrix from one ``(T,)`` trace.

    Parameters
    ----------
    trace:
        Hourly demand, ``(T,)``.
    n_clouds:
        Number of tier-1 clouds ``J``.
    phase_shift_hours:
        When nonzero, cloud ``j`` sees the trace rolled by
        ``j * phase_shift_hours`` hours (e.g. time zones).
    scale_jitter:
        When nonzero, each cloud's copy is scaled by a lognormal
        factor with this sigma (heterogeneous demand volumes).
    """
    trace = check_nonnegative("trace", np.atleast_1d(np.asarray(trace, float)))
    if n_clouds < 1:
        raise ValueError("n_clouds must be >= 1")
    cols = []
    rng = as_generator(seed)
    for j in range(n_clouds):
        col = np.roll(trace, j * phase_shift_hours)
        if scale_jitter > 0:
            col = col * rng.lognormal(0.0, scale_jitter)
        cols.append(col)
    return np.stack(cols, axis=1)
