"""Generic synthetic workload shapes.

Small, composable generators used by tests, examples and the two
trace-like generators.  All return 1-D ``(T,)`` arrays of non-negative
hourly demand; multi-cloud workloads are built by replication or by
stacking independent draws (see :mod:`repro.workloads.traces`).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator


def diurnal_profile(
    horizon: int,
    base: float = 1.0,
    amplitude: float = 0.4,
    period: int = 24,
    peak_hour: int = 14,
) -> np.ndarray:
    """Sinusoidal day/night demand profile.

    ``base`` is the mean level; the curve peaks at ``peak_hour`` within
    each ``period``-hour day and never goes negative (amplitude is
    clipped to ``base``).
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    amplitude = min(amplitude, base)
    hours = np.arange(horizon)
    phase = 2.0 * np.pi * (hours - peak_hour) / period
    return base + amplitude * np.cos(phase)


def constant_workload(horizon: int, level: float = 1.0) -> np.ndarray:
    """Constant demand (the trivial baseline shape)."""
    if level < 0:
        raise ValueError("level must be >= 0")
    return np.full(horizon, float(level))


def ramp_workload(
    horizon: int, start: float, stop: float
) -> np.ndarray:
    """Linear ramp from ``start`` to ``stop`` over the horizon."""
    if start < 0 or stop < 0:
        raise ValueError("levels must be >= 0")
    return np.linspace(start, stop, horizon)


def spike_train(
    horizon: int,
    base: float,
    n_spikes: int,
    spike_height: float,
    spike_width: int = 3,
    seed=None,
) -> np.ndarray:
    """Baseline demand with randomly placed sharp spikes.

    Each spike rises instantly to ``base + spike_height`` and decays
    linearly over ``spike_width`` hours — the flash-crowd shape that
    defeats prediction-based control.
    """
    if n_spikes < 0 or spike_width < 1:
        raise ValueError("n_spikes >= 0 and spike_width >= 1 required")
    rng = as_generator(seed)
    lam = np.full(horizon, float(base))
    if n_spikes == 0 or horizon == 0:
        return lam
    starts = rng.choice(horizon, size=min(n_spikes, horizon), replace=False)
    taper = np.linspace(1.0, 0.0, spike_width, endpoint=False)
    for s in starts:
        stop = min(s + spike_width, horizon)
        lam[s:stop] += spike_height * taper[: stop - s]
    return lam


def random_walk_workload(
    horizon: int,
    start: float,
    step_std: float,
    lower: float = 0.0,
    upper: float = np.inf,
    seed=None,
) -> np.ndarray:
    """Reflected Gaussian random walk (for property-based stress tests)."""
    if not (lower <= start <= upper):
        raise ValueError("start must lie within [lower, upper]")
    rng = as_generator(seed)
    steps = rng.normal(0.0, step_std, size=horizon)
    lam = np.empty(horizon)
    cur = float(start)
    for t in range(horizon):
        cur = float(np.clip(cur + steps[t], lower, upper))
        lam[t] = cur
    return lam
