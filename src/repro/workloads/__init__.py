"""Workload substrate.

The paper evaluates on the October-2007 Wikipedia trace (500 hours,
regular diurnal dynamics) and the most bursty 600 hours of the
WorldCup-98 HTTP trace (large spikes).  The raw traces are not
shipped; :mod:`repro.workloads.wikipedia` and
:mod:`repro.workloads.worldcup` generate seeded synthetic hourly
traces reproducing the two regimes (see DESIGN.md §4), and
:mod:`repro.workloads.traces` loads real hourly CSV exports for users
who have them.  :mod:`repro.workloads.synthetic` provides the generic
shapes used in tests and adversarial constructions.
"""

from repro.workloads.synthetic import (
    constant_workload,
    diurnal_profile,
    ramp_workload,
    random_walk_workload,
    spike_train,
)
from repro.workloads.wikipedia import WikipediaLikeWorkload
from repro.workloads.worldcup import WorldCupLikeWorkload
from repro.workloads.traces import load_hourly_csv, replicate_across_clouds
from repro.workloads.arrivals import (
    aggregate_hourly,
    hourly_counts_from_profile,
    simulate_arrivals,
)

__all__ = [
    "diurnal_profile",
    "constant_workload",
    "ramp_workload",
    "spike_train",
    "random_walk_workload",
    "WikipediaLikeWorkload",
    "WorldCupLikeWorkload",
    "load_hourly_csv",
    "replicate_across_clouds",
    "simulate_arrivals",
    "aggregate_hourly",
    "hourly_counts_from_profile",
]
