"""Wikipedia-October-2007-like workload generator (Fig. 4a regime).

The paper aggregates the 2007 Wikipedia URL-request trace [21] to
hourly counts over 500 hours.  The trace is characterized by *regular
dynamics*: a strong diurnal cycle, a mild weekly modulation
(weekends ~10 % lower), small multiplicative noise and a slow upward
trend, with ramp-down phases commonly longer than 10 hours (the paper
notes ~40 % of ramp-downs exceed 10 slots — the property that defeats
FHC/RHC in Fig. 8).

This generator reproduces those properties with a seeded synthetic
model; see DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator
from repro.workloads.synthetic import diurnal_profile


@dataclass
class WikipediaLikeWorkload:
    """Seeded generator for the regular-dynamics regime.

    Parameters
    ----------
    horizon:
        Number of hours (the paper uses 500).
    peak:
        Target peak demand; the trace is normalized so its maximum is
        exactly this value (capacities are provisioned from the peak,
        so this sets the problem's scale — default 1.0, i.e. the
        normalized units recommended by the paper's Remarks).
    diurnal_amplitude:
        Day/night swing as a fraction of the mean level.
    weekend_dip:
        Relative demand reduction on weekend days.
    noise_std:
        Lognormal multiplicative noise sigma.
    trend:
        Total relative growth across the horizon.
    seed:
        RNG seed for reproducibility.
    """

    horizon: int = 500
    peak: float = 1.0
    diurnal_amplitude: float = 0.45
    weekend_dip: float = 0.12
    noise_std: float = 0.04
    trend: float = 0.08
    seed: "int | None" = 2007

    name = "wikipedia-like"

    def generate(self) -> np.ndarray:
        """Hourly demand, shape ``(horizon,)``, max exactly ``peak``."""
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.peak <= 0:
            raise ValueError("peak must be > 0")
        rng = as_generator(self.seed)
        hours = np.arange(self.horizon)

        base = diurnal_profile(
            self.horizon, base=1.0, amplitude=self.diurnal_amplitude
        )
        # Weekly modulation: days 5 and 6 of each week dip.
        day = (hours // 24) % 7
        weekly = np.where(day >= 5, 1.0 - self.weekend_dip, 1.0)
        trend = 1.0 + self.trend * hours / max(self.horizon - 1, 1)
        noise = rng.lognormal(mean=0.0, sigma=self.noise_std, size=self.horizon)

        lam = base * weekly * trend * noise
        return lam * (self.peak / lam.max())
