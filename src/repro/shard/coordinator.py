"""The sharded serve coordinator: fan-out, merge, restart.

:class:`ShardedServeLoop` partitions the tier-1 edge clouds across
worker shards (:func:`repro.shard.partition.plan_partition`), runs one
:mod:`repro.shard.worker` process per shard, and merges the per-shard
decision streams back into a global per-slot allocation:

* **fan-out** — each worker owns an order-preserving sub-network
  (:class:`~repro.shard.subnet.ShardView`) and reads the slot source
  itself (sources are deterministic), so the coordinator ships no slot
  data, only merges results;
* **merge** — global slot ``t`` completes when every shard's slot-``t``
  message has arrived; the sub-decisions scatter into global
  edge-space arrays (disjoint index sets — component closure), the
  coordinator mirrors the single-process loop's event stream
  (``slot_decided`` / ``fallback`` / ``deadline_miss``) and latency
  histograms against its own registry, and folds the shards'
  :class:`~repro.engine.stats.StepStats` into one merged entry;
* **failure detection** — a dead pipe / dead process (or a shard whose
  messages stall past ``heartbeat_timeout_s``) triggers a
  ``shard_down`` event and a relaunch from the shard's own checkpoint;
  the relaunched worker re-sends any slots the coordinator never saw
  (bitwise from the checkpoint) and resumes serving — merged output is
  byte-identical to a kill-free run (test-asserted);
* **telemetry** — workers stream shard-labeled registries into a
  shared telemetry directory; the coordinator's report and ``repro
  shard status`` read the merged view, and with ``--metrics`` the
  shard-labeled entries are folded into the parent registry at the
  end (only the labeled entries — the coordinator mirrors the
  unlabeled ``serve_*`` families itself, so nothing lands twice).

The coordinator's layout checkpoint (``repro-shard-ckpt/v1`` JSON)
records the partition plan, the merged progress and the shard
checkpoint/event-log paths, so :meth:`ShardedServeLoop.resume`
reconstructs a sharded run exactly — shard assignments included.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from pathlib import Path

import numpy as np

from repro.cache import runtime as cache_runtime
from repro.engine.stats import RunStats, StepStats
from repro.model.allocation import Allocation, Trajectory
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.serve.events import EVENT_SCHEMA, EventLog, summarize_events
from repro.serve.faults import FaultInjector
from repro.serve.runtime import ServeReport, SlotOutcome
from repro.serve.sources import as_source
from repro.shard.partition import (
    PARTITION_POLICIES,
    ShardPlan,
    historical_demand,
    plan_partition,
)
from repro.shard.subnet import ShardView
from repro.shard.worker import ShardPayload, worker_main

#: Schema identifier of the coordinator's layout checkpoint.
SHARD_CHECKPOINT_SCHEMA = "repro-shard-ckpt/v1"


@dataclass(frozen=True)
class ShardedServeConfig:
    """Runtime policy of a :class:`ShardedServeLoop`.

    ``deadline_s``/``enforce``/``injector``/``hold_tol``/``max_slots``
    mirror :class:`~repro.serve.runtime.ServeConfig` and are applied
    per shard.  ``checkpoint_path`` names the coordinator's *layout*
    checkpoint (JSON); per-shard checkpoints/event logs live next to
    it (``<path>.shard<k>.npz`` / ``.events.jsonl``), or in a scratch
    directory when no path is given — workers always checkpoint every
    slot so a killed shard can resume regardless of the coordinator's
    own cadence.  ``kill_shard`` maps shard index to the slot after
    which that worker hard-exits (fault-injection tests and the CI
    shard-smoke job).
    """

    n_shards: int = 2
    partition: str = "round-robin"
    deadline_s: "float | None" = None
    enforce: str = "thread"
    checkpoint_path: "str | Path | None" = None
    checkpoint_every: int = 0
    injector: "FaultInjector | None" = None
    max_slots: "int | None" = None
    hold_tol: float = 1e-7
    telemetry_dir: "str | Path | None" = None
    kill_shard: "dict[int, int]" = field(default_factory=dict)
    heartbeat_timeout_s: float = 60.0
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.partition not in PARTITION_POLICIES:
            raise ValueError(
                f"unknown partition policy {self.partition!r}; --partition "
                f"must be one of {', '.join(PARTITION_POLICIES)}"
            )
        if self.deadline_s is not None and not (self.deadline_s > 0):
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s!r}: a "
                "non-positive per-slot budget would fail every primary "
                "solve before it starts.  Pass a positive --deadline-ms "
                "(or omit it to disable deadline enforcement)."
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every and self.checkpoint_path is None:
            raise ValueError("checkpoint_every set but no checkpoint_path")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


class _Shard:
    """Coordinator-side bookkeeping of one worker shard."""

    def __init__(self, index: int, assignment: "tuple[int, ...]", view: ShardView):
        self.index = index
        self.assignment = assignment
        self.view = view
        self.process: "multiprocessing.Process | None" = None
        self.conn = None
        self.buffer: "dict[int, dict]" = {}  # t -> slot message
        self.next_expected = 0  # next slot t this shard will send
        self.eof = False  # pipe hit EOF (worker end closed)
        self.ended = False
        self.end_error: "str | None" = None
        self.restarts = 0
        self.last_message = time.monotonic()


def save_layout_checkpoint(
    path: "str | Path",
    *,
    t: int,
    plan: ShardPlan,
    controller_name: str,
    backend: "str | None",
    paths: "list[str]",
    step_stats: "list[StepStats]",
    shards: "list[dict]",
) -> Path:
    """Atomically write the coordinator's layout checkpoint (JSON)."""
    path = Path(path)
    record = {
        "schema": SHARD_CHECKPOINT_SCHEMA,
        "t": int(t),
        "plan": plan.to_json(),
        "controller": controller_name,
        "backend": backend,
        "paths": list(paths),
        "step_stats": [s.to_dict() for s in step_stats],
        "shards": shards,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(record, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_layout_checkpoint(path: "str | Path") -> dict:
    """Load and schema-check a layout checkpoint."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    if record.get("schema") != SHARD_CHECKPOINT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported shard checkpoint schema "
            f"{record.get('schema')!r} (expected {SHARD_CHECKPOINT_SCHEMA!r})"
        )
    return record


class ShardedServeLoop:
    """Serve a slot source with ``n_shards`` worker processes.

    The public surface mirrors :class:`~repro.serve.runtime.ServeLoop`:
    construct (or :meth:`resume`), then :meth:`run` to a
    :class:`~repro.serve.runtime.ServeReport` whose merged trajectory,
    event summary and per-slot outcomes are byte-compatible with the
    single-process loop's.
    """

    def __init__(
        self,
        controller,
        source,
        config: "ShardedServeConfig | None" = None,
        event_log: "EventLog | None" = None,
        *,
        health=None,
        on_slot=None,
        plan: "ShardPlan | None" = None,
        _steps: "list[Allocation] | None" = None,
        _paths: "list[str] | None" = None,
        _step_stats: "list[StepStats] | None" = None,
        _start_t: int = 0,
    ) -> None:
        self.controller = controller
        self.source = as_source(source)
        self.config = config or ShardedServeConfig()
        self.log = event_log if event_log is not None else EventLog()
        self.health = health
        self.on_slot = on_slot
        self.plan = plan or plan_partition(
            self.source.network,
            self.config.n_shards,
            self.config.partition,
            demand=historical_demand(self.source),
        )
        self.plan.validate(self.source.network)
        self.steps: "list[Allocation]" = list(_steps or [])
        self.paths: "list[str]" = list(_paths or [])
        self.step_stats: "list[StepStats]" = list(_step_stats or [])
        self.t = _start_t
        self._outcomes: "list[SlotOutcome]" = []
        self._scratch: "tempfile.TemporaryDirectory | None" = None
        self._owns_telemetry_scratch = False

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        controller,
        source,
        checkpoint_path: "str | Path",
        config: "ShardedServeConfig | None" = None,
        event_log: "EventLog | None" = None,
        *,
        health=None,
        on_slot=None,
    ) -> "ShardedServeLoop":
        """Rebuild a sharded run from its layout checkpoint.

        The partition plan is restored from the checkpoint (never
        recomputed — a policy change must not reshuffle a half-served
        run), the merged decisions up to the recorded ``t`` are
        reconstructed from the shard checkpoints, and each worker is
        relaunched in resume mode re-sending from ``t``.
        """
        record = load_layout_checkpoint(checkpoint_path)
        name = record.get("controller", "")
        if name and name != controller.name:
            raise ValueError(
                f"layout checkpoint {checkpoint_path} was written by "
                f"controller {name!r}, cannot resume with {controller.name!r}"
            )
        src = as_source(source)
        plan = ShardPlan.from_json(record["plan"])
        cfg = config or ShardedServeConfig(
            n_shards=plan.n_shards, partition=plan.policy,
            checkpoint_path=checkpoint_path, checkpoint_every=1,
        )
        if cfg.n_shards != plan.n_shards:
            raise ValueError(
                f"layout checkpoint records {plan.n_shards} shards, "
                f"relaunched with --shards {cfg.n_shards}; the shard count "
                "cannot change across a resume"
            )
        t = int(record["t"])
        steps = _merged_steps_from_shards(src.network, plan, record["shards"], t)
        loop = cls(
            controller,
            src,
            config=cfg,
            event_log=event_log,
            health=health,
            on_slot=on_slot,
            plan=plan,
            _steps=steps,
            _paths=list(record["paths"])[:t],
            _step_stats=[StepStats.from_dict(s) for s in record["step_stats"]][:t],
            _start_t=t,
        )
        loop._resume_record = record
        return loop

    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        cfg = self.config
        network = self.source.network
        start_t = self.t
        backend = getattr(
            getattr(self.controller, "config", None), "backend", None
        )
        telemetry_dir = self._resolve_telemetry_dir()
        shard_files = self._resolve_shard_files()
        self.log.emit(
            "serve_resume" if start_t else "serve_start",
            t=start_t,
            schema=EVENT_SCHEMA,
            controller=self.controller.name,
            backend=backend,
            source=repr(self.source),
            deadline_s=cfg.deadline_s,
            enforce=cfg.enforce if cfg.deadline_s is not None else None,
            cache=cache_runtime.active_dir(),
            shards=self.plan.n_shards,
            partition=self.plan.policy,
            assignments=[list(a) for a in self.plan.assignments],
        )

        shards = [
            _Shard(k, assignment, ShardView(network, assignment))
            for k, assignment in enumerate(self.plan.assignments)
        ]
        for shard in shards:
            shard.next_expected = start_t
            self._launch(
                shard, shard_files, telemetry_dir,
                resume=start_t > 0, resend_from=start_t,
            )

        # The coordinator reads the source itself — only for the global
        # slot data the health monitor and merge bookkeeping need; the
        # workers each iterate their own copy of the (deterministic)
        # source, so nothing is shipped over the pipes but decisions.
        slots = self.source.slots(start_t)
        error: "str | None" = None
        count = 0
        try:
            while cfg.max_slots is None or count < cfg.max_slots:
                slot_start = time.perf_counter()
                try:
                    slot = next(slots)
                except StopIteration:
                    break
                except ValueError as exc:
                    error = str(exc)
                    self.log.emit("source_error", t=self.t, message=error)
                    break
                source_elapsed = time.perf_counter() - slot_start
                messages = self._collect_slot(shards, self.t, telemetry_dir)
                if messages is None:
                    # every shard ended before producing this slot
                    break
                outcome = self._merge_slot(self.t, slot, messages)
                outcome.phases["source_read"] = source_elapsed
                count += 1
                if (
                    cfg.checkpoint_every
                    and (self.t % cfg.checkpoint_every == 0)
                ):
                    ck_start = time.perf_counter()
                    self._write_checkpoint(shard_files)
                    outcome.phases["checkpoint"] = (
                        time.perf_counter() - ck_start
                    )
                outcome.slot_wall = time.perf_counter() - slot_start
                outcome.phases["overhead"] = max(
                    outcome.slot_wall - sum(outcome.phases.values()), 0.0
                )
                self._publish_slot(outcome)
                if self.health is not None:
                    self.health.observe_slot(
                        outcome.t, slot, outcome.decision,
                        outcome=outcome, log=self.log,
                    )
                obs_telemetry.autoflush()
                if self.on_slot is not None:
                    self.on_slot(self, outcome)
            self._drain_ends(shards)
            for shard in shards:
                if shard.end_error and error is None:
                    error = f"shard {shard.index}: {shard.end_error}"
        finally:
            self._reap(shards)
            if cfg.checkpoint_path is not None and self.t > start_t:
                self._write_checkpoint(shard_files)
            self._fold_telemetry(telemetry_dir)
            self._cleanup_scratch()
        return self._finish(error)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _launch(
        self,
        shard: _Shard,
        shard_files: "dict[int, tuple[str, str]]",
        telemetry_dir: "str | None",
        *,
        resume: bool,
        resend_from: int,
    ) -> None:
        cfg = self.config
        ckpt_path, events_path = shard_files[shard.index]
        payload = ShardPayload(
            shard=shard.index,
            assignment=shard.assignment,
            source=self.source,
            controller=self.controller,
            checkpoint_path=ckpt_path,
            events_path=events_path,
            deadline_s=cfg.deadline_s,
            enforce=cfg.enforce,
            checkpoint_every=1,
            injector=cfg.injector,
            hold_tol=cfg.hold_tol,
            telemetry_dir=telemetry_dir,
            cache_dir=cache_runtime.active_dir(),
            resume=resume,
            resend_from=resend_from,
            kill_after=cfg.kill_shard.get(shard.index),
        )
        # fork: sources/controllers go over as live objects, no pickling
        ctx = multiprocessing.get_context("fork")
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main, args=(payload, send), daemon=True
        )
        proc.start()
        send.close()  # keep only the worker's copy — EOF then means death
        shard.process, shard.conn = proc, recv
        shard.eof = False
        shard.ended = False
        shard.last_message = time.monotonic()

    def _restart(
        self,
        shard: _Shard,
        shard_files: "dict[int, tuple[str, str]]",
        telemetry_dir: "str | None",
    ) -> None:
        proc = shard.process
        exitcode = proc.exitcode if proc is not None else None
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            exitcode = proc.exitcode
        if shard.conn is not None:
            shard.conn.close()
        if shard.restarts >= self.config.max_restarts:
            raise RuntimeError(
                f"shard {shard.index} died (exit code {exitcode}) and "
                f"exhausted its {self.config.max_restarts} restarts"
            )
        shard.restarts += 1
        self.log.emit(
            "shard_down",
            t=shard.next_expected,
            shard=shard.index,
            exitcode=exitcode,
            restarts=shard.restarts,
        )
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter(
                "shard_restarts_total",
                help="shard worker restarts, by shard",
                shard=str(shard.index),
            ).inc()
        self._launch(
            shard, shard_files, telemetry_dir,
            resume=True, resend_from=shard.next_expected,
        )
        self.log.emit(
            "shard_restart",
            t=shard.next_expected,
            shard=shard.index,
            resend_from=shard.next_expected,
        )

    def _pump(self, shard: _Shard) -> None:
        """Drain every message currently readable on one shard's pipe."""
        while shard.conn is not None and not shard.eof and shard.conn.poll(0):
            try:
                message = shard.conn.recv()
            except (EOFError, OSError):
                # poll() stays truthy on a closed pipe; remember the EOF
                # so death detection is immediate, not heartbeat-paced.
                shard.eof = True
                return
            shard.last_message = time.monotonic()
            if message.get("type") == "end":
                shard.ended = True
                shard.end_error = message.get("error")
                return
            t = int(message["t"])
            shard.buffer[t] = message
            shard.next_expected = max(shard.next_expected, t + 1)

    def _collect_slot(
        self,
        shards: "list[_Shard]",
        t: int,
        telemetry_dir: "str | None",
    ) -> "list[dict] | None":
        """Block until every shard's slot-``t`` message is buffered.

        Pumps *all* pipes while waiting (a 64 KiB pipe buffer would
        otherwise deadlock a fast shard against a slow one), restarts
        shards that die, and returns ``None`` when every shard ended
        without producing ``t`` (source exhausted).
        """
        shard_files = self._resolve_shard_files()
        while True:
            pending = [s for s in shards if t not in s.buffer]
            for shard in pending:
                self._pump(shard)
            pending = [s for s in shards if t not in s.buffer]
            if not pending:
                return [s.buffer.pop(t) for s in shards]
            if all(s.ended for s in pending):
                if any(t in s.buffer for s in shards):
                    dead = [s.index for s in pending]
                    raise RuntimeError(
                        f"shards {dead} ended at slot {t} while others "
                        "kept serving; shards disagree on the horizon"
                    )
                return None
            live = [s for s in pending if not s.ended]
            conns = [s.conn for s in live if s.conn is not None]
            if conns:
                conn_wait(conns, timeout=0.1)
            now = time.monotonic()
            for shard in live:
                self._pump(shard)  # drain anything sent before a death
                died = shard.eof or (
                    shard.process is not None
                    and not shard.process.is_alive()
                    and not shard.conn.poll(0)
                )
                hung = now - shard.last_message > self.config.heartbeat_timeout_s
                if (died or hung) and t not in shard.buffer and not shard.ended:
                    self._restart(shard, shard_files, telemetry_dir)

    def _drain_ends(self, shards: "list[_Shard]") -> None:
        """Wait for every live worker's end message (or its death)."""
        deadline = time.monotonic() + self.config.heartbeat_timeout_s
        while time.monotonic() < deadline:
            for shard in shards:
                self._pump(shard)
            live = [s for s in shards if not s.ended]
            if not live:
                return
            if all(
                s.process is None or not s.process.is_alive() for s in live
            ):
                return
            conns = [s.conn for s in live if s.conn is not None]
            if conns:
                conn_wait(conns, timeout=0.1)

    def _reap(self, shards: "list[_Shard]") -> None:
        for shard in shards:
            if shard.process is not None and shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            if shard.conn is not None:
                shard.conn.close()

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge_slot(
        self, t: int, slot, messages: "list[dict]"
    ) -> SlotOutcome:
        """Fold every shard's slot-``t`` message into the global slot."""
        network = self.source.network
        x = np.zeros(network.n_edges)
        y = np.zeros(network.n_edges)
        s = np.zeros(network.n_edges)
        for shard_msg in messages:
            view = self._views[int(shard_msg["shard"])]
            view.lift_into(x, y, s, Allocation(
                np.asarray(shard_msg["x"], dtype=float),
                np.asarray(shard_msg["y"], dtype=float),
                np.asarray(shard_msg["s"], dtype=float),
            ))
        decision = Allocation(x, y, s)
        shard_paths = [str(m["path"]) for m in messages]
        path = shard_paths[0] if len(set(shard_paths)) == 1 else "mixed"
        wall = max(float(m["wall_time"]) for m in messages)
        missed = any(m["deadline_missed"] for m in messages)
        served = all(m["served"] for m in messages)
        errors = [m["error"] for m in messages if m.get("error")]
        error = str(errors[0]) if errors else None
        # Mirror the single-process event stream against the
        # coordinator's registry: the merged run's unlabeled serve_*
        # families must count global slots exactly like a single
        # process would (the shards' own copies are shard-labeled).
        if missed:
            self.log.emit(
                "deadline_miss", t=t, wall_time=wall,
                enforce=self.config.enforce,
            )
        if path != "primary":
            self.log.emit("fallback", t=t, reason=error or "shard-fallback")
        self.log.emit(
            "slot_decided",
            t=t,
            path=path,
            wall_time=wall,
            deadline_missed=missed,
            served=served,
            error=error,
        )
        stats = _merge_step_stats(t, messages)
        self.steps.append(decision)
        self.paths.append(path)
        self.step_stats.append(stats)
        self.t = t + 1
        outcome = SlotOutcome(
            t, path, wall,
            deadline_missed=missed, served=served, error=error,
            decision=decision,
            phases={"solve": wall, "fallback": 0.0, "events": 0.0},
        )
        self._outcomes.append(outcome)
        return outcome

    @property
    def _views(self) -> "dict[int, ShardView]":
        cached = getattr(self, "_views_cache", None)
        if cached is None:
            cached = {
                k: ShardView(self.source.network, a)
                for k, a in enumerate(self.plan.assignments)
            }
            self._views_cache = cached
        return cached

    def _publish_slot(self, outcome: SlotOutcome) -> None:
        reg = obs_metrics.active()
        if reg is None:
            return
        reg.histogram(
            "serve_slot_seconds",
            help="total wall time per slot (source read through checkpoint)",
        ).observe(outcome.slot_wall)
        for phase, seconds in outcome.phases.items():
            reg.histogram(
                "serve_phase_seconds",
                help="slot wall time attributed to each serve phase",
                phase=phase,
            ).observe(seconds)

    # ------------------------------------------------------------------
    # durability + report
    # ------------------------------------------------------------------
    def _resolve_shard_files(self) -> "dict[int, tuple[str, str]]":
        cached = getattr(self, "_shard_files_cache", None)
        if cached is not None:
            return cached
        resume_record = getattr(self, "_resume_record", None)
        if resume_record is not None:
            cached = {
                int(s["index"]): (str(s["checkpoint"]), str(s["events"]))
                for s in resume_record["shards"]
            }
        else:
            if self.config.checkpoint_path is not None:
                base = Path(self.config.checkpoint_path)
                base.parent.mkdir(parents=True, exist_ok=True)
                stem = str(base)
            else:
                self._scratch = tempfile.TemporaryDirectory(
                    prefix="repro-shard-"
                )
                stem = str(Path(self._scratch.name) / "shard-run")
            cached = {
                k: (f"{stem}.shard{k}.npz", f"{stem}.shard{k}.events.jsonl")
                for k in range(self.plan.n_shards)
            }
        self._shard_files_cache = cached
        return cached

    def _resolve_telemetry_dir(self) -> "str | None":
        if self.config.telemetry_dir is not None:
            return str(self.config.telemetry_dir)
        if obs_metrics.active() is not None:
            # --metrics without --telemetry: the shard registries still
            # need a rendezvous on disk so their counts can fold into
            # the parent registry at the end; use a private scratch dir.
            self._telemetry_scratch = tempfile.TemporaryDirectory(
                prefix="repro-shard-telemetry-"
            )
            self._owns_telemetry_scratch = True
            return self._telemetry_scratch.name
        return None

    def _fold_telemetry(self, telemetry_dir: "str | None") -> None:
        reg = obs_metrics.active()
        if telemetry_dir is None or reg is None:
            return
        aggregator = obs_telemetry.TelemetryAggregator(telemetry_dir)
        aggregator.poll()
        # Merge ONLY the worker sinks (ids start "shard-"): the
        # coordinator's own ambient sink may live in the same directory
        # and already mirrors whatever was folded on a previous run —
        # re-folding it would double-count.
        worker_sinks = [
            s for s in aggregator.sink_ids() if s.startswith("shard-")
        ]
        merged = obs_telemetry.merge_snapshots(
            [aggregator.sink_snapshot(s) for s in worker_sinks]
        )
        # Fold ONLY the shard-labeled entries: the coordinator already
        # mirrors the unlabeled serve_* families itself, and the cache
        # ops every worker counted against its shard label must land
        # exactly once (PR 7's exclusion discipline, extended: the
        # label partitions the work, so a plain sum is the truth).
        labeled = [
            e for e in merged["metrics"] if "shard" in e.get("labels", {})
        ]
        obs_telemetry.merge_snapshot_into(
            reg, {"schema": obs_metrics.METRICS_SCHEMA, "metrics": labeled}
        )

    def _cleanup_scratch(self) -> None:
        if self._scratch is not None and self.config.checkpoint_path is None:
            self._scratch.cleanup()
            self._scratch = None
        if self._owns_telemetry_scratch:
            self._telemetry_scratch.cleanup()
            self._owns_telemetry_scratch = False

    def _write_checkpoint(self, shard_files: "dict[int, tuple[str, str]]") -> None:
        path = self.config.checkpoint_path
        if path is None:
            return
        backend = getattr(
            getattr(self.controller, "config", None), "backend", None
        )
        save_layout_checkpoint(
            path,
            t=self.t,
            plan=self.plan,
            controller_name=self.controller.name,
            backend=backend,
            paths=self.paths,
            step_stats=self.step_stats,
            shards=[
                {"index": k, "checkpoint": ckpt, "events": events}
                for k, (ckpt, events) in sorted(shard_files.items())
            ],
        )
        self.log.emit(
            "checkpoint_written",
            t=self.t,
            path=str(path),
            n_steps=len(self.steps),
        )
        sink = obs_telemetry.active_sink()
        if sink is not None:
            sink.flush(force=True)

    def _finish(self, error: "str | None") -> ServeReport:
        summary = summarize_events(self.log.events)
        self.log.emit("serve_end", t=self.t, **summary, error=error)
        trajectory = None
        if self.steps:
            trajectory = Trajectory.from_steps(self.steps)
            trajectory.run_stats = RunStats(list(self.step_stats))
        return ServeReport(
            outcomes=list(self._outcomes),
            trajectory=trajectory,
            summary=summary,
            error=error,
            paths=list(self.paths),
        )


def _merge_step_stats(t: int, messages: "list[dict]") -> StepStats:
    """Fold per-shard step stats into the global slot's entry.

    Wall time joins by ``max`` (the shards solved concurrently); the
    work counters sum; the backend set unions — the merged ``RunStats``
    then reports the run's true total solver work.
    """
    stats = [m.get("stats") for m in messages]
    stats = [s for s in stats if s]
    backends = sorted({b for s in stats for b in s.get("backends", [])})
    return StepStats(
        t=t,
        wall_time=max((float(s["wall_time"]) for s in stats), default=0.0),
        n_solves=sum(int(s["n_solves"]) for s in stats),
        newton_iters=sum(int(s["newton_iters"]) for s in stats),
        warm_attempts=sum(int(s["warm_attempts"]) for s in stats),
        warm_hits=sum(int(s["warm_hits"]) for s in stats),
        fallbacks=sum(int(s["fallbacks"]) for s in stats),
        backends=tuple(backends),
    )


def _merged_steps_from_shards(
    network, plan: ShardPlan, shards: "list[dict]", t: int
) -> "list[Allocation]":
    """Reconstruct merged decisions ``[0, t)`` from shard checkpoints.

    Each worker checkpoints every slot *before* the coordinator merges
    it, so every shard checkpoint holds at least ``t`` steps; lifting
    the per-shard slices through their views rebuilds the global
    decisions bitwise.
    """
    from repro.serve.checkpoint import load_checkpoint

    if t == 0:
        return []
    views = {
        k: ShardView(network, a) for k, a in enumerate(plan.assignments)
    }
    per_shard: "dict[int, list[Allocation]]" = {}
    for entry in shards:
        k = int(entry["index"])
        snapshot = load_checkpoint(entry["checkpoint"])
        if len(snapshot["steps"]) < t:
            raise ValueError(
                f"shard {k} checkpoint {entry['checkpoint']} holds "
                f"{len(snapshot['steps'])} steps but the layout checkpoint "
                f"records {t} merged slots"
            )
        per_shard[k] = snapshot["steps"]
    merged = []
    for slot_t in range(t):
        x = np.zeros(network.n_edges)
        y = np.zeros(network.n_edges)
        s = np.zeros(network.n_edges)
        for k, view in views.items():
            view.lift_into(x, y, s, per_shard[k][slot_t])
        merged.append(Allocation(x, y, s))
    return merged
