"""Sharded multi-process serve runtime.

Partitions the tier-1 edge clouds across worker shards — each running
its own :class:`~repro.serve.runtime.ServeLoop` over an
order-preserving sub-network — under a coordinator that merges the
per-shard decisions into the global per-slot allocation, detects and
restarts dead shards from their checkpoints, and aggregates the
shard-labeled telemetry streams.  The merged output is byte-identical
to the single-process run's (with or without injected shard kills);
see docs/SERVING.md for the architecture and the parity guarantee.
"""

from repro.shard.coordinator import (
    SHARD_CHECKPOINT_SCHEMA,
    ShardedServeConfig,
    ShardedServeLoop,
    load_layout_checkpoint,
    save_layout_checkpoint,
)
from repro.shard.partition import (
    PARTITION_POLICIES,
    ShardPlan,
    SLAComponent,
    component_weights,
    historical_demand,
    plan_partition,
    sla_components,
)
from repro.shard.status import (
    PARITY_EXCLUDED_PREFIXES,
    parity_text,
    parity_text_from_prometheus,
    render_shard_status,
    shard_parity_view,
)
from repro.shard.subnet import ShardSlotSource, ShardView
from repro.shard.worker import KILL_EXIT_CODE, ShardPayload, run_shard_worker

__all__ = [
    "PARTITION_POLICIES",
    "SLAComponent",
    "ShardPlan",
    "component_weights",
    "historical_demand",
    "plan_partition",
    "sla_components",
    "ShardView",
    "ShardSlotSource",
    "ShardedServeConfig",
    "ShardedServeLoop",
    "SHARD_CHECKPOINT_SCHEMA",
    "save_layout_checkpoint",
    "load_layout_checkpoint",
    "ShardPayload",
    "run_shard_worker",
    "KILL_EXIT_CODE",
    "PARITY_EXCLUDED_PREFIXES",
    "shard_parity_view",
    "parity_text",
    "parity_text_from_prometheus",
    "render_shard_status",
]
