"""Deterministic partitioning of tier-1 edge clouds across shards.

The sharded serve runtime (:mod:`repro.shard.coordinator`) gives each
worker shard a sub-network and lets it solve its slots independently.
For the merged decisions to equal the single-process run's, a shard
boundary must never cut a coupling constraint — and in the two-tier
model every coupling runs through the SLA bipartite graph: a tier-2
cloud's capacity (and hedge) couples exactly the tier-1 clouds with an
SLA edge to it.  The **connected components** of that graph are
therefore the atomic placement unit: two tier-1 clouds in the same
component must land on the same shard (component closure), while
clouds in different components share no constraint at all.

:func:`sla_components` computes the components (union-find);
:func:`plan_partition` assigns whole components to shards under one of
three policies:

* ``round-robin`` — components in canonical order, dealt cyclically;
* ``load-balanced`` — LPT greedy on component weight (historical mean
  demand when available, tier-1 count otherwise);
* ``affinity`` — components stay in canonical (region) order and the
  shard boundaries are contiguous cuts, so neighbouring tier-2 regions
  land on the same shard.

All three are pure functions of their inputs — same network, same
demand, same shard count always yields the same
:class:`ShardPlan` (property-tested), so a restarted coordinator
reconstructs the exact layout and resumed shards never see a different
sub-network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.network import CloudNetwork

#: The partitioning policies ``plan_partition`` accepts.
PARTITION_POLICIES = ("round-robin", "load-balanced", "affinity")


@dataclass(frozen=True)
class SLAComponent:
    """One connected component of the SLA bipartite graph.

    ``tier1``/``tier2``/``edges`` are sorted global index tuples; the
    canonical ordering key of a component is its smallest tier-2 index
    (components partition the tier-2 clouds, so keys are unique).
    """

    tier1: "tuple[int, ...]"
    tier2: "tuple[int, ...]"
    edges: "tuple[int, ...]"

    @property
    def key(self) -> int:
        return self.tier2[0]


def sla_components(network: CloudNetwork) -> "list[SLAComponent]":
    """Connected components of the bipartite (tier-2, tier-1) SLA graph.

    Union-find over ``n_tier2 + n_tier1`` nodes with one union per SLA
    edge; returned in canonical order (ascending smallest tier-2
    index).  Every tier-1 cloud has at least one SLA edge (the network
    constructor guarantees it), so the components cover both tiers.
    """
    n_i, n_j = network.n_tier2, network.n_tier1
    parent = list(range(n_i + n_j))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for e in range(network.n_edges):
        ra = find(int(network.edge_i[e]))
        rb = find(n_i + int(network.edge_j[e]))
        if ra != rb:
            parent[rb] = ra

    groups: "dict[int, dict]" = {}
    for i in range(n_i):
        groups.setdefault(find(i), {"tier1": [], "tier2": [], "edges": []})[
            "tier2"
        ].append(i)
    for j in range(n_j):
        groups.setdefault(find(n_i + j), {"tier1": [], "tier2": [], "edges": []})[
            "tier1"
        ].append(j)
    for e in range(network.n_edges):
        groups[find(int(network.edge_i[e]))]["edges"].append(e)

    components = [
        SLAComponent(
            tier1=tuple(sorted(g["tier1"])),
            tier2=tuple(sorted(g["tier2"])),
            edges=tuple(sorted(g["edges"])),
        )
        for g in groups.values()
        if g["tier2"]  # isolated tier-2 clouds still form components
    ]
    components.sort(key=lambda c: c.key)
    return components


@dataclass(frozen=True)
class ShardPlan:
    """Which tier-1 clouds each shard serves.

    ``assignments[k]`` is shard ``k``'s sorted tuple of global tier-1
    indices.  :meth:`validate` checks the cover is total and disjoint
    and that every SLA component lands whole on one shard — the
    invariant the bitwise-parity guarantee rests on.
    """

    n_shards: int
    policy: str
    assignments: "tuple[tuple[int, ...], ...]"

    def __post_init__(self) -> None:
        if self.n_shards != len(self.assignments):
            raise ValueError(
                f"plan has {len(self.assignments)} assignments for "
                f"{self.n_shards} shards"
            )

    def shard_of(self, j: int) -> int:
        """The shard serving global tier-1 cloud ``j``."""
        for k, assignment in enumerate(self.assignments):
            if j in assignment:
                return k
        raise KeyError(f"tier-1 cloud {j} is not assigned to any shard")

    def validate(self, network: CloudNetwork) -> "ShardPlan":
        """Check total/disjoint cover and component closure; return self."""
        seen: "set[int]" = set()
        for k, assignment in enumerate(self.assignments):
            if not assignment:
                raise ValueError(f"shard {k} has no tier-1 clouds assigned")
            if list(assignment) != sorted(set(assignment)):
                raise ValueError(
                    f"shard {k} assignment must be sorted and unique: "
                    f"{assignment}"
                )
            overlap = seen.intersection(assignment)
            if overlap:
                raise ValueError(
                    f"tier-1 clouds {sorted(overlap)} assigned to more than "
                    "one shard"
                )
            seen.update(assignment)
        missing = set(range(network.n_tier1)) - seen
        if missing:
            raise ValueError(
                f"tier-1 clouds {sorted(missing)} are not assigned to any shard"
            )
        extra = seen - set(range(network.n_tier1))
        if extra:
            raise ValueError(
                f"assignment references unknown tier-1 indices {sorted(extra)}"
            )
        shard_of = {
            j: k for k, assignment in enumerate(self.assignments) for j in assignment
        }
        for comp in sla_components(network):
            owners = {shard_of[j] for j in comp.tier1}
            if len(owners) > 1:
                raise ValueError(
                    f"SLA component around tier-2 clouds {list(comp.tier2)} "
                    f"is split across shards {sorted(owners)}; components "
                    "share tier-2/link capacity and must stay on one shard"
                )
        return self

    def to_json(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "policy": self.policy,
            "assignments": [list(a) for a in self.assignments],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShardPlan":
        return cls(
            n_shards=int(payload["n_shards"]),
            policy=str(payload["policy"]),
            assignments=tuple(
                tuple(int(j) for j in a) for a in payload["assignments"]
            ),
        )


def component_weights(
    components: "list[SLAComponent]",
    demand: "np.ndarray | None" = None,
) -> "list[float]":
    """The balancing weight of each component.

    With ``demand`` (per-tier-1 historical mean, e.g.
    ``instance.workload.mean(axis=0)``) a component weighs the sum of
    its clouds' demand; otherwise its tier-1 cloud count.  Weights
    drive the ``load-balanced`` and ``affinity`` policies.
    """
    if demand is None:
        return [float(len(c.tier1)) for c in components]
    demand = np.asarray(demand, dtype=float)
    return [float(sum(demand[j] for j in c.tier1)) for c in components]


def plan_partition(
    network: CloudNetwork,
    n_shards: int,
    policy: str = "round-robin",
    demand: "np.ndarray | None" = None,
) -> ShardPlan:
    """Assign whole SLA components to ``n_shards`` shards.

    Parameters
    ----------
    network:
        The global topology.
    n_shards:
        Number of worker shards (>= 1).  Must not exceed the number of
        SLA components — a component cannot be split without cutting a
        shared tier-2/link capacity constraint.
    policy:
        One of :data:`PARTITION_POLICIES`.
    demand:
        Optional per-tier-1 historical mean demand (shape ``(J,)``)
        used as the balancing weight; falls back to tier-1 counts.

    Deterministic: a pure function of ``(network, n_shards, policy,
    demand)`` with no RNG and no dict-order dependence.
    """
    if policy not in PARTITION_POLICIES:
        raise ValueError(
            f"unknown partition policy {policy!r}; "
            f"expected one of {', '.join(PARTITION_POLICIES)}"
        )
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    # Isolated tier-2 clouds (no SLA edge) form their own components
    # but carry no tier-1 clouds and hence no work or coupling; they
    # belong to no shard, exactly as they receive no allocation in the
    # (edge-indexed) global solve.
    components = [c for c in sla_components(network) if c.tier1]
    if n_shards > len(components):
        raise ValueError(
            f"cannot run {n_shards} shards on a network with only "
            f"{len(components)} SLA component(s): a component's tier-1 "
            "clouds share tier-2/link capacity and must stay on one shard "
            "(lower --shards, or widen the topology / lower --k so the "
            "SLA graph splits into more components)"
        )
    weights = component_weights(components, demand)

    by_shard: "list[list[SLAComponent]]" = [[] for _ in range(n_shards)]
    if policy == "round-robin":
        for idx, comp in enumerate(components):
            by_shard[idx % n_shards].append(comp)
    elif policy == "load-balanced":
        # Longest-processing-time greedy: heaviest component first onto
        # the lightest shard; ties broken by canonical order on both
        # sides, so the plan is scheduling-free.
        order = sorted(
            range(len(components)), key=lambda i: (-weights[i], components[i].key)
        )
        loads = [0.0] * n_shards
        for i in order:
            k = min(range(n_shards), key=lambda s: (loads[s], s))
            by_shard[k].append(components[i])
            loads[k] += weights[i]
    else:  # affinity: contiguous cuts in canonical (region) order
        # Cut where the prefix weight crosses each k/n quantile, then
        # clamp the cut indices so every shard keeps at least one
        # component (possible because n_shards <= len(components)).
        prefix = list(np.cumsum(weights))
        total = prefix[-1] if prefix and prefix[-1] > 0 else float(len(components))
        cuts = [0] * (n_shards + 1)
        cuts[n_shards] = len(components)
        for k in range(1, n_shards):
            threshold = total * k / n_shards
            cuts[k] = next(
                (i + 1 for i, p in enumerate(prefix) if p >= threshold),
                len(components),
            )
        for k in range(1, n_shards):
            cuts[k] = max(cuts[k], cuts[k - 1] + 1)
        for k in range(n_shards - 1, 0, -1):
            cuts[k] = min(cuts[k], cuts[k + 1] - 1)
        for k in range(n_shards):
            by_shard[k] = list(components[cuts[k]:cuts[k + 1]])

    assignments = tuple(
        tuple(sorted(j for comp in comps for j in comp.tier1))
        for comps in by_shard
    )
    return ShardPlan(
        n_shards=n_shards, policy=policy, assignments=assignments
    ).validate(network)


def historical_demand(source) -> "np.ndarray | None":
    """Per-tier-1 mean demand of a source, when it is known up front.

    Instance-backed sources (CSV traces, in-memory instances) expose
    the full workload matrix; live sources do not, and the
    load-balanced policy then falls back to component sizes.
    """
    instance = getattr(source, "instance", None)
    workload = getattr(instance, "workload", None)
    if workload is None:
        return None
    return np.asarray(workload, dtype=float).mean(axis=0)
