"""Shard status view and the sharded-vs-single parity projection.

Two read-side surfaces over the shared telemetry directory a sharded
serve streams into:

* :func:`render_shard_status` — the ``repro shard status DIR`` table:
  one row per shard sink with its liveness gauge, last completed slot,
  heartbeat age and decided-slot counts, plus the global (unlabeled)
  coordinator families.
* :func:`shard_parity_view` / :func:`parity_text` — the projection
  under which a sharded run's merged registry must be **byte-identical**
  to the single-process run's.  The projection removes exactly two
  things and is applied to *both* sides:

  - entries carrying a ``shard`` label (per-shard bookkeeping — the
    global equivalents are mirrored unlabeled by the coordinator);
  - unlabeled families whose global shape legitimately differs under
    sharding: ``engine_*``/``backend_*``/``subproblem_*`` (each shard
    runs its own engine over a sub-network, so the single process's
    unlabeled copies have no sharded counterpart),
    ``solver_cache_*`` (per-sub-network cache keys) and ``shard_*``
    (does not exist single-process).

  Everything surviving — the ``serve_*`` slot/path/fallback/unserved
  counters and the serve latency histogram *counts* — is a pure
  function of the globally-served slots and must match exactly; CI's
  shard-smoke job asserts it byte-for-byte on Prometheus exports.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.telemetry import TelemetryAggregator, deterministic_view

#: Unlabeled families excluded from the parity projection (see module
#: docstring); matched by prefix on the metric name.
PARITY_EXCLUDED_PREFIXES = (
    "engine_",
    "backend_",
    "subproblem_",
    "solver_cache_",
    "shard_",
)


def shard_parity_view(snapshot: dict) -> dict:
    """The projection of a snapshot that sharding must preserve.

    Apply to both the single-process registry snapshot and the sharded
    run's merged snapshot; the results must be equal (tests) and their
    serializations byte-equal (CI).
    """
    view = deterministic_view(snapshot)
    metrics = [
        entry
        for entry in view["metrics"]
        if "shard" not in entry["labels"]
        and not entry["name"].startswith(PARITY_EXCLUDED_PREFIXES)
    ]
    return {"schema": f"{METRICS_SCHEMA}#shard-parity", "metrics": metrics}


def parity_text(snapshot: dict) -> str:
    """Canonical byte-comparable serialization of the parity view."""
    return json.dumps(shard_parity_view(snapshot), sort_keys=True) + "\n"


def parity_text_from_prometheus(path: "str | Path") -> str:
    """The parity serialization of an exported Prometheus text file.

    Parses the export back into ``(name, labels) -> value`` samples,
    drops the same families :func:`shard_parity_view` drops (plus the
    wall-time-valued histogram series — only ``_count`` samples are
    run-invariant), and renders the survivors one canonical line per
    sample.  CI compares the outputs of the single-process and sharded
    smoke runs byte-for-byte.
    """
    from repro.obs.export import parse_prometheus

    samples = parse_prometheus(Path(path).read_text(encoding="utf-8"))
    lines = []
    for (name, labels), value in sorted(samples.items()):
        labels = dict(labels)
        # Keep only the run-invariant samples (mirrors deterministic_view):
        # counter values (*_total) and histogram observation counts
        # (*_count); gauges, sums and bucket series measure the machine.
        if not name.endswith(("_total", "_count")):
            continue
        base = name[: -len("_count")] if name.endswith("_count") else name
        if labels.pop("shard", None) is not None:
            continue
        if base.startswith(PARITY_EXCLUDED_PREFIXES):
            continue
        label_part = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        lines.append(f"{name}{{{label_part}}} {value:g}")
    return "\n".join(lines) + "\n"


def render_shard_status(directory: "str | Path", now: "float | None" = None) -> str:
    """One-shot ``repro shard status`` table over a telemetry directory."""
    aggregator = TelemetryAggregator(directory)
    aggregator.poll()
    now = time.time() if now is None else now
    shard_rows: "list[tuple[str, str, str, str, str]]" = []
    for sink_id in aggregator.sink_ids():
        # Worker sinks are labeled shard-<k> (suffixed on restart); the
        # coordinator's own ambient sink carries folded *copies* of the
        # shard gauges and must not masquerade as a worker row.
        if not sink_id.startswith("shard-"):
            continue
        snapshot = aggregator.sink_snapshot(sink_id)
        up = slot = beat = None
        slots = 0.0
        for entry in snapshot["metrics"]:
            name = entry["name"]
            if name == "shard_up":
                up = float(entry["value"])
            elif name == "shard_slot":
                slot = float(entry["value"])
            elif name == "shard_heartbeat_time":
                beat = float(entry["value"])
            elif name == "serve_slots_total":
                slots += float(entry["value"])
        if up is None and slot is None and beat is None:
            continue  # not a shard sink (coordinator, sweep worker, ...)
        age = f"{max(now - beat, 0.0):.1f}s" if beat is not None else "?"
        shard_rows.append(
            (
                sink_id,
                "up" if up else "down",
                f"{slot:g}" if slot is not None else "?",
                age,
                f"{slots:g}",
            )
        )
    lines = [f"shard status: {directory} ({len(shard_rows)} shard sink(s))"]
    if shard_rows:
        headers = ("sink", "state", "last slot", "heartbeat age", "slots decided")
        widths = [
            max(len(h), *(len(r[c]) for r in shard_rows))
            for c, h in enumerate(headers)
        ]
        fmt = lambda row: "  ".join(p.ljust(w) for p, w in zip(row, widths))
        lines += [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines += [fmt(row) for row in shard_rows]
    else:
        lines.append("(no shard sinks found)")
    merged = aggregator.merged_snapshot()
    restarts = sum(
        float(e["value"])
        for e in merged["metrics"]
        if e["name"] == "shard_restarts_total"
    )
    if restarts:
        lines.append(f"shard restarts: {restarts:g}")
    return "\n".join(lines)
