"""Shard views: order-preserving sub-networks and slot projection.

A :class:`ShardView` restricts the global :class:`CloudNetwork` to the
tier-1 clouds one shard serves (plus the tier-2 clouds and SLA edges
they touch) while **preserving the global relative order** of clouds
and edges.  Order preservation is what makes the restriction exact at
the bit level: the solver's per-element weights, the greedy cover's
iteration order, and the CSR aggregation's ascending-column summation
all see the same sequence of floating-point operations on the shard as
the corresponding slice of the single-process run, so a
component-closed shard's decisions are bitwise equal to the global
run's restriction (test-asserted; see docs/SERVING.md).

:class:`ShardSlotSource` wraps any global :class:`SlotSource` and
yields each slot projected onto the view — the worker's serve loop
then runs completely unmodified.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.session import SlotData
from repro.model.allocation import Allocation
from repro.model.network import CloudNetwork, SLAEdge


class ShardView:
    """One shard's restriction of the global network.

    Attributes
    ----------
    tier1_idx, tier2_idx, edge_idx:
        Sorted global index arrays of the clouds/edges this shard
        owns.  Sorted means sub-network order equals global relative
        order — the bitwise-restriction invariant.
    network:
        The sub-:class:`CloudNetwork` over those clouds/edges.
    """

    def __init__(self, global_network: CloudNetwork, tier1_indices) -> None:
        tier1_idx = np.asarray(sorted(set(int(j) for j in tier1_indices)), dtype=np.intp)
        if tier1_idx.size == 0:
            raise ValueError("a shard view needs at least one tier-1 cloud")
        if tier1_idx[0] < 0 or tier1_idx[-1] >= global_network.n_tier1:
            raise ValueError(
                f"tier-1 indices {tier1_idx.tolist()} out of range for "
                f"{global_network!r}"
            )
        self.global_network = global_network
        self.tier1_idx = tier1_idx
        in_shard = np.zeros(global_network.n_tier1, dtype=bool)
        in_shard[tier1_idx] = True
        self.edge_idx = np.flatnonzero(in_shard[global_network.edge_j])
        self.tier2_idx = np.unique(global_network.edge_i[self.edge_idx])

        tier1_local = {int(j): lj for lj, j in enumerate(self.tier1_idx)}
        tier2_local = {int(i): li for li, i in enumerate(self.tier2_idx)}
        self.network = CloudNetwork(
            tier2=[global_network.tier2_clouds[i] for i in self.tier2_idx],
            tier1=[global_network.tier1_clouds[j] for j in self.tier1_idx],
            edges=[
                SLAEdge(
                    tier2=tier2_local[int(global_network.edge_i[e])],
                    tier1=tier1_local[int(global_network.edge_j[e])],
                    capacity=float(global_network.edge_capacity[e]),
                    recon_price=float(global_network.edge_recon_price[e]),
                )
                for e in self.edge_idx
            ],
        )

    # ------------------------------------------------------------------
    def project(self, slot: SlotData) -> SlotData:
        """Restrict one global slot's inputs to this shard."""
        return SlotData(
            slot.workload[self.tier1_idx],
            slot.tier2_price[self.tier2_idx],
            slot.link_price[self.edge_idx],
        )

    def lift_into(
        self,
        x: np.ndarray,
        y: np.ndarray,
        s: np.ndarray,
        decision: Allocation,
    ) -> None:
        """Scatter a shard decision into global edge-space arrays."""
        x[self.edge_idx] = decision.x
        y[self.edge_idx] = decision.y
        s[self.edge_idx] = decision.s

    def restrict(self, decision: Allocation) -> Allocation:
        """A global decision's slice on this shard's edges (tests)."""
        return Allocation(
            decision.x[self.edge_idx].copy(),
            decision.y[self.edge_idx].copy(),
            decision.s[self.edge_idx].copy(),
        )

    def __repr__(self) -> str:
        return (
            f"ShardView(J={self.tier1_idx.tolist()}, "
            f"|I|={len(self.tier2_idx)}, |E|={len(self.edge_idx)})"
        )


class ShardSlotSource:
    """A global slot source projected onto one shard's view.

    Satisfies the :class:`~repro.serve.sources.SlotSource` protocol;
    deliberately does *not* expose ``.instance`` — the worker's
    controller must build its state from the shard's sub-network, not
    the global instance.
    """

    def __init__(self, base, view: ShardView) -> None:
        self.base = base
        self.view = view
        self.network = view.network
        self.horizon: "int | None" = base.horizon

    def slots(self, start: int = 0) -> Iterator[SlotData]:
        for slot in self.base.slots(start):
            yield self.view.project(slot).validate(self.network)

    def __repr__(self) -> str:
        return f"ShardSlotSource({self.view!r}, base={self.base!r})"
