"""The shard worker process: one :class:`ServeLoop` over a sub-network.

Spawned by the coordinator (:mod:`repro.shard.coordinator`) with a
:class:`ShardPayload`, a worker:

1. severs every fork-inherited observability handle (ambient telemetry
   sink, tracer) and enables a fresh
   :class:`~repro.obs.metrics.LabeledRegistry` stamping ``shard=<k>``
   onto every instrument, streamed through a per-shard
   :class:`~repro.obs.telemetry.TelemetrySink` into the shared
   telemetry directory;
2. re-activates the shared solver cache directory (reads blobs any
   sibling produced; writes stay atomic single-writer renames);
3. wraps the global slot source in a
   :class:`~repro.shard.subnet.ShardSlotSource` over its assigned
   tier-1 clouds and runs a completely ordinary
   :class:`~repro.serve.runtime.ServeLoop` — per-shard checkpoint,
   per-shard JSONL event log, same fallback chain;
4. ships every slot's decision to the coordinator over a pipe and
   publishes heartbeat gauges (``shard_up`` / ``shard_slot`` /
   ``shard_heartbeat_time``) the coordinator and ``repro shard
   status`` read from the telemetry stream.

Restart protocol: a worker relaunched with ``resume=True`` rebuilds
its loop from its checkpoint (bitwise resume, PR 3's guarantee) and
first *re-sends* any slots in ``[resend_from, checkpoint_t)`` the
coordinator never received, reconstructed from the checkpoint's
decision arrays and the shard's durable event log — re-sent slots are
not re-solved and publish no metrics, so the merged registry counts
each slot's work exactly once.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import runtime as cache_runtime
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import tracing as obs_tracing
from repro.serve.checkpoint import load_checkpoint
from repro.serve.events import EventLog, read_events
from repro.serve.faults import FaultInjector
from repro.serve.runtime import ServeConfig, ServeLoop
from repro.shard.subnet import ShardSlotSource, ShardView

#: Exit code of a worker terminated by an injected kill (tests/CI
#: distinguish it from a crash).
KILL_EXIT_CODE = 43


@dataclass
class ShardPayload:
    """Everything a worker process needs; passed through ``fork``."""

    shard: int
    assignment: "tuple[int, ...]"
    source: object
    controller: object
    checkpoint_path: str
    events_path: str
    deadline_s: "float | None" = None
    enforce: str = "thread"
    checkpoint_every: int = 1
    injector: "FaultInjector | None" = None
    hold_tol: float = 1e-7
    telemetry_dir: "str | None" = None
    cache_dir: "str | None" = None
    resume: bool = False
    resend_from: int = 0
    kill_after: "int | None" = None
    extra_labels: dict = field(default_factory=dict)


def _slot_message(
    shard: int,
    t: int,
    *,
    path: str,
    decision,
    served: bool,
    deadline_missed: bool,
    error: "str | None",
    wall_time: float,
    stats: "dict | None",
    replayed: bool = False,
) -> dict:
    return {
        "type": "slot",
        "shard": shard,
        "t": t,
        "path": path,
        "x": decision.x,
        "y": decision.y,
        "s": decision.s,
        "served": bool(served),
        "deadline_missed": bool(deadline_missed),
        "error": error,
        "wall_time": float(wall_time),
        "stats": stats,
        "replayed": bool(replayed),
    }


def _replay_missed_slots(payload: ShardPayload, snapshot: dict, conn) -> None:
    """Re-send checkpointed slots the coordinator never received.

    Decisions come bitwise from the checkpoint arrays; the slot's
    metadata (path, served, deadline miss, fallback reason) from the
    shard's durable event log, which the serve loop flushes before
    every checkpoint — so everything up to ``snapshot["t"]`` is on
    disk.  Nothing is re-solved and nothing is published to the
    metrics registry: the dead incarnation's sink already accounts for
    this work.
    """
    start, end = payload.resend_from, int(snapshot["t"])
    if start >= end:
        return
    decided: "dict[int, dict]" = {}
    if Path(payload.events_path).exists():
        for event in read_events(payload.events_path):
            if event.get("event") == "slot_decided":
                decided[int(event["t"])] = event  # last restart wins
    stats = snapshot.get("step_stats", [])
    for t in range(start, end):
        event = decided.get(t, {})
        conn.send(
            _slot_message(
                payload.shard,
                t,
                path=str(event.get("path", snapshot["paths"][t])),
                decision=snapshot["steps"][t],
                served=bool(event.get("served", True)),
                deadline_missed=bool(event.get("deadline_missed", False)),
                error=event.get("error"),
                wall_time=float(event.get("wall_time", 0.0)),
                stats=stats[t].to_dict() if t < len(stats) else None,
                replayed=True,
            )
        )


def run_shard_worker(payload: ShardPayload, conn) -> int:
    """Worker process entry point; returns the exit code."""
    # Sever fork-inherited observability state: the parent owns its
    # sink/tracer streams; publishing into them from here would
    # interleave writers and double-count the parent's registry.
    obs_telemetry.forget_inherited()
    obs_tracing.forget_inherited()
    registry = obs_metrics.enable(
        obs_metrics.LabeledRegistry(
            shard=str(payload.shard), **payload.extra_labels
        )
    )
    if payload.telemetry_dir is not None:
        obs_telemetry.attach(
            payload.telemetry_dir,
            registry=registry,
            label=f"shard-{payload.shard}",
            min_interval_s=0.0,
        )
    if payload.cache_dir is not None:
        store = cache_runtime.active()
        if store is None or str(store.root) != payload.cache_dir:
            cache_runtime.activate(payload.cache_dir)

    view = ShardView(payload.source.network, payload.assignment)
    source = ShardSlotSource(payload.source, view)
    config = ServeConfig(
        deadline_s=payload.deadline_s,
        enforce=payload.enforce,
        checkpoint_path=payload.checkpoint_path,
        checkpoint_every=payload.checkpoint_every,
        injector=payload.injector,
        hold_tol=payload.hold_tol,
        checkpoint_extra={
            "shard": payload.shard,
            "assignment": list(payload.assignment),
        },
    )

    def heartbeat(t: int) -> None:
        registry.gauge("shard_up", help="1 while the shard worker serves").set(1.0)
        registry.gauge(
            "shard_slot", help="last slot index this shard completed"
        ).set(float(t))
        registry.gauge(
            "shard_heartbeat_time",
            help="unix time of the shard's last completed slot",
        ).set(time.time())

    def on_slot(loop: ServeLoop, outcome) -> None:
        heartbeat(outcome.t)
        stats = loop.session.step_stats
        conn.send(
            _slot_message(
                payload.shard,
                outcome.t,
                path=outcome.path,
                decision=outcome.decision,
                served=outcome.served,
                deadline_missed=outcome.deadline_missed,
                error=outcome.error,
                wall_time=outcome.wall_time,
                stats=stats[-1].to_dict() if stats else None,
            )
        )
        if payload.kill_after is not None and outcome.t == payload.kill_after:
            # Controlled kill at the durability boundary: the slot's
            # checkpoint is written and its message sent; flush the
            # telemetry stream and die without cleanup, exactly like a
            # SIGKILL landing between two slots.
            obs_telemetry.detach()
            conn.close()
            os._exit(KILL_EXIT_CODE)

    log = EventLog(payload.events_path)
    try:
        checkpoint_exists = Path(payload.checkpoint_path).exists()
        if payload.resume and checkpoint_exists:
            snapshot = load_checkpoint(payload.checkpoint_path)
            recorded = snapshot.get("extra", {}).get("assignment")
            if recorded is not None and list(recorded) != list(payload.assignment):
                raise ValueError(
                    f"shard {payload.shard} checkpoint was written for "
                    f"tier-1 assignment {list(recorded)}, relaunched with "
                    f"{list(payload.assignment)}; the partition layout must "
                    "not change across a resume"
                )
            _replay_missed_slots(payload, snapshot, conn)
            loop = ServeLoop.resume(
                payload.controller,
                source,
                payload.checkpoint_path,
                config=config,
                event_log=log,
                on_slot=on_slot,
            )
        else:
            loop = ServeLoop(
                payload.controller,
                source,
                config=config,
                event_log=log,
                on_slot=on_slot,
            )
        report = loop.run()
        registry.gauge("shard_up", help="1 while the shard worker serves").set(0.0)
        conn.send(
            {
                "type": "end",
                "shard": payload.shard,
                "t": loop.session.t,
                "summary": report.summary,
                "error": report.error,
            }
        )
        code = 0
    except Exception as exc:  # noqa: BLE001 — report, then die visibly
        try:
            conn.send(
                {
                    "type": "end",
                    "shard": payload.shard,
                    "t": -1,
                    "summary": None,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        except (BrokenPipeError, OSError):
            pass
        code = 1
    finally:
        log.close()
        obs_telemetry.detach()
        try:
            conn.close()
        except OSError:
            pass
    return code


def worker_main(payload: ShardPayload, conn) -> None:
    """``multiprocessing.Process`` target wrapper around the worker."""
    os._exit(run_shard_worker(payload, conn))
