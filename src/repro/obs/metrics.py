"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the single aggregation point of the observability
layer (see ``docs/OBSERVABILITY.md``): the barrier solver, the solve
engine and the serve runtime all publish into whichever registry is
*active*, and exporters (:mod:`repro.obs.export`) turn an immutable
:meth:`MetricsRegistry.snapshot` into Prometheus text, a human table
or JSON.

Zero-overhead default
---------------------
No registry is active unless :func:`enable` has been called (the CLI's
``--metrics`` flag does).  While disabled, the module-level
:func:`counter` / :func:`gauge` / :func:`histogram` accessors return
shared no-op singletons whose methods do nothing, so instrumented hot
paths pay one ``is None`` check and an attribute call — no allocation,
no locking, no arithmetic.  Instrumentation must therefore always go
through the accessors (or guard on :func:`active`) rather than holding
instrument references across enable/disable boundaries.

Histograms use *fixed* bucket boundaries (latency-style by default)
plus exact ``sum``/``count``/``min``/``max``; quantiles (p50/p95/p99)
are estimated by linear interpolation inside the bucket containing the
target rank, clamped to the observed ``[min, max]`` — the classic
Prometheus ``histogram_quantile`` estimate, computable from a snapshot
alone.
"""

from __future__ import annotations

import bisect
import threading

#: Default histogram boundaries (seconds), latency-shaped: ~exponential
#: from 100 us to 30 s.  The overflow bucket (+inf) is implicit.
DEFAULT_BUCKETS: "tuple[float, ...]" = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Schema identifier stamped on snapshots.
METRICS_SCHEMA = "repro-metrics/v1"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with exact sum/count/min/max.

    ``counts[i]`` is the number of observations in
    ``(bounds[i-1], bounds[i]]`` (first bucket: ``<= bounds[0]``);
    ``counts[-1]`` is the overflow bucket (``> bounds[-1]``).
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: "tuple[float, ...] | None" = None) -> None:
        bounds = DEFAULT_BUCKETS if bounds is None else tuple(
            float(b) for b in bounds
        )
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must be increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1])."""
        return estimate_percentile(
            self.bounds, self.counts, self.min, self.max, q
        )

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


def estimate_percentile(
    bounds: "tuple[float, ...]",
    counts: "list[int]",
    lo: float,
    hi: float,
    q: float,
) -> float:
    """Quantile estimate from bucketed counts (snapshot-computable).

    Linear interpolation inside the bucket holding rank ``q * count``,
    clamped to the observed ``[lo, hi]`` so tails never extrapolate
    past real observations (the overflow bucket has no upper edge).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c >= rank:
            lower = bounds[i - 1] if i > 0 else lo
            upper = bounds[i] if i < len(bounds) else hi
            frac = (rank - cum) / c
            est = lower + frac * (upper - lower)
            return min(max(est, lo), hi)
        cum += c
    return hi


#: No-op instruments handed out while no registry is active.  Shared
#: singletons: calling their methods is the entire cost of disabled
#: instrumentation.
class NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, optionally labeled instruments with one aggregation point.

    Instruments are created on first access and keyed by
    ``(name, labels)``; every name has exactly one kind (and, for
    histograms, one bucket layout) — a conflicting re-registration
    raises so two subsystems cannot silently split a metric.
    Instrument creation is locked; increments/observations rely on the
    GIL (single attribute updates), which matches the single-process
    serve/solve loops this library runs.
    """

    def __init__(self) -> None:
        self._metrics: "dict[tuple[str, tuple], object]" = {}
        self._families: "dict[str, dict]" = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, help_: str, labels: dict, **extra):
        key = (name, _label_key(labels))
        inst = self._metrics.get(key)
        if inst is not None:
            fam = self._families[name]
            if fam["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam['kind']}, "
                    f"requested {kind}"
                )
            return inst
        with self._lock:
            inst = self._metrics.get(key)
            if inst is not None:
                return inst
            fam = self._families.get(name)
            if fam is None:
                fam = {"kind": kind, "help": help_, **extra}
                self._families[name] = fam
            elif fam["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam['kind']}, "
                    f"requested {kind}"
                )
            if kind == "histogram":
                inst = Histogram(bounds=fam.get("buckets"))
            else:
                inst = _KINDS[kind]()
            self._metrics[key] = inst
            return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter ``name{labels}``, created on first access."""
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge ``name{labels}``, created on first access."""
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: "tuple[float, ...] | None" = None,
        **labels,
    ) -> Histogram:
        """The histogram ``name{labels}``; ``buckets`` applies on first
        registration of the family and must not change afterwards."""
        fam = self._families.get(name)
        if fam is not None and buckets is not None:
            have = fam.get("buckets") or DEFAULT_BUCKETS
            if tuple(buckets) != tuple(have):
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{have}, requested {tuple(buckets)}"
                )
        return self._get("histogram", name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Immutable JSON-serializable view of every instrument.

        Deterministically ordered by ``(name, labels)``; the inverse is
        :func:`registry_from_snapshot` (round-trip property-tested).
        """
        metrics = []
        for (name, labels) in sorted(self._metrics):
            inst = self._metrics[(name, labels)]
            fam = self._families[name]
            entry: dict = {
                "name": name,
                "type": fam["kind"],
                "help": fam["help"],
                "labels": dict(labels),
            }
            if isinstance(inst, Histogram):
                entry["buckets"] = list(inst.bounds)
                entry["counts"] = list(inst.counts)
                entry["sum"] = inst.sum
                entry["count"] = inst.count
                entry["min"] = inst.min if inst.count else None
                entry["max"] = inst.max if inst.count else None
            else:
                entry["value"] = inst.value
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def family_values(self, name: str) -> "list[tuple[dict, float]]":
        """``(labels, value)`` of every scalar instrument named ``name``.

        A cheap read path for derived metrics (the health monitor folds
        counter families like ``solver_cache_ops_total`` every slot)
        that avoids snapshotting the whole registry.  Histograms have
        no scalar value and raise.
        """
        fam = self._families.get(name)
        if fam is None:
            return []
        if fam["kind"] == "histogram":
            raise ValueError(f"metric {name!r} is a histogram, not a scalar")
        return [
            (dict(labels), inst.value)
            for (n, labels), inst in self._metrics.items()
            if n == name
        ]

    def clear(self) -> None:
        """Drop every instrument (tests; fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()
            self._families.clear()

    def describe(self) -> str:
        """Human-readable summary table of the current snapshot."""
        from repro.obs.export import describe_snapshot

        return describe_snapshot(self.snapshot())


class LabeledRegistry(MetricsRegistry):
    """A registry that stamps constant labels onto every instrument.

    The sharded serve runtime runs one of these per worker process
    (``shard=<k>``): every counter/gauge/histogram any layer publishes
    — solver backends, the engine, the serve loop, the cache — lands
    with the shard label attached, without a single call site knowing
    it runs inside a shard.  Merging the per-shard telemetry streams
    then never collides with the coordinator's unlabeled global
    families, and per-shard attribution survives aggregation.

    Explicit labels win on key conflict (a caller that *does* pass
    ``shard=...`` is being deliberate).
    """

    def __init__(self, **constant_labels) -> None:
        super().__init__()
        self.constant_labels = {
            str(k): str(v) for k, v in constant_labels.items()
        }

    def _get(self, kind: str, name: str, help_: str, labels: dict, **extra):
        merged = {**self.constant_labels, **labels}
        return super()._get(kind, name, help_, merged, **extra)


def registry_from_snapshot(snapshot: dict) -> MetricsRegistry:
    """Rebuild a registry whose aggregates equal ``snapshot``'s.

    Counter/gauge values and every histogram aggregate (bucket counts,
    sum, count, min, max) are restored exactly; per-observation detail
    is gone, which is the point of bucketed histograms.
    """
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"unsupported metrics snapshot schema {snapshot.get('schema')!r}"
        )
    reg = MetricsRegistry()
    for entry in snapshot["metrics"]:
        name, labels = entry["name"], entry["labels"]
        kind = entry["type"]
        if kind == "counter":
            reg.counter(name, help=entry.get("help", ""), **labels).value = float(
                entry["value"]
            )
        elif kind == "gauge":
            reg.gauge(name, help=entry.get("help", ""), **labels).value = float(
                entry["value"]
            )
        elif kind == "histogram":
            hist = reg.histogram(
                name,
                help=entry.get("help", ""),
                buckets=tuple(entry["buckets"]),
                **labels,
            )
            hist.counts = [int(c) for c in entry["counts"]]
            hist.sum = float(entry["sum"])
            hist.count = int(entry["count"])
            hist.min = float("inf") if entry["min"] is None else float(entry["min"])
            hist.max = float("-inf") if entry["max"] is None else float(entry["max"])
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return reg


# ----------------------------------------------------------------------
# Active-registry switch (the no-op default lives here)
# ----------------------------------------------------------------------
_active: "MetricsRegistry | None" = None


def enable(registry: "MetricsRegistry | None" = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one by default) as the active sink."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Return to the zero-overhead no-op default."""
    global _active
    _active = None


def active() -> "MetricsRegistry | None":
    """The active registry, or ``None`` while metrics are disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def counter(name: str, help: str = "", **labels):
    """Active registry's counter, or the shared no-op when disabled."""
    reg = _active
    return NULL_COUNTER if reg is None else reg.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels):
    """Active registry's gauge, or the shared no-op when disabled."""
    reg = _active
    return NULL_GAUGE if reg is None else reg.gauge(name, help, **labels)


def histogram(
    name: str,
    help: str = "",
    buckets: "tuple[float, ...] | None" = None,
    **labels,
):
    """Active registry's histogram, or the shared no-op when disabled."""
    reg = _active
    if reg is None:
        return NULL_HISTOGRAM
    return reg.histogram(name, help, buckets=buckets, **labels)


class use:
    """Context manager installing a registry for the block (tests)."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._saved: "MetricsRegistry | None" = None

    def __enter__(self) -> MetricsRegistry:
        self._saved = _active
        enable(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._saved
