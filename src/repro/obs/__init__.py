"""Unified observability layer: metrics, tracing, exporters.

One dependency-free subsystem answers "where did the time go?" across
every layer of the library (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99 estimation), **disabled by
  default**: while no registry is active, instrumented code receives
  shared no-op instruments and pays essentially nothing;
* :mod:`repro.obs.tracing` — a span tracer with per-thread nesting and
  optional JSONL streaming, same no-op default;
* :mod:`repro.obs.export` — Prometheus text / human table / JSON
  exporters over the plain-dict snapshot format.

Instrumented layers: the barrier solver (Newton iterations, line-search
backtracks, factorization time), the solve engine (per-step stats routed
through :func:`repro.engine.stats.publish_step_stats`), and the serve
runtime (per-slot phase accounting + events routed through
:func:`repro.serve.events.publish_event`).  The CLI's ``--metrics PATH``
flag enables everything for one run and writes the exports.
"""

from repro.obs import export, metrics, tracing
from repro.obs.export import (
    describe_snapshot,
    load_snapshot_json,
    parse_prometheus,
    to_prometheus,
    write_prometheus,
    write_snapshot_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_snapshot,
)
from repro.obs.tracing import TRACE_SCHEMA, Span, Tracer, read_trace

__all__ = [
    "metrics",
    "tracing",
    "export",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "registry_from_snapshot",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "Tracer",
    "Span",
    "read_trace",
    "TRACE_SCHEMA",
    "to_prometheus",
    "parse_prometheus",
    "describe_snapshot",
    "write_prometheus",
    "write_snapshot_json",
    "load_snapshot_json",
]
