"""Unified observability layer: metrics, tracing, exporters.

One dependency-free subsystem answers "where did the time go?" across
every layer of the library (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99 estimation), **disabled by
  default**: while no registry is active, instrumented code receives
  shared no-op instruments and pays essentially nothing;
* :mod:`repro.obs.tracing` — a span tracer with per-thread nesting and
  optional JSONL streaming, same no-op default;
* :mod:`repro.obs.export` — Prometheus text / human table / JSON
  exporters over the plain-dict snapshot format;
* :mod:`repro.obs.telemetry` — streaming per-process JSONL sinks plus
  a cross-process :class:`~repro.obs.telemetry.TelemetryAggregator`
  whose merge is associative/commutative/idempotent, and the
  ``telemetry watch`` console view;
* :mod:`repro.obs.health` — online algorithm-health gauges (empirical
  competitive ratio, switching-cost share, SLO burn rate) and
  declarative alert rules.  It needs numpy, so unlike the rest of the
  package it is **not** imported here — ``repro.obs`` itself stays
  importable on a bare stdlib.

Instrumented layers: the barrier solver (Newton iterations, line-search
backtracks, factorization time), the solve engine (per-step stats routed
through :func:`repro.engine.stats.publish_step_stats`), and the serve
runtime (per-slot phase accounting + events routed through
:func:`repro.serve.events.publish_event`).  The CLI's ``--metrics PATH``
flag enables everything for one run and writes the exports.
"""

from repro.obs import export, metrics, telemetry, tracing
from repro.obs.export import (
    describe_snapshot,
    load_snapshot_json,
    parse_prometheus,
    to_prometheus,
    with_derived,
    write_prometheus,
    write_snapshot_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_snapshot,
)
from repro.obs.telemetry import (
    SINK_SUFFIX,
    TELEMETRY_SCHEMA,
    TelemetryAggregator,
    TelemetrySink,
    deterministic_view,
    merge_snapshot_into,
    merge_snapshots,
    read_sink,
    replay_sink,
)
from repro.obs.tracing import TRACE_SCHEMA, Span, Tracer, read_trace

__all__ = [
    "metrics",
    "tracing",
    "export",
    "telemetry",
    "TelemetrySink",
    "TelemetryAggregator",
    "read_sink",
    "replay_sink",
    "merge_snapshots",
    "merge_snapshot_into",
    "deterministic_view",
    "TELEMETRY_SCHEMA",
    "SINK_SUFFIX",
    "with_derived",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "registry_from_snapshot",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "Tracer",
    "Span",
    "read_trace",
    "TRACE_SCHEMA",
    "to_prometheus",
    "parse_prometheus",
    "describe_snapshot",
    "write_prometheus",
    "write_snapshot_json",
    "load_snapshot_json",
]
