"""Exporters for metrics snapshots: Prometheus text, human table, JSON.

Everything here operates on the plain-dict snapshot produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, so exports can be
rendered live, from a checkpointed run, or from a deserialized file —
the snapshot is the interchange format.

:func:`parse_prometheus` is the inverse of :func:`to_prometheus` at
the sample level (name + labels -> value); CI's obs-smoke step and the
round-trip tests use it to assert the exported text is well-formed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import METRICS_SCHEMA, estimate_percentile


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _label_str(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def derived_entries(snapshot: dict) -> "list[dict]":
    """Gauges computed *from* a snapshot that readers shouldn't derive.

    Currently: ``solver_cache_hit_ratio`` — hits / (hits + misses) of
    the ``solver_cache_ops_total`` counters, so dashboards read a
    ratio instead of dividing counters.  Skipped when the snapshot has
    no cache lookups or already carries the gauge (re-exporting an
    already-derived snapshot must not duplicate samples).
    """
    present = {e["name"] for e in snapshot["metrics"]}
    if "solver_cache_hit_ratio" in present:
        return []
    hits = misses = 0.0
    for entry in snapshot["metrics"]:
        if entry["name"] == "solver_cache_ops_total":
            op = entry["labels"].get("op")
            if op == "hit":
                hits += float(entry["value"])
            elif op == "miss":
                misses += float(entry["value"])
    if hits + misses == 0:
        return []
    return [
        {
            "name": "solver_cache_hit_ratio",
            "type": "gauge",
            "help": "Cache hits / (hits + misses), derived from "
                    "solver_cache_ops_total.",
            "labels": {},
            "value": hits / (hits + misses),
        }
    ]


def with_derived(snapshot: dict) -> dict:
    """``snapshot`` plus :func:`derived_entries`, in snapshot order."""
    extra = derived_entries(snapshot)
    if not extra:
        return snapshot
    metrics = sorted(
        list(snapshot["metrics"]) + extra,
        key=lambda e: (
            e["name"],
            tuple(sorted((str(k), str(v)) for k, v in e["labels"].items())),
        ),
    )
    return {"schema": snapshot["schema"], "metrics": metrics}


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Bucket samples are cumulative (``le``-labeled) as the format
    requires, with the implicit ``+Inf`` bucket equal to ``_count``.
    Derived gauges (:func:`derived_entries`) are appended so scrapers
    see ratios without client-side division.
    """
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"unsupported metrics snapshot schema {snapshot.get('schema')!r}"
        )
    snapshot = with_derived(snapshot)
    lines: "list[str]" = []
    seen_header: "set[str]" = set()
    for entry in snapshot["metrics"]:
        name, kind, labels = entry["name"], entry["type"], entry["labels"]
        if name not in seen_header:
            seen_header.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cum = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cum += count
                lines.append(
                    f"{name}_bucket{_label_str(labels, {'le': _fmt_value(bound)})} {cum}"
                )
            lines.append(
                f"{name}_bucket{_label_str(labels, {'le': '+Inf'})} {entry['count']}"
            )
            lines.append(f"{name}_sum{_label_str(labels)} {_fmt_value(entry['sum'])}")
            lines.append(f"{name}_count{_label_str(labels)} {entry['count']}")
        else:
            lines.append(f"{name}{_label_str(labels)} {_fmt_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> "dict[tuple[str, tuple], float]":
    """Parse Prometheus text into ``{(name, ((label, value), ...)): value}``.

    Supports the subset :func:`to_prometheus` emits (which is the
    subset the format defines for counters/gauges/histograms).  A
    malformed sample line raises :class:`ValueError` with its line
    number.
    """
    samples: "dict[tuple[str, tuple], float]" = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                label_part, value_part = rest.rsplit("}", 1)
                labels = []
                for item in _split_labels(label_part):
                    k, v = item.split("=", 1)
                    labels.append((k.strip(), json.loads(v.strip())))
                key = (name.strip(), tuple(sorted(labels)))
            else:
                name, value_part = line.rsplit(None, 1)
                key = (name.strip(), ())
                value_part = " " + value_part
            # float() accepts "+Inf"/"-Inf"/"NaN" natively.
            samples[key] = float(value_part.strip())
        except Exception as exc:
            raise ValueError(
                f"malformed Prometheus sample on line {lineno}: {line!r} ({exc})"
            ) from exc
    return samples


def _split_labels(label_part: str) -> "list[str]":
    """Split ``k1="v1",k2="v2"`` respecting quoted commas."""
    items, depth, current = [], False, []
    for ch in label_part:
        if ch == '"':
            depth = not depth
            current.append(ch)
        elif ch == "," and not depth:
            if current:
                items.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        items.append("".join(current))
    return [i for i in (s.strip() for s in items) if i]


# ----------------------------------------------------------------------
# Human-readable table
# ----------------------------------------------------------------------
def _table(headers: "list[str]", rows: "list[tuple]") -> str:
    cells = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
        for c, h in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def describe_snapshot(snapshot: dict) -> str:
    """Human summary: one table for scalars, one for histograms."""
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"unsupported metrics snapshot schema {snapshot.get('schema')!r}"
        )
    scalars, hists = [], []
    for entry in snapshot["metrics"]:
        label = entry["name"] + _label_str(entry["labels"])
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            mn = entry["min"] if entry["min"] is not None else 0.0
            mx = entry["max"] if entry["max"] is not None else 0.0
            p50, p95, p99 = (
                estimate_percentile(
                    tuple(entry["buckets"]), entry["counts"], mn, mx, q
                )
                for q in (0.50, 0.95, 0.99)
            )
            hists.append(
                (label, count, _ms(mean), _ms(p50), _ms(p95), _ms(p99), _ms(mx))
            )
        else:
            scalars.append((label, f"{entry['value']:g}"))
    parts = []
    if scalars:
        parts.append(_table(["metric", "value"], scalars))
    if hists:
        parts.append(
            _table(
                ["histogram", "count", "mean [ms]", "p50 [ms]", "p95 [ms]",
                 "p99 [ms]", "max [ms]"],
                hists,
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def write_prometheus(snapshot: dict, path: "str | Path") -> Path:
    """Write the Prometheus text exposition of ``snapshot`` to ``path``."""
    path = Path(path)
    path.write_text(to_prometheus(snapshot), encoding="utf-8")
    return path


def write_snapshot_json(snapshot: dict, path: "str | Path") -> Path:
    """Write the raw snapshot dict as JSON to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_snapshot_json(path: "str | Path") -> dict:
    """Inverse of :func:`write_snapshot_json` (validates the schema)."""
    snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: unsupported metrics snapshot schema "
            f"{snapshot.get('schema')!r}"
        )
    return snapshot
