"""Online algorithm-health monitoring: live gauges + threshold alerts.

The observability layer so far measures the *system* (latencies,
cache ops, fallbacks).  This module measures the *algorithm*, the
quantities the smoothed-online-allocation literature evaluates
controllers by — Perez-Salazar et al. judge efficiency against an
offline benchmark, Wang et al. track reconfiguration-cost share — as
live per-slot gauges instead of post-hoc plots:

* **empirical competitive ratio** — cumulative realized cost over a
  per-slot cheapest-route lower bound on the offline optimum.  For
  slot ``t`` any feasible solution must route every tier-1 cloud's
  workload over its SLA edges, paying at least
  ``lambda_j * min_{e in E_j}(a_{i(e),t} + c_{e,t})`` (coverage needs
  ``y >= s`` and ``X >= routed``; reconfiguration charges are >= 0),
  so the slot bounds sum to a true lower bound on OPT and the ratio
  ``cost / bound`` upper-bounds the empirical competitive ratio of
  :func:`repro.core.competitive.empirical_ratio` online, no offline
  solve required.
* **switching-cost share** — cumulative reconfiguration cost over
  cumulative total cost, the paper's smoothing half of the objective.
* **SLO burn rate** — deadline-miss rate over a sliding window,
  normalized by the allowed miss budget (``slo_target``): burn > 1
  means the error budget is being spent faster than allowed (the SRE
  reading).
* **tier-2 hedge-check failure rate** — the batched backend's
  ``hedge_*`` sequential fallbacks over its decided slots, read from
  the live registry.
* **cache hit-ratio trend** — cumulative plus windowed hit ratio of
  ``solver_cache_ops_total``.

Gauges are published as ``health_*`` into the active registry, and
declarative :class:`AlertRule` thresholds (``"competitive_ratio>1.5:3"``)
emit ``alert`` events into the serve event log when breached.

Unlike the rest of :mod:`repro.obs` this module needs numpy (it prices
decisions), so it is imported lazily by its users rather than from the
package root.
"""

from __future__ import annotations

import re
from collections import deque

import numpy as np

from repro.obs import metrics as obs_metrics

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}

_RULE_RE = re.compile(
    r"^\s*([A-Za-z_][\w.]*)\s*(>=|<=|>|<)\s*([-+0-9.eE]+)\s*(?::\s*(\d+))?\s*$"
)


class AlertRule:
    """One declarative threshold over a health gauge.

    Spec syntax: ``metric OP threshold[:for_slots]`` — e.g.
    ``competitive_ratio>1.5:3`` fires when the empirical competitive
    ratio exceeds 1.5 for three consecutive observed slots.  The
    metric may be written with or without the ``health_`` prefix.
    A rule fires **once per breach streak**: after firing it stays
    silent until the condition clears, then re-arms.
    """

    def __init__(self, spec: str) -> None:
        m = _RULE_RE.match(spec)
        if m is None:
            raise ValueError(
                f"malformed alert rule {spec!r}; expected "
                f"'metric>threshold' or 'metric>=threshold:slots' "
                f"(ops: > >= < <=)"
            )
        metric, op, threshold, for_slots = m.groups()
        self.spec = spec.strip()
        self.metric = (
            metric if metric.startswith("health_") else f"health_{metric}"
        )
        self.op = op
        self.threshold = float(threshold)
        self.for_slots = int(for_slots) if for_slots else 1
        if self.for_slots < 1:
            raise ValueError(f"alert rule {spec!r}: for_slots must be >= 1")
        self.streak = 0
        self.fired = False

    def update(self, value: "float | None") -> bool:
        """Feed one slot's gauge value; returns True when firing."""
        if value is None or not _OPS[self.op](value, self.threshold):
            self.streak = 0
            self.fired = False
            return False
        self.streak += 1
        if self.streak >= self.for_slots and not self.fired:
            self.fired = True
            return True
        return False

    def __repr__(self) -> str:
        return f"AlertRule({self.spec!r})"


class HealthMonitor:
    """Per-slot algorithm-health gauges + alert-rule evaluation.

    Parameters
    ----------
    network:
        The :class:`~repro.model.network.CloudNetwork` decisions are
        priced against.
    rules:
        Alert specs (strings) or :class:`AlertRule` instances.
    slo_target:
        Allowed deadline-miss fraction; the burn-rate gauge is the
        windowed miss rate divided by this budget.
    window:
        Sliding-window length (slots) for the burn-rate and cache
        hit-ratio trend gauges.

    The serve loop calls :meth:`observe_slot` once per decided slot;
    all gauges are also kept in :attr:`values` so rules (and tests)
    work even while the metrics registry is disabled.
    """

    def __init__(
        self,
        network,
        rules: "list | tuple" = (),
        slo_target: float = 0.1,
        window: int = 24,
    ) -> None:
        if not (0 < slo_target <= 1):
            raise ValueError(f"slo_target must be in (0, 1], got {slo_target}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.network = network
        self.rules = [
            r if isinstance(r, AlertRule) else AlertRule(r) for r in rules
        ]
        self.slo_target = float(slo_target)
        self.window = int(window)
        self.values: "dict[str, float]" = {}
        self.alerts: "list[dict]" = []
        self._cost_total = 0.0
        self._cost_recon = 0.0
        self._bound_total = 0.0
        self._prev_X = np.zeros(network.n_tier2)
        self._prev_y = np.zeros(network.n_edges)
        self._misses: deque = deque(maxlen=self.window)
        self._cache_window: deque = deque(maxlen=self.window)
        self._cache_prev = (0.0, 0.0)  # cumulative (hits, misses) last slot

    # ------------------------------------------------------------------
    def _slot_cost(self, slot, decision) -> "tuple[float, float]":
        """(total, reconfiguration) cost increment of one applied slot."""
        net = self.network
        X = net.aggregate_tier2(np.asarray(decision.x, dtype=float))
        y = np.asarray(decision.y, dtype=float)
        alloc = float(slot.tier2_price @ X) + float(slot.link_price @ y)
        recon = float(
            np.maximum(X - self._prev_X, 0.0) @ net.tier2_recon_price
        ) + float(np.maximum(y - self._prev_y, 0.0) @ net.edge_recon_price)
        self._prev_X, self._prev_y = X, y
        return alloc + recon, recon

    def _slot_bound(self, slot) -> float:
        """Cheapest-route lower bound on any feasible slot cost."""
        net = self.network
        edge_price = slot.tier2_price[net.edge_i] + slot.link_price
        cheapest = np.full(net.n_tier1, np.inf)
        np.minimum.at(cheapest, net.edge_j, edge_price)
        workload = np.asarray(slot.workload, dtype=float)
        active = workload > 0
        if not np.any(active):
            return 0.0
        return float(workload[active] @ cheapest[active])

    def _registry_rates(self) -> None:
        """Gauges folded from live registry counter families."""
        reg = obs_metrics.active()
        hedge_fail = slots = fallbacks = 0.0
        hits = misses = 0.0
        if reg is not None:
            for labels, value in reg.family_values(
                "backend_sequential_fallbacks_total"
            ):
                fallbacks += value
                if str(labels.get("reason", "")).startswith("hedge_"):
                    hedge_fail += value
            for _, value in reg.family_values("backend_slots_total"):
                slots += value
            for labels, value in reg.family_values("solver_cache_ops_total"):
                if labels.get("op") == "hit":
                    hits = value
                elif labels.get("op") == "miss":
                    misses = value
        if slots + fallbacks > 0:
            self.values["health_hedge_failure_rate"] = hedge_fail / (
                slots + fallbacks
            )
        if hits + misses > 0:
            self.values["health_cache_hit_ratio"] = hits / (hits + misses)
        prev_h, prev_m = self._cache_prev
        self._cache_window.append((hits - prev_h, misses - prev_m))
        self._cache_prev = (hits, misses)
        wh = sum(h for h, _ in self._cache_window)
        wm = sum(m for _, m in self._cache_window)
        if wh + wm > 0:
            self.values["health_cache_hit_ratio_window"] = wh / (wh + wm)

    # ------------------------------------------------------------------
    def observe_slot(
        self,
        t: int,
        slot,
        decision,
        outcome=None,
        log=None,
    ) -> "list[dict]":
        """Fold one decided slot into the gauges; evaluate the rules.

        ``outcome`` (a serve :class:`~repro.serve.runtime.SlotOutcome`)
        supplies the deadline-miss bit for the burn-rate window;
        ``log`` (an :class:`~repro.serve.events.EventLog`) receives
        ``alert`` events for fired rules.  Returns the alerts fired
        this slot.
        """
        if decision is not None:
            cost, recon = self._slot_cost(slot, decision)
            self._cost_total += cost
            self._cost_recon += recon
            self._bound_total += self._slot_bound(slot)
            self.values["health_cumulative_cost"] = self._cost_total
            self.values["health_offline_bound"] = self._bound_total
            if self._bound_total > 0:
                self.values["health_competitive_ratio"] = (
                    self._cost_total / self._bound_total
                )
            elif self._cost_total <= 1e-12:
                self.values["health_competitive_ratio"] = 1.0
            if self._cost_total > 0:
                self.values["health_switching_share"] = (
                    self._cost_recon / self._cost_total
                )
        self._misses.append(
            1.0 if (outcome is not None and outcome.deadline_missed) else 0.0
        )
        self.values["health_slo_burn_rate"] = (
            sum(self._misses) / len(self._misses)
        ) / self.slo_target
        self._registry_rates()
        self._publish()
        return self._evaluate(t, log)

    def _publish(self) -> None:
        reg = obs_metrics.active()
        if reg is None:
            return
        help_ = {
            "health_cumulative_cost": "realized cumulative cost (allocation + reconfiguration)",
            "health_offline_bound": "cumulative cheapest-route lower bound on the offline optimum",
            "health_competitive_ratio": "cumulative cost / offline lower bound (upper-bounds the empirical competitive ratio)",
            "health_switching_share": "reconfiguration share of cumulative cost",
            "health_slo_burn_rate": "windowed deadline-miss rate / slo_target (burn > 1 overspends the budget)",
            "health_hedge_failure_rate": "batched-backend hedge-check failures per attempted slot",
            "health_cache_hit_ratio": "cumulative solver-cache hit ratio",
            "health_cache_hit_ratio_window": "solver-cache hit ratio over the trailing window",
        }
        for name, value in self.values.items():
            reg.gauge(name, help=help_.get(name, "")).set(value)

    def _evaluate(self, t: int, log) -> "list[dict]":
        fired: "list[dict]" = []
        for rule in self.rules:
            if rule.update(self.values.get(rule.metric)):
                record = {
                    "rule": rule.spec,
                    "metric": rule.metric,
                    "value": self.values[rule.metric],
                    "threshold": rule.threshold,
                    "op": rule.op,
                    "for_slots": rule.for_slots,
                }
                fired.append(record)
                self.alerts.append({"t": t, **record})
                if log is not None:
                    log.emit("alert", t=t, **record)
        return fired
