"""Streaming telemetry pipeline: per-process sinks + cross-process merge.

The metrics registry (:mod:`repro.obs.metrics`) aggregates one
process's instruments; this module streams that state *out* of the
process and merges many processes' streams back into one registry —
the measurement substrate for parallel sweeps (``--jobs``), the serve
runtime, and the future sharded multi-region runtime.

Three pieces:

* :class:`TelemetrySink` — periodically writes delta-encoded registry
  snapshots to one JSONL file per process inside a shared telemetry
  directory.  Every record carries *absolute* instrument state (only
  the entries that changed since the last flush), so replaying a
  sink's records reconstructs the registry exactly as of its last
  flush, a torn final line (crash mid-write) loses at most the last
  interval, and re-applying a record is a no-op.
* :class:`TelemetryAggregator` — tails every sink file under a
  directory and merges them into one registry.  Ingestion is keyed by
  ``(sink, seq)``: re-ingesting a record is a no-op and ingestion
  order never matters, so the merge is associative, commutative and
  idempotent (property-tested).  Across sinks, counters and histogram
  aggregates are summed and gauges joined by ``max`` (the "worst of
  any process" reading, and the lattice join that keeps the merge
  order-free).  The merged state round-trips through the exact
  snapshot format — :func:`repro.obs.metrics.registry_from_snapshot`
  rebuilds the combined registry.
* a ``repro top``-style console view (:func:`render_watch`) over any
  snapshot — live per-phase latencies, backend/cache op counts,
  fallback counts and health gauges — behind ``repro telemetry watch``
  and ``repro serve --watch``.

An *ambient* sink (:func:`attach` / :func:`autoflush`) lets hot loops
flush on a cadence with one module-global check per step, mirroring
how the registry itself is activated.

This module is dependency-free (stdlib only), like the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    estimate_percentile,
    registry_from_snapshot,
)

#: Schema identifier stamped on every telemetry record.
TELEMETRY_SCHEMA = "repro-telemetry/v1"

#: File-name suffix the aggregator discovers sinks by.
SINK_SUFFIX = ".telemetry.jsonl"


def _entry_key(entry: dict) -> "tuple[str, tuple]":
    """The ``(name, labels)`` identity of one snapshot entry.

    Matches the ordering key :meth:`MetricsRegistry.snapshot` sorts by,
    so folded states list entries in the exact snapshot order.
    """
    return (
        entry["name"],
        tuple(sorted((str(k), str(v)) for k, v in entry["labels"].items())),
    )


# ----------------------------------------------------------------------
# Sink: one JSONL stream per process
# ----------------------------------------------------------------------
class TelemetrySink:
    """Streams delta-encoded registry snapshots to a per-process file.

    Parameters
    ----------
    directory:
        Shared telemetry directory (created if missing).  Each sink
        owns one ``<sink_id>.telemetry.jsonl`` file inside it; the id
        defaults to ``proc-<pid>`` and is suffixed on collision so two
        runs never interleave writes into one file.
    registry:
        Registry to snapshot; defaults to whichever registry is
        *active* at each flush (so a sink can be created before
        :func:`repro.obs.metrics.enable`).
    label:
        Base sink id instead of ``proc-<pid>`` (tests, named shards).
    full_every:
        Every ``full_every``-th record carries the complete snapshot
        instead of a delta, bounding how far back a tailing reader
        must look to bootstrap.
    min_interval_s:
        Cadence floor for non-forced flushes (:meth:`flush` with
        ``force=False``): calls inside the interval are free no-ops,
        so hot loops can call unconditionally.

    Records are single JSON lines appended and flushed immediately —
    one writer per file, so appends never interleave, and a crash can
    only tear the final line (which readers skip).  Delta entries
    carry *absolute* values of the families that changed, never
    increments: replay is a per-entry overwrite, and applying a record
    twice changes nothing.
    """

    def __init__(
        self,
        directory: "str | Path",
        registry: "MetricsRegistry | None" = None,
        label: "str | None" = None,
        full_every: int = 50,
        min_interval_s: float = 0.0,
    ) -> None:
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every}")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.full_every = int(full_every)
        self.min_interval_s = float(min_interval_s)
        base = label if label else f"proc-{os.getpid()}"
        self.sink_id, path = base, self.dir / f"{base}{SINK_SUFFIX}"
        n = 0
        while path.exists():
            n += 1
            self.sink_id = f"{base}-{n}"
            path = self.dir / f"{self.sink_id}{SINK_SUFFIX}"
        self.path = path
        self.seq = 0
        self._last: "dict[tuple, dict]" = {}
        self._last_flush = float("-inf")
        self._fh = open(self.path, "a", encoding="utf-8")

    def _resolve_registry(self) -> "MetricsRegistry | None":
        return self.registry if self.registry is not None else obs_metrics.active()

    def flush(self, force: bool = True) -> bool:
        """Write one record if anything changed; returns whether it did.

        ``force=False`` additionally respects ``min_interval_s`` so
        per-step call sites stay cheap.
        """
        if self._fh is None:
            return False
        if (
            not force
            and self.min_interval_s > 0
            and time.monotonic() - self._last_flush < self.min_interval_s
        ):
            return False
        reg = self._resolve_registry()
        if reg is None:
            return False
        entries = reg.snapshot()["metrics"]
        current = {_entry_key(e): e for e in entries}
        kind = "full" if self.seq % self.full_every == 0 else "delta"
        payload = (
            entries
            if kind == "full"
            else [e for e in entries if self._last.get(_entry_key(e)) != e]
        )
        self._last_flush = time.monotonic()
        if not payload and self.seq > 0:
            return False
        record = {
            "schema": TELEMETRY_SCHEMA,
            "sink": self.sink_id,
            "seq": self.seq,
            "kind": kind,
            "metrics": payload,
        }
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self._last = current
        self.seq += 1
        return True

    def close(self) -> None:
        """Final flush and release the file handle."""
        if self._fh is None:
            return
        self.flush(force=True)
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_sink(path: "str | Path") -> "list[dict]":
    """Load a sink file's records, tolerating a torn final line.

    A record line that fails to parse is an error — unless it is the
    *last* line of the file, which a crash mid-append legitimately
    truncates; that line is skipped.
    """
    lines = Path(path).read_text(encoding="utf-8").split("\n")
    records: "list[dict]" = []
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines):  # torn tail from a crashed writer
                break
            raise ValueError(
                f"{path}: malformed telemetry record on line {i}: {exc}"
            ) from exc
        if record.get("schema") != TELEMETRY_SCHEMA:
            raise ValueError(
                f"{path}: unsupported telemetry schema "
                f"{record.get('schema')!r} on line {i}"
            )
        records.append(record)
    return records


def replay_sink(records: "list[dict]") -> dict:
    """Fold one sink's records into its registry snapshot at last flush.

    Records apply in ``seq`` order as per-entry overwrites (entries
    carry absolute state), so duplicates and replays are no-ops and
    the result equals the source registry's own ``snapshot()``
    exactly — the round trip the delta encoding is tested against.
    """
    entries: "dict[tuple, dict]" = {}
    for record in sorted(records, key=lambda r: int(r["seq"])):
        for entry in record["metrics"]:
            entries[_entry_key(entry)] = entry
    return {
        "schema": METRICS_SCHEMA,
        "metrics": [entries[k] for k in sorted(entries)],
    }


# ----------------------------------------------------------------------
# Cross-sink merge
# ----------------------------------------------------------------------
def merge_entry(a: dict, b: dict) -> dict:
    """Join two snapshot entries of the same ``(name, labels)``.

    Counters and histogram aggregates sum (each sink's values are
    disjoint contributions); gauges join by ``max`` — the order-free
    lattice join, read as "the worst any process reports" for the
    health gauges this layer monitors.
    """
    if a["type"] != b["type"]:
        raise ValueError(
            f"metric {a['name']!r} is a {a['type']} in one sink and a "
            f"{b['type']} in another; sinks disagree on the family kind"
        )
    out = dict(a)
    out["help"] = a.get("help") or b.get("help") or ""
    if a["type"] == "counter":
        out["value"] = float(a["value"]) + float(b["value"])
    elif a["type"] == "gauge":
        out["value"] = max(float(a["value"]), float(b["value"]))
    else:  # histogram
        if list(a["buckets"]) != list(b["buckets"]):
            raise ValueError(
                f"histogram {a['name']!r} has bucket layout {a['buckets']} "
                f"in one sink and {b['buckets']} in another"
            )
        out["counts"] = [int(x) + int(y) for x, y in zip(a["counts"], b["counts"])]
        out["sum"] = float(a["sum"]) + float(b["sum"])
        out["count"] = int(a["count"]) + int(b["count"])
        mins = [m for m in (a["min"], b["min"]) if m is not None]
        maxs = [m for m in (a["max"], b["max"]) if m is not None]
        out["min"] = min(mins) if mins else None
        out["max"] = max(maxs) if maxs else None
    return out


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Combine per-process snapshots into one merged snapshot.

    Entry-wise :func:`merge_entry`; the result is a valid
    ``repro-metrics/v1`` snapshot, so
    :func:`~repro.obs.metrics.registry_from_snapshot` rebuilds the
    combined registry and every exporter applies unchanged.
    """
    entries: "dict[tuple, dict]" = {}
    for snapshot in snapshots:
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema {snapshot.get('schema')!r}"
            )
        for entry in snapshot["metrics"]:
            key = _entry_key(entry)
            have = entries.get(key)
            entries[key] = dict(entry) if have is None else merge_entry(have, entry)
    return {
        "schema": METRICS_SCHEMA,
        "metrics": [entries[k] for k in sorted(entries)],
    }


def merge_snapshot_into(registry: MetricsRegistry, snapshot: dict) -> None:
    """Fold a merged snapshot into a live registry (same join rules).

    Used by the parallel sweep runner to land worker telemetry in the
    coordinator's ``--metrics`` registry.
    """
    for entry in snapshot["metrics"]:
        name, labels, help_ = entry["name"], entry["labels"], entry.get("help", "")
        if entry["type"] == "counter":
            registry.counter(name, help=help_, **labels).inc(float(entry["value"]))
        elif entry["type"] == "gauge":
            gauge = registry.gauge(name, help=help_, **labels)
            gauge.set(max(gauge.value, float(entry["value"])))
        else:
            hist = registry.histogram(
                name, help=help_, buckets=tuple(entry["buckets"]), **labels
            )
            hist.counts = [
                int(x) + int(y) for x, y in zip(hist.counts, entry["counts"])
            ]
            hist.sum += float(entry["sum"])
            hist.count += int(entry["count"])
            if entry["min"] is not None:
                hist.min = min(hist.min, float(entry["min"]))
            if entry["max"] is not None:
                hist.max = max(hist.max, float(entry["max"]))


class TelemetryAggregator:
    """Tails every sink under a directory and merges them into one view.

    ``poll()`` reads any bytes appended since the last poll (complete
    lines only — a torn tail is left for the next poll), and
    ``ingest()`` applies one record keyed by ``(sink, seq)``: already
    seen pairs are skipped, so ingestion is idempotent and
    order-independent and the merged state is a pure function of the
    record *set*.  Sink files are discovered recursively, so sweep
    subdirectories and per-shard subtrees all land in one view.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.dir = Path(directory)
        self._records: "dict[str, dict[int, dict]]" = {}
        self._offsets: "dict[Path, int]" = {}

    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Ingest new records from every sink file; returns how many."""
        ingested = 0
        if not self.dir.exists():
            return 0
        for path in sorted(self.dir.rglob(f"*{SINK_SUFFIX}")):
            ingested += self._poll_file(path)
        return ingested

    def _poll_file(self, path: Path) -> int:
        offset = self._offsets.get(path, 0)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except OSError:
            return 0  # vanished between glob and open
        end = data.rfind(b"\n")
        if end < 0:
            return 0  # nothing complete yet
        self._offsets[path] = offset + end + 1
        ingested = 0
        for line in data[:end].decode("utf-8").split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed telemetry record: {exc}"
                ) from exc
            ingested += int(self.ingest(record))
        return ingested

    def ingest(self, record: dict) -> bool:
        """Apply one record; returns False if ``(sink, seq)`` was seen."""
        if record.get("schema") != TELEMETRY_SCHEMA:
            raise ValueError(
                f"unsupported telemetry schema {record.get('schema')!r}"
            )
        seqs = self._records.setdefault(str(record["sink"]), {})
        seq = int(record["seq"])
        if seq in seqs:
            return False
        seqs[seq] = record
        # A full record supersedes everything before it; drop the
        # superseded prefix so long-lived aggregations stay bounded.
        if record.get("kind") == "full":
            for old in [s for s in seqs if s < seq]:
                del seqs[old]
        return True

    # ------------------------------------------------------------------
    def sink_ids(self) -> "list[str]":
        return sorted(self._records)

    def sink_snapshot(self, sink_id: str) -> dict:
        """The reconstructed snapshot of one sink's latest state."""
        return replay_sink(list(self._records[sink_id].values()))

    def merged_snapshot(self) -> dict:
        """All sinks combined (see :func:`merge_snapshots`)."""
        return merge_snapshots(
            [self.sink_snapshot(s) for s in self.sink_ids()]
        )

    def merged(self) -> MetricsRegistry:
        """The combined registry, via the exact snapshot round trip."""
        return registry_from_snapshot(self.merged_snapshot())


# ----------------------------------------------------------------------
# Deterministic view (CI: parallel == serial)
# ----------------------------------------------------------------------
def deterministic_view(snapshot: dict) -> dict:
    """The run-invariant projection of a snapshot.

    Counter values and histogram *observation counts* are pure
    functions of the work performed, so they must be byte-identical
    between a serial sweep and an aggregator-merged parallel sweep of
    the same points (CI asserts this).  Wall-time-valued fields
    (histogram sums/buckets/min/max) and instantaneous gauges are
    dropped — they measure the machine, not the work.
    """
    metrics = []
    for entry in snapshot["metrics"]:
        if entry["type"] == "counter":
            metrics.append(
                {
                    "name": entry["name"],
                    "type": "counter",
                    "labels": dict(entry["labels"]),
                    "value": entry["value"],
                }
            )
        elif entry["type"] == "histogram":
            metrics.append(
                {
                    "name": entry["name"],
                    "type": "histogram",
                    "labels": dict(entry["labels"]),
                    "count": entry["count"],
                }
            )
    return {"schema": f"{METRICS_SCHEMA}#deterministic", "metrics": metrics}


# ----------------------------------------------------------------------
# Ambient sink (autoflush from hot loops)
# ----------------------------------------------------------------------
_active_sink: "TelemetrySink | None" = None


def attach(
    directory: "str | Path",
    registry: "MetricsRegistry | None" = None,
    label: "str | None" = None,
    min_interval_s: float = 1.0,
    **kwargs,
) -> TelemetrySink:
    """Install a sink as the process-wide autoflush target."""
    global _active_sink
    if _active_sink is not None:
        _active_sink.close()
    _active_sink = TelemetrySink(
        directory,
        registry=registry,
        label=label,
        min_interval_s=min_interval_s,
        **kwargs,
    )
    return _active_sink


def detach() -> None:
    """Close and uninstall the ambient sink (final state is flushed)."""
    global _active_sink
    if _active_sink is not None:
        _active_sink.close()
    _active_sink = None


def active_sink() -> "TelemetrySink | None":
    return _active_sink


def forget_inherited() -> None:
    """Drop a fork-inherited ambient sink without touching its file.

    A forked worker process shares the parent's sink object *and* file
    descriptor; :func:`detach` would final-flush the parent's stream
    from the child (duplicate seq, interleaved appends).  Workers call
    this before installing their own sink: the child's reference is
    severed, the parent's stream is untouched.
    """
    global _active_sink
    if _active_sink is not None:
        _active_sink._fh = None
        _active_sink = None


def active_dir() -> "str | None":
    """The ambient sink's telemetry directory, or ``None``."""
    return None if _active_sink is None else str(_active_sink.dir)


def autoflush() -> bool:
    """Cadenced flush of the ambient sink; safe to call per step.

    The engine calls this once per :meth:`SolveSession.step` so long
    in-process runs stream their registry without any plumbing; the
    cost while no sink is attached is one module-global check.
    """
    sink = _active_sink
    if sink is None:
        return False
    return sink.flush(force=False)


# ----------------------------------------------------------------------
# Watch view
# ----------------------------------------------------------------------
#: ANSI clear-screen-and-home, written before each watch repaint.
CLEAR_SCREEN = "\x1b[H\x1b[2J"

_WATCH_COUNTERS = (
    "serve_slots_total",
    "serve_fallbacks_total",
    "serve_deadline_misses_total",
    "serve_unserved_total",
    "serve_alerts_total",
    "serve_checkpoints_total",
    "engine_steps_total",
    "engine_newton_iters_total",
    "backend_slots_total",
    "backend_fast_path_hits_total",
    "backend_sequential_fallbacks_total",
    "solver_cache_ops_total",
)


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_watch(snapshot: dict, title: str = "telemetry") -> str:
    """A compact ``repro top``-style text dashboard of a snapshot.

    Three sections: per-phase serve latency (count/mean/p95), the
    operational counters (slots by path, fallbacks, backend/cache
    ops), and the ``health_*`` / ``shard_*`` gauges (shard liveness
    when a sharded serve streams into the directory).  Pure text —
    the watch loops
    repaint it with :data:`CLEAR_SCREEN`; tests render it once.
    """
    phases: "list[tuple]" = []
    counters: "list[tuple]" = []
    gauges: "list[tuple]" = []
    slots = 0.0
    for entry in snapshot["metrics"]:
        name, labels = entry["name"], entry["labels"]
        if entry["type"] == "histogram" and name in (
            "serve_phase_seconds",
            "serve_slot_seconds",
            "engine_step_seconds",
        ):
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            mn = entry["min"] if entry["min"] is not None else 0.0
            mx = entry["max"] if entry["max"] is not None else 0.0
            p95 = estimate_percentile(
                tuple(entry["buckets"]), entry["counts"], mn, mx, 0.95
            )
            phases.append(
                (
                    name + _label_suffix(labels),
                    count,
                    f"{mean * 1e3:.3f}",
                    f"{p95 * 1e3:.3f}",
                )
            )
        elif entry["type"] == "counter" and name in _WATCH_COUNTERS:
            if name == "serve_slots_total":
                slots += float(entry["value"])
            counters.append((name + _label_suffix(labels), f"{entry['value']:g}"))
        elif entry["type"] == "gauge" and name.startswith(("health_", "shard_")):
            gauges.append((name + _label_suffix(labels), f"{entry['value']:.4g}"))
    parts = [f"== {title} ==  slots decided: {slots:g}"]

    def table(headers: "list[str]", rows: "list[tuple]") -> str:
        cells = [[str(v) for v in row] for row in rows]
        widths = [
            max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
            for c, h in enumerate(headers)
        ]
        line = lambda ps: "  ".join(p.ljust(w) for p, w in zip(ps, widths))
        return "\n".join(
            [line(headers), line(["-" * w for w in widths])]
            + [line(r) for r in cells]
        )

    if phases:
        parts.append(table(["latency", "count", "mean [ms]", "p95 [ms]"], phases))
    if counters:
        parts.append(table(["counter", "value"], counters))
    if gauges:
        parts.append(table(["health gauge", "value"], gauges))
    if len(parts) == 1:
        parts.append("(no telemetry yet)")
    return "\n\n".join(parts)


def watch(
    directory: "str | Path",
    interval_s: float = 1.0,
    iterations: "int | None" = None,
    out=None,
    clear: bool = True,
) -> None:
    """Tail a telemetry directory and repaint the watch view live.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    tests and CI pass a small count.  ``clear=False`` appends frames
    instead of repainting (non-TTY logs).
    """
    out = sys.stdout if out is None else out
    aggregator = TelemetryAggregator(directory)
    n = 0
    try:
        while True:
            aggregator.poll()
            frame = render_watch(
                aggregator.merged_snapshot(),
                title=f"telemetry {directory} [{len(aggregator.sink_ids())} sinks]",
            )
            if clear:
                out.write(CLEAR_SCREEN)
            out.write(frame + "\n")
            out.flush()
            n += 1
            if iterations is not None and n >= iterations:
                return
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return
