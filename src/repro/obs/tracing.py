"""Span-based tracer with nested phase timing and a no-op default.

A *span* is one timed phase of work (``engine.step``, ``serve.solve``,
``barrier.solve`` …) with optional attributes.  Spans nest: each thread
keeps its own stack of open spans, so a span opened while another is
open records that span as its parent — the serve loop's worker-thread
solves produce correctly rooted trees without any plumbing.

Like the metrics registry (:mod:`repro.obs.metrics`), tracing is
**disabled by default**: :func:`span` returns a shared no-op object
whose ``__enter__``/``__exit__``/``set`` do nothing, so instrumented
code pays a single ``is None`` check per phase.  :func:`enable`
installs a :class:`Tracer`; when the tracer has a ``path``, finished
spans are streamed to a JSONL file one object per line (flushed with
the file's normal buffering; :meth:`Tracer.close` flushes the rest) —
the trace-file exporter of the observability layer.

Span timestamps are ``time.perf_counter`` values relative to the
tracer's creation, so within one trace file all spans share a clock;
they are not wall-clock epochs.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

#: Schema identifier stamped on every span line in a JSONL trace.
TRACE_SCHEMA = "repro-trace/v1"


class Span:
    """One timed phase; created via :func:`span` / :meth:`Tracer.span`."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "depth",
        "start", "duration", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: "int | None" = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        """Attach attributes (e.g. outcomes known only mid-span)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._close(self)


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; optionally streams them to JSONL.

    Parameters
    ----------
    path:
        When given, every finished span is appended to this JSONL file.
    keep:
        In-memory retention cap: only the first ``keep`` finished spans
        stay in :attr:`spans` (the stream file, when configured, always
        gets everything); :attr:`dropped` counts the overflow so
        truncation is never silent.
    """

    def __init__(self, path: "str | Path | None" = None, keep: int = 10_000) -> None:
        self.path = None if path is None else Path(path)
        self.keep = int(keep)
        self.spans: "list[dict]" = []
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()
        self._fh = None
        if self.path is not None:
            self._fh = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = stack[-1].depth + 1
        stack.append(span)
        span.start = time.perf_counter() - self._epoch

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - self._epoch - span.start
        stack = self._stack()
        # The span being closed is normally the top of this thread's
        # stack; tolerate out-of-order exits (generator-held contexts)
        # by removing it wherever it is.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        record = {
            "schema": TRACE_SCHEMA,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "name": span.name,
            "start_s": round(span.start, 9),
            "duration_s": round(span.duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        with self._lock:
            if len(self.spans) < self.keep:
                self.spans.append(record)
            else:
                self.dropped += 1
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered spans to the stream file (crash durability).

        The serve loop calls this at every checkpoint so the trace on
        disk always covers at least every durable slot — a kill after
        a checkpoint can no longer lose the spans that led up to it.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: "str | Path") -> "list[dict]":
    """Load a JSONL trace file written by a :class:`Tracer`.

    Blank lines are skipped; a malformed line raises a
    :class:`ValueError` naming its line number.
    """
    spans: "list[dict]" = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed span on line {lineno}: {exc}"
                ) from exc
    return spans


# ----------------------------------------------------------------------
# Active-tracer switch
# ----------------------------------------------------------------------
_active: "Tracer | None" = None


def enable(
    tracer: "Tracer | None" = None,
    path: "str | Path | None" = None,
    keep: int = 10_000,
) -> Tracer:
    """Install ``tracer`` (or a new one writing to ``path``) as active."""
    global _active
    _active = tracer if tracer is not None else Tracer(path=path, keep=keep)
    return _active


def disable() -> None:
    """Close and uninstall the active tracer (no-op default restored)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def forget_inherited() -> None:
    """Drop a fork-inherited tracer without touching its file.

    A forked worker shares the parent's tracer object and open file
    handle; :func:`disable` would flush/close the parent's stream from
    the child, interleaving spans from two processes in one file.
    Workers (the sharded serve runtime) call this instead: the child's
    reference is severed, the parent's stream is untouched.  Mirrors
    :func:`repro.obs.telemetry.forget_inherited`.
    """
    global _active
    _active = None


def active() -> "Tracer | None":
    return _active


def enabled() -> bool:
    return _active is not None


def span(name: str, **attrs):
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _active
    return NULL_SPAN if tracer is None else tracer.span(name, **attrs)


class use:
    """Context manager installing a tracer for the block (tests)."""

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._saved: "Tracer | None" = None

    def __enter__(self) -> Tracer:
        global _active
        self._saved = _active
        _active = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._saved
