"""The built-in scenario corpus.

Six named scenarios over generated continent-scale topologies
(:mod:`repro.topology.generate`), each materializable at two sizes:

========== ======================= =======================
size       regions x edge clouds    horizon
========== ======================= =======================
``smoke``  4 x 3   (12 tier-1)      24 h
``full``   24 x 10 (240 tier-1)     48 h
========== ======================= =======================

* ``geo-diurnal`` — time-zone-shifted diurnal demand (the steady
  state);
* ``flash-crowd`` — a spike cascading east-to-west across regions on
  top of the diurnal base (Perez-Salazar et al.'s flash-crowd regime);
* ``regional-failure`` — one region's demand collapses and resurges
  onto the survivors while its local electricity price spikes
  (correlated failure);
* ``adversarial`` — repeated V-shaped ramps with expensive
  reconfiguration, the Thm 2/3 regime where greedy/FHC ratios blow up;
* ``price-spike`` — diurnal demand under an 8x electricity price
  shock in half the regions (price-driven rebalancing);
* ``ntier-continental`` — a 3-tier metro -> regional -> core
  hierarchy at continental scale (evaluation-only; >2 tiers).

All two-tier scenarios stay in the ``k = 1`` single-PoP-per-region
regime: the SLA graph is a star forest with one component per region,
which is exactly the class where the batched backend's closed forms
apply and sharded serve is bitwise-identical to single-process
(docs/SERVING.md).  Every random draw flows through
``np.random.default_rng(seed)`` in a fixed order, so each
``(name, size, seed)`` triple reproduces its golden fingerprint.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.base import BuiltScenario, Scenario, register
from repro.topology.generate import (
    GeneratedTopology,
    GeoTopologyConfig,
    generate_topology,
)
from repro.workloads.synthetic import diurnal_profile

#: Per-size topology/horizon knobs shared by every two-tier scenario.
SIZE_PARAMS = {
    "smoke": {"n_regions": 4, "tier1_per_region": 3, "horizon": 24},
    "full": {"n_regions": 24, "tier1_per_region": 10, "horizon": 48},
}


def _geo(size: str, seed: int, **overrides) -> "tuple[GeneratedTopology, int]":
    """Generated topology + horizon for one size point."""
    params = SIZE_PARAMS[size]
    config = GeoTopologyConfig(
        n_regions=params["n_regions"],
        tier1_per_region=params["tier1_per_region"],
        pops_per_region=1,
        k=1,
        seed=seed,
        **overrides,
    )
    return generate_topology(config), params["horizon"]


def _diurnal_workload(
    topo: GeneratedTopology,
    horizon: int,
    rng: np.random.Generator,
    base: float = 1.0,
    amplitude: float = 0.4,
    jitter: float = 0.2,
) -> np.ndarray:
    """Time-zone-shifted diurnal demand per edge cloud.

    Each cloud's local peak stays at 14:00 local time: the profile's
    peak hour shifts with the cloud's longitude (15 degrees per hour).
    ``jitter`` adds a per-cloud lognormal volume factor.
    """
    scales = np.exp(rng.normal(0.0, jitter, size=topo.n_tier1))
    cols = []
    for j in range(topo.n_tier1):
        tz = int(np.round(topo.tier1_lon[j] / 15.0))  # hours vs UTC (negative)
        peak = (14 - tz) % 24
        cols.append(scales[j] * diurnal_profile(horizon, base, amplitude, 24, peak))
    return np.column_stack(cols)


def _region_order_west(topo: GeneratedTopology) -> np.ndarray:
    """Regions ordered east -> west (descending center longitude)."""
    return np.argsort(-topo.region_lon, kind="stable")


# ----------------------------------------------------------------------
# 1. geo-diurnal
# ----------------------------------------------------------------------
def _build_geo_diurnal(size: str, seed: int) -> BuiltScenario:
    topo, horizon = _geo(size, seed)
    rng = np.random.default_rng(seed + 1)
    workload = _diurnal_workload(topo, horizon, rng)
    return BuiltScenario(
        "geo-diurnal", size, seed,
        instance=topo.build_instance(workload), topology=topo,
        notes=["steady-state diurnal demand; local peak 14:00 in every region"],
    )


# ----------------------------------------------------------------------
# 2. flash-crowd
# ----------------------------------------------------------------------
def _build_flash_crowd(size: str, seed: int) -> BuiltScenario:
    topo, horizon = _geo(size, seed)
    rng = np.random.default_rng(seed + 1)
    workload = _diurnal_workload(topo, horizon, rng)
    # The crowd breaks out in the easternmost region at hour 6 and
    # cascades westward: each subsequent region spikes 2 h later at
    # 85 % of the previous height (viral decay).  Spikes rise
    # instantly and taper linearly over 3 h — the shape that defeats
    # prediction-based control.
    order = _region_order_west(topo)
    width, t0, height = 3, 6, 3.0
    taper = np.linspace(1.0, 0.0, width, endpoint=False)
    for rank, region in enumerate(order):
        start = t0 + 2 * rank
        if start >= horizon:
            break
        stop = min(start + width, horizon)
        clouds = np.flatnonzero(topo.tier1_region == region)
        bump = height * (0.85 ** rank) * taper[: stop - start]
        workload[start:stop, clouds] += bump[:, None]
    return BuiltScenario(
        "flash-crowd", size, seed,
        instance=topo.build_instance(workload), topology=topo,
        notes=["spike cascade east->west, 2 h lag, 0.85 decay per hop"],
    )


# ----------------------------------------------------------------------
# 3. regional-failure
# ----------------------------------------------------------------------
def _build_regional_failure(size: str, seed: int) -> BuiltScenario:
    topo, horizon = _geo(size, seed)
    rng = np.random.default_rng(seed + 1)
    workload = _diurnal_workload(topo, horizon, rng)
    # Region 0 (the first metro anchor) fails for 6 hours starting at
    # hour 8: its demand collapses to 10 % (clients fail over via
    # DNS/anycast) and the lost volume resurges uniformly onto every
    # surviving cloud.  Its local electricity market simultaneously
    # spikes 10x (the grid event that took the region down).
    failed = 0
    start, stop = 8, min(8 + 6, horizon)
    down = np.flatnonzero(topo.tier1_region == failed)
    up = np.flatnonzero(topo.tier1_region != failed)
    lost = 0.9 * workload[start:stop, down].sum(axis=1)
    workload[np.ix_(np.arange(start, stop), down)] *= 0.1
    workload[np.ix_(np.arange(start, stop), up)] += (
        lost / max(up.size, 1)
    )[:, None]

    # Default prices, then the failed region's PoP price shock.
    base = topo.build_instance(workload)
    tier2_price = base.tier2_price.copy()
    failed_pops = np.flatnonzero(topo.tier2_region == failed)
    tier2_price[np.ix_(np.arange(start, stop), failed_pops)] *= 10.0
    return BuiltScenario(
        "regional-failure", size, seed,
        instance=topo.build_instance(workload, tier2_price=tier2_price),
        topology=topo,
        notes=[f"region 0 down hours [{start},{stop}); 10x local price shock"],
    )


# ----------------------------------------------------------------------
# 4. adversarial
# ----------------------------------------------------------------------
def _build_adversarial(size: str, seed: int) -> BuiltScenario:
    # Thm 2/3 regime: repeated deep V-shaped ramps under expensive
    # reconfiguration (recon_weight 5e3 instead of 1e3).  Greedy and
    # FHC-style controllers pay the valley teardown every cycle; the
    # regularized online controller's ratio stays bounded.
    topo, horizon = _geo(size, seed, recon_weight=5e3)
    rng = np.random.default_rng(seed + 1)
    peak, valley, cycle = 1.8, 0.05, 12
    half = cycle // 2
    vee = np.concatenate(
        [np.linspace(peak, valley, half), np.linspace(valley, peak, half)]
    )
    profile = np.tile(vee, horizon // cycle + 1)[:horizon]
    jitter = 1.0 + 0.1 * rng.random((horizon, topo.n_tier1))
    workload = profile[:, None] * jitter
    return BuiltScenario(
        "adversarial", size, seed,
        instance=topo.build_instance(workload), topology=topo,
        notes=["repeated V-ramps, recon_weight 5e3 (Thm 2/3 stress shape)"],
    )


# ----------------------------------------------------------------------
# 5. price-spike
# ----------------------------------------------------------------------
def _build_price_spike(size: str, seed: int) -> BuiltScenario:
    topo, horizon = _geo(size, seed)
    rng = np.random.default_rng(seed + 1)
    workload = _diurnal_workload(topo, horizon, rng)
    base = topo.build_instance(workload)
    # An 8x electricity price spike hits the odd-indexed regions'
    # markets for 4 hours in the afternoon peak — the regime where
    # price-aware rebalancing pays and switching costs bite back.
    tier2_price = base.tier2_price.copy()
    start, stop = 13, min(13 + 4, horizon)
    shocked = np.flatnonzero(topo.tier2_region % 2 == 1)
    tier2_price[np.ix_(np.arange(start, stop), shocked)] *= 8.0
    return BuiltScenario(
        "price-spike", size, seed,
        instance=topo.build_instance(workload, tier2_price=tier2_price),
        topology=topo,
        notes=[f"8x price shock, odd regions, hours [{start},{stop})"],
    )


# ----------------------------------------------------------------------
# 6. ntier-continental (>2 tiers, evaluation-only)
# ----------------------------------------------------------------------
def _build_ntier_continental(size: str, seed: int) -> BuiltScenario:
    """3-tier metro -> regional -> core hierarchy on the geo placement.

    Edge clouds and regional nodes come from the same generated
    placement as the two-tier scenarios; a small core tier sits on
    top.  Each edge cloud links to its own and the next region's node
    (path diversity), each regional node to two cores.  Capacities
    are peak-provisioned bottom-up with the same 1.25 headroom rule.
    """
    from repro.model.network import Cloud
    from repro.ntier import LayeredNetwork, LayerLink, NTierInstance

    topo, horizon = _geo(size, seed)
    n_cores = 2 if size == "smoke" else 4
    rng = np.random.default_rng(seed + 1)
    workload = _diurnal_workload(topo, horizon, rng)
    peaks = workload.max(axis=0)
    R = topo.n_regions

    # Regional (mid) capacity: 1.25x the peaks it can be asked to
    # carry — its own region's plus the previous region's (which links
    # forward to it).
    region_peak = np.array(
        [peaks[topo.tier1_region == r].sum() for r in range(R)]
    )
    mid_cap = 1.25 * (region_peak + np.roll(region_peak, 1))
    core_cap = 1.25 * np.full(n_cores, 2.0 * region_peak.sum() / n_cores)

    edge = [Cloud(topo.tier1_name(j), np.inf) for j in range(topo.n_tier1)]
    mid = [
        Cloud(f"regional-{r}", float(mid_cap[r]), 60.0) for r in range(R)
    ]
    top = [Cloud(f"core-{u}", float(core_cap[u]), 90.0) for u in range(n_cores)]

    links = []
    for j in range(topo.n_tier1):
        r = int(topo.tier1_region[j])
        for u in {r, (r + 1) % R}:
            links.append(LayerLink(1, j, u, 1.25 * float(peaks[j]) + 1e-6, 40.0))
    for r in range(R):
        for v in {r % n_cores, (r + 1) % n_cores}:
            links.append(LayerLink(2, r, v, float(mid_cap[r]) + 1e-6, 40.0))
    net = LayeredNetwork([edge, mid, top], links)

    node_price = 0.05 * (1.0 + 0.3 * rng.random((horizon, net.n_upper_nodes)))
    link_price = 0.02 * np.ones((horizon, net.n_links))
    inst = NTierInstance(net, workload, node_price, link_price)
    return BuiltScenario(
        "ntier-continental", size, seed, ntier=inst, topology=topo,
        notes=[f"3-tier {topo.n_tier1}x{R}x{n_cores}; evaluation-only"],
    )


# ----------------------------------------------------------------------
register(Scenario(
    name="geo-diurnal",
    summary="time-zone-shifted diurnal demand on a continent-scale topology",
    details=(
        "Every edge cloud sees a sinusoidal day/night profile peaking at "
        "14:00 local time, with a per-cloud lognormal volume factor.  The "
        "steady-state baseline the other scenarios perturb; also the CI "
        "smoke scenario (golden fingerprint + sharded-serve parity)."
    ),
    builder=_build_geo_diurnal,
    default_seed=11,
))
register(Scenario(
    name="flash-crowd",
    summary="spike cascade sweeping east-to-west across regions",
    details=(
        "Diurnal base plus a flash crowd breaking out in the easternmost "
        "region at hour 6 and hopping one region westward every 2 hours at "
        "85% of the previous height, each spike tapering over 3 hours.  "
        "The unpredictable-burst regime of Perez-Salazar et al."
    ),
    builder=_build_flash_crowd,
    default_seed=12,
))
register(Scenario(
    name="regional-failure",
    summary="correlated regional failure with load resurge + price shock",
    details=(
        "Region 0 fails for 6 hours: its demand drops to 10% and the lost "
        "volume resurges uniformly onto the surviving clouds while the "
        "failed region's electricity price spikes 10x.  Exercises "
        "correlated cross-region rebalancing under switching costs."
    ),
    builder=_build_regional_failure,
    default_seed=13,
))
register(Scenario(
    name="adversarial",
    summary="Thm 2/3-style repeated V-ramps with expensive reconfiguration",
    details=(
        "Deep V-shaped demand ramps repeating every 12 hours under a "
        "reconfiguration weight of 5e3.  The lower-bound construction "
        "regime of Theorems 2-3: greedy and FHC-style controllers pay the "
        "teardown every cycle while the regularized controller hedges."
    ),
    builder=_build_adversarial,
    default_seed=14,
))
register(Scenario(
    name="price-spike",
    summary="8x electricity price shock in half the regions",
    details=(
        "Diurnal demand with an 8x price spike hitting the odd-indexed "
        "regions' electricity markets for 4 afternoon hours.  The "
        "price-driven rebalancing regime: moving off the shocked PoPs "
        "saves operating cost but costs reconfiguration both ways."
    ),
    builder=_build_price_spike,
    default_seed=15,
))
register(Scenario(
    name="ntier-continental",
    summary="3-tier metro->regional->core hierarchy at continental scale",
    details=(
        "The N-tier (>2) generalization on the same geographic placement: "
        "edge clouds feed per-region regional nodes (with one-region "
        "failover links) which feed a small core tier.  Evaluation-only "
        "(the serve runtime drives the two-tier model)."
    ),
    builder=_build_ntier_continental,
    default_seed=16,
    serveable=False,
    tiers=3,
))
