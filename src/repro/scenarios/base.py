"""Scenario registry core: named, deterministic workload scenarios.

A *scenario* is a named recipe that deterministically builds a full
problem instance — topology, workload, prices — from ``(size, seed)``
alone.  The registry is the corpus's single source of truth: the CLI
(``repro scenario list|describe|run``), the golden-snapshot tests and
the CI smoke jobs all resolve names through it.

Determinism contract
--------------------
``build(size, seed)`` must be a pure function of its arguments: all
randomness flows through ``np.random.default_rng`` streams derived
from the seed, and no wall-clock, filesystem or environment state may
enter.  :meth:`BuiltScenario.fingerprint` condenses every generated
array into one SHA-256 hex digest (:func:`repro.util.digest.
array_digest`); the golden suite pins these digests, so any change to
a generator's draw order or arithmetic is caught as a fingerprint
diff, never as a silent drift of experiment inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.model.instance import Instance
from repro.topology.generate import GeneratedTopology
from repro.util.digest import array_digest

#: The two size points every scenario must support.  ``smoke`` builds
#: in milliseconds and runs through tier-1 tests; ``full`` is the
#: continent-scale configuration (hundreds of tier-1 clouds).
SCENARIO_SIZES = ("smoke", "full")


@dataclass
class BuiltScenario:
    """A materialized scenario: instance + provenance.

    Exactly one of ``instance`` (two-tier) / ``ntier`` is set,
    matching the owning :class:`Scenario`'s ``tiers``.  ``topology``
    carries the generated placement when the scenario runs on a
    generated geo topology (all built-ins do).
    """

    name: str
    size: str
    seed: int
    instance: "Instance | None" = None
    topology: "GeneratedTopology | None" = None
    ntier: "object | None" = None  # NTierInstance (import kept lazy)
    notes: "list[str]" = field(default_factory=list)

    def fingerprint(self) -> str:
        """SHA-256 over every generated array (placement, workload, prices,
        capacities).  Equal ``(name, size, seed)`` must reproduce it."""
        items: "list[tuple[str, np.ndarray]]" = []
        if self.topology is not None:
            topo = self.topology
            items += [
                ("topo/tier2_lat", topo.tier2_lat),
                ("topo/tier2_lon", topo.tier2_lon),
                ("topo/tier1_lat", topo.tier1_lat),
                ("topo/tier1_lon", topo.tier1_lon),
                ("topo/assignment", topo.assignment),
            ]
        if self.instance is not None:
            inst = self.instance
            net = inst.network
            items += [
                ("workload", inst.workload),
                ("tier2_price", inst.tier2_price),
                ("link_price", inst.link_price),
                ("tier2_capacity", net.tier2_capacity),
                ("tier2_recon", net.tier2_recon_price),
                ("edge_capacity", net.edge_capacity),
                ("edge_recon", net.edge_recon_price),
                ("edge_i", net.edge_i),
                ("edge_j", net.edge_j),
            ]
        if self.ntier is not None:
            inst = self.ntier
            net = inst.network
            links = net.links
            items += [
                ("ntier/workload", inst.workload),
                ("ntier/node_price", inst.node_price),
                ("ntier/link_price", inst.link_price),
                ("ntier/node_capacity", net.node_capacity),
                ("ntier/link_capacity", net.link_capacity),
                ("ntier/link_stage", np.array([l.stage for l in links])),
                ("ntier/link_lower", np.array([l.lower for l in links])),
                ("ntier/link_upper", np.array([l.upper for l in links])),
                ("ntier/link_recon", np.array([l.recon_price for l in links])),
            ]
        if not items:
            raise ValueError(f"scenario {self.name!r} built nothing to hash")
        return array_digest(items)

    @property
    def horizon(self) -> int:
        inst = self.instance if self.instance is not None else self.ntier
        return inst.horizon

    def describe_shape(self) -> str:
        """One-line shape summary for the CLI."""
        if self.instance is not None:
            net = self.instance.network
            return (
                f"2-tier |I|={net.n_tier2} |J|={net.n_tier1} "
                f"|E|={net.n_edges} T={self.horizon}"
            )
        net = self.ntier.network
        sizes = "x".join(str(len(t)) for t in net.tiers)
        return (
            f"{net.n_tiers}-tier {sizes} links={net.n_links} "
            f"paths={net.n_paths} T={self.horizon}"
        )


@dataclass(frozen=True)
class Scenario:
    """A registered scenario recipe.

    ``build(size, seed)`` materializes it; ``seed=None`` selects
    ``default_seed`` (the seed golden fingerprints are pinned at).
    ``serveable`` marks scenarios the streaming serve runtime (and
    ``serve --shards``) can drive — two-tier scenarios; the N-tier
    scenario is evaluation-only.
    """

    name: str
    summary: str
    details: str
    builder: "Callable[[str, int], BuiltScenario]"
    default_seed: int = 0
    serveable: bool = True
    tiers: int = 2

    def build(self, size: str = "smoke", seed: "int | None" = None) -> BuiltScenario:
        if size not in SCENARIO_SIZES:
            raise ValueError(
                f"unknown scenario size {size!r}; choose from {SCENARIO_SIZES}"
            )
        actual = self.default_seed if seed is None else int(seed)
        built = self.builder(size, actual)
        built.name, built.size, built.seed = self.name, size, actual
        return built


_REGISTRY: "dict[str, Scenario]" = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name must be unused)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> "tuple[str, ...]":
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up one scenario; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(_REGISTRY) or '(none)'}"
        ) from None


def all_scenarios() -> "tuple[Scenario, ...]":
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())
