"""Named, deterministic workload scenarios on generated geo topologies.

Importing this package registers the built-in corpus (six scenarios;
see :mod:`repro.scenarios.catalog`).  Resolve names via
:func:`get_scenario`, materialize with ``Scenario.build(size, seed)``,
and pin determinism with ``BuiltScenario.fingerprint()`` — the golden
suite (tests/test_scenarios_golden.py) asserts these digests never
drift.  See docs/SCENARIOS.md.
"""

from repro.scenarios.base import (
    SCENARIO_SIZES,
    BuiltScenario,
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios import catalog  # noqa: F401  (registers the corpus)
from repro.scenarios.run import evaluate, render_evaluation

__all__ = [
    "SCENARIO_SIZES",
    "BuiltScenario",
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
    "evaluate",
    "render_evaluation",
]
