"""Drive a built scenario through the evaluation machinery.

The CLI's ``repro scenario run NAME --mode eval`` lands here; serve
mode goes through the serve runtime directly (the scenario's instance
wrapped in an :class:`~repro.serve.sources.InstanceSource`).  Kept in
the scenarios package so tests can run scenarios without a CLI round
trip.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table
from repro.scenarios.base import BuiltScenario


def evaluate(
    built: BuiltScenario,
    backend: str = "sequential",
    epsilon: float = 1e-2,
    include_offline: "bool | None" = None,
) -> "list[tuple]":
    """Score the scenario with the standard algorithm suite.

    Two-tier scenarios run the regularized online controller and the
    greedy one-shot baseline through
    :func:`repro.evaluation.runner.run_suite`; the N-tier scenario
    runs its own online/greedy pair.  The offline optimum joins the
    table when ``include_offline`` is true (default: only at smoke
    size — the full-horizon LP at continent scale is a long sit).

    Returns ``(algorithm, total_cost, vs_online, feasible)`` rows,
    cheapest first.
    """
    if include_offline is None:
        include_offline = built.size == "smoke"

    if built.instance is not None:
        rows = _evaluate_two_tier(built, backend, epsilon, include_offline)
    else:
        rows = _evaluate_ntier(built, epsilon, include_offline)
    online = next(total for name, total, *_ in rows if name == "online")
    rows = [
        (name, total, total / online, feasible)
        for name, total, feasible in rows
    ]
    rows.sort(key=lambda r: r[1])
    return rows


def _evaluate_two_tier(built, backend, epsilon, include_offline):
    from repro.core.online import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.evaluation.runner import OfflineOracle, run_suite
    from repro.offline.greedy import GreedyOneShot

    algorithms = {
        "online": RegularizedOnline(
            SubproblemConfig(epsilon=epsilon, backend=backend)
        ),
        "greedy": GreedyOneShot(),
    }
    if include_offline:
        algorithms["offline"] = OfflineOracle()
    results = run_suite(built.instance, algorithms)
    return [(name, r.total, r.feasible) for name, r in results.items()]


def _evaluate_ntier(built, epsilon, include_offline):
    from repro.ntier import (
        NTierConfig,
        NTierGreedy,
        NTierRegularizedOnline,
        solve_ntier_offline,
    )

    inst = built.ntier
    rows = []
    online = NTierRegularizedOnline(NTierConfig(epsilon=epsilon)).run(inst)
    rows.append(("online", float(inst.cost(online)), True))
    greedy = NTierGreedy().run(inst)
    rows.append(("greedy", float(inst.cost(greedy)), True))
    if include_offline:
        off = solve_ntier_offline(inst)
        rows.append(("offline", float(off.objective), True))
    return rows


def render_evaluation(rows: "list[tuple]") -> str:
    """Render :func:`evaluate` rows as an aligned table."""
    return format_table(
        ["algorithm", "total_cost", "vs_online", "feasible"], list(rows)
    )
