"""N-tier problem instance and cost evaluation.

Decisions live in totals space: ``X`` over flattened upper nodes
(tiers 2..N), ``Y`` over links, ``s`` over service paths.  The cost is

.. math::

    \\sum_t \\Big( \\sum_u a_{ut} X_{ut} + \\sum_e c_{et} Y_{et}
    + \\sum_u b_u [X_{ut} - X_{u,t-1}]^+
    + \\sum_e d_e [Y_{et} - Y_{e,t-1}]^+ \\Big)

subject to per-origin coverage ``sum_{p in P_j} s_p >= lambda_j``,
consistency ``sum_{p ni u} s_p <= X_u``, ``sum_{p ni e} s_p <= Y_e``
and capacities.  With ``N = 2`` this is precisely problem P1 in the
reduced (totals) variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ntier.layered import LayeredNetwork
from repro.util.validation import check_nonnegative


@dataclass
class NTierTrajectory:
    """Decisions over time: ``X (T, U)``, ``Y (T, L)``, ``s (T, P)``."""

    X: np.ndarray
    Y: np.ndarray
    s: np.ndarray

    def __post_init__(self) -> None:
        self.X = check_nonnegative("X", np.atleast_2d(self.X))
        self.Y = check_nonnegative("Y", np.atleast_2d(self.Y))
        self.s = check_nonnegative("s", np.atleast_2d(self.s))
        if not (self.X.shape[0] == self.Y.shape[0] == self.s.shape[0]):
            raise ValueError("X/Y/s horizons differ")

    @property
    def horizon(self) -> int:
        return self.X.shape[0]


@dataclass
class NTierInstance:
    """Inputs of the N-tier problem.

    Parameters
    ----------
    network:
        The layered topology.
    workload:
        ``(T, J)`` demand at tier-1 clouds.
    node_price:
        ``(T, U)`` allocation price per flattened upper node, or
        ``(U,)`` static.
    link_price:
        ``(T, L)`` or ``(L,)`` allocation price per link.
    """

    network: LayeredNetwork
    workload: np.ndarray
    node_price: np.ndarray
    link_price: np.ndarray

    def __post_init__(self) -> None:
        net = self.network
        self.workload = check_nonnegative("workload", np.atleast_2d(self.workload))
        T = self.workload.shape[0]
        if self.workload.shape != (T, net.n_tier1):
            raise ValueError("workload shape mismatch")
        self.node_price = check_nonnegative("node_price", self.node_price)
        if self.node_price.ndim == 1:
            self.node_price = np.broadcast_to(
                self.node_price, (T, net.n_upper_nodes)
            ).copy()
        if self.node_price.shape != (T, net.n_upper_nodes):
            raise ValueError("node_price shape mismatch")
        self.link_price = check_nonnegative("link_price", self.link_price)
        if self.link_price.ndim == 1:
            self.link_price = np.broadcast_to(self.link_price, (T, net.n_links)).copy()
        if self.link_price.shape != (T, net.n_links):
            raise ValueError("link_price shape mismatch")

    @property
    def horizon(self) -> int:
        return self.workload.shape[0]

    def slice(self, start: int, stop: int) -> "NTierInstance":
        if not (0 <= start < stop <= self.horizon):
            raise ValueError("bad slice")
        return NTierInstance(
            self.network,
            self.workload[start:stop],
            self.node_price[start:stop],
            self.link_price[start:stop],
        )

    # ------------------------------------------------------------------
    def cost(
        self,
        traj: NTierTrajectory,
        initial_X: "np.ndarray | None" = None,
        initial_Y: "np.ndarray | None" = None,
    ) -> float:
        """Total allocation + reconfiguration cost of a trajectory."""
        net = self.network
        if traj.horizon != self.horizon:
            raise ValueError("trajectory/instance horizon mismatch")
        X0 = np.zeros(net.n_upper_nodes) if initial_X is None else initial_X
        Y0 = np.zeros(net.n_links) if initial_Y is None else initial_Y
        alloc = float(
            np.einsum("tu,tu->", self.node_price, traj.X)
            + np.einsum("te,te->", self.link_price, traj.Y)
        )
        dX = np.maximum(np.diff(np.vstack([X0[None, :], traj.X]), axis=0), 0.0)
        dY = np.maximum(np.diff(np.vstack([Y0[None, :], traj.Y]), axis=0), 0.0)
        recon = float(dX.sum(axis=0) @ net.node_recon_price
                      + dY.sum(axis=0) @ net.link_recon_price)
        return alloc + recon

    def check_feasible(self, traj: NTierTrajectory, tol: float = 1e-6) -> bool:
        """Verify coverage, consistency and capacity constraints."""
        net = self.network
        cov = (net.origin_incidence @ traj.s.T).T  # (T, J)
        if np.any(cov < self.workload - tol * (1 + np.abs(self.workload))):
            return False
        node_load = (net.path_node_incidence.T @ traj.s.T).T  # (T, U)
        if np.any(node_load > traj.X + tol * (1 + traj.X)):
            return False
        link_load = (net.path_link_incidence.T @ traj.s.T).T
        if np.any(link_load > traj.Y + tol * (1 + traj.Y)):
            return False
        if np.any(traj.X > net.node_capacity[None, :] * (1 + tol)):
            return False
        if np.any(traj.Y > net.link_capacity[None, :] * (1 + tol)):
            return False
        return True
