"""Layered (N-tier) cloud network topology.

Tier 1 holds the edge clouds where workloads originate; tiers
``2 .. N`` hold upper clouds with capacities and reconfiguration
prices; SLA links connect consecutive tiers.  Service paths run from a
tier-1 cloud up through one cloud per tier to a top-tier cloud; the
SLA is the set of links, so the feasible paths are exactly the chains
of SLA links (the paper: "multiple paths may exist to satisfy the SLA
... via different clouds in the intermediate tiers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.model.network import Cloud


@dataclass(frozen=True)
class LayerLink:
    """An SLA link between tier ``stage`` and tier ``stage + 1``.

    ``lower``/``upper`` are node indices within their tiers.
    """

    stage: int  # 1-based: connects tier `stage` to tier `stage+1`
    lower: int
    upper: int
    capacity: float
    recon_price: float = 0.0

    def __post_init__(self) -> None:
        if self.stage < 1:
            raise ValueError("stage must be >= 1")
        if not (self.capacity > 0):
            raise ValueError("link capacity must be > 0")
        if self.recon_price < 0:
            raise ValueError("link recon_price must be >= 0")


class LayeredNetwork:
    """An N-tier topology with enumerated service paths.

    Parameters
    ----------
    tiers:
        ``tiers[0]`` is the tier-1 (edge) cloud list; ``tiers[n]`` for
        ``n >= 1`` are upper tiers ordered bottom-up.  Needs
        ``len(tiers) >= 2``.
    links:
        SLA links; ``stage`` is 1-based (stage ``n`` connects
        ``tiers[n-1]`` to ``tiers[n]``).
    max_paths:
        Safety cap on path enumeration.
    """

    def __init__(
        self,
        tiers: "Sequence[Sequence[Cloud]]",
        links: "Sequence[LayerLink]",
        max_paths: int = 100_000,
    ) -> None:
        if len(tiers) < 2:
            raise ValueError("need at least two tiers")
        self.tiers = [tuple(t) for t in tiers]
        if any(len(t) == 0 for t in self.tiers):
            raise ValueError("every tier needs at least one cloud")
        self.n_tiers = len(self.tiers)
        self.links = tuple(links)
        for link in self.links:
            if link.stage >= self.n_tiers:
                raise ValueError(f"link stage {link.stage} exceeds tier count")
            if not (0 <= link.lower < len(self.tiers[link.stage - 1])):
                raise ValueError("link lower endpoint out of range")
            if not (0 <= link.upper < len(self.tiers[link.stage])):
                raise ValueError("link upper endpoint out of range")

        # ---- flattened upper-node indexing (tiers 2..N) ----------------
        self.node_tier_offsets: list[int] = []
        off = 0
        for n in range(1, self.n_tiers):
            self.node_tier_offsets.append(off)
            off += len(self.tiers[n])
        self.n_upper_nodes = off
        self.node_capacity = np.concatenate(
            [[c.capacity for c in self.tiers[n]] for n in range(1, self.n_tiers)]
        ).astype(float)
        self.node_recon_price = np.concatenate(
            [[c.recon_price for c in self.tiers[n]] for n in range(1, self.n_tiers)]
        ).astype(float)

        # ---- link indexing ---------------------------------------------
        self.n_links = len(self.links)
        self.link_capacity = np.array([l.capacity for l in self.links], dtype=float)
        self.link_recon_price = np.array(
            [l.recon_price for l in self.links], dtype=float
        )

        # adjacency per stage: lower node -> list of link indices
        self._adj: list[dict[int, list[int]]] = [
            {} for _ in range(self.n_tiers - 1)
        ]
        for idx, link in enumerate(self.links):
            self._adj[link.stage - 1].setdefault(link.lower, []).append(idx)

        # ---- path enumeration -------------------------------------------
        self.paths: list[tuple[int, tuple[int, ...]]] = []  # (origin j, link idx chain)
        for j in range(len(self.tiers[0])):
            self._walk(j, j, 0, [], max_paths)
        if not self.paths:
            raise ValueError("no SLA-feasible paths exist")
        origins = np.array([p[0] for p in self.paths], dtype=np.intp)
        covered = np.zeros(len(self.tiers[0]), dtype=bool)
        covered[origins] = True
        if not covered.all():
            missing = [self.tiers[0][j].name for j in np.flatnonzero(~covered)]
            raise ValueError(f"tier-1 clouds with no path to the top tier: {missing}")
        self.n_paths = len(self.paths)
        self.path_origin = origins

        # incidence: path -> upper nodes, path -> links (sparse 0/1)
        rows_n, cols_n, rows_l, cols_l = [], [], [], []
        for p, (_, chain) in enumerate(self.paths):
            for link_idx in chain:
                link = self.links[link_idx]
                rows_l.append(p)
                cols_l.append(link_idx)
                node_flat = self.node_tier_offsets[link.stage - 1] + link.upper
                rows_n.append(p)
                cols_n.append(node_flat)
        self.path_node_incidence = sp.csr_matrix(
            (np.ones(len(rows_n)), (rows_n, cols_n)),
            shape=(self.n_paths, self.n_upper_nodes),
        )
        self.path_link_incidence = sp.csr_matrix(
            (np.ones(len(rows_l)), (rows_l, cols_l)),
            shape=(self.n_paths, self.n_links),
        )
        ones = np.ones(self.n_paths)
        self.origin_incidence = sp.csr_matrix(
            (ones, (self.path_origin, np.arange(self.n_paths))),
            shape=(len(self.tiers[0]), self.n_paths),
        )

    # ------------------------------------------------------------------
    def _walk(
        self,
        origin: int,
        node: int,
        stage: int,
        chain: "list[int]",
        max_paths: int,
    ) -> None:
        """DFS over SLA links from tier-1 ``origin`` to the top tier."""
        if stage == self.n_tiers - 1:
            if len(self.paths) >= max_paths:
                raise ValueError(f"path enumeration exceeded max_paths={max_paths}")
            self.paths.append((origin, tuple(chain)))
            return
        for link_idx in self._adj[stage].get(node, ()):  # ordered, deterministic
            link = self.links[link_idx]
            chain.append(link_idx)
            self._walk(origin, link.upper, stage + 1, chain, max_paths)
            chain.pop()

    # ------------------------------------------------------------------
    @property
    def n_tier1(self) -> int:
        return len(self.tiers[0])

    def tier_nodes(self, tier: int) -> "tuple[Cloud, ...]":
        """Clouds of a 1-based tier number."""
        return self.tiers[tier - 1]

    def node_flat_index(self, tier: int, node: int) -> int:
        """Flattened upper-node index for 1-based tier >= 2."""
        if tier < 2:
            raise ValueError("flattened indexing covers tiers >= 2")
        return self.node_tier_offsets[tier - 2] + node

    def tier_of_flat_node(self, flat: int) -> int:
        """1-based tier number of a flattened upper-node index."""
        for n in range(len(self.node_tier_offsets) - 1, -1, -1):
            if flat >= self.node_tier_offsets[n]:
                return n + 2
        raise ValueError(f"bad flat node index {flat}")

    def __repr__(self) -> str:
        sizes = "x".join(str(len(t)) for t in self.tiers)
        return (
            f"LayeredNetwork(tiers={sizes}, links={self.n_links}, "
            f"paths={self.n_paths})"
        )
