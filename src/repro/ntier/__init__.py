"""N-tier generalization (Section III-E).

The paper generalizes its model, online algorithm and competitive
analysis to arbitrary ``N >= 2`` tiers; the supplementary file with
the N-tier theorem is unavailable, so this package is our documented
reconstruction (DESIGN.md §4): workloads enter at tier-1 edge clouds
and are routed along SLA-feasible *paths* through intermediate tiers
to a top-tier cloud; every tier-``n >= 2`` node total and every
inter-tier link total carries an affine allocation cost and a
``[.]^+`` reconfiguration cost, each of which the online algorithm
replaces with a relative-entropy regularizer.

With ``N = 2`` the path set equals the SLA edge set and every
formulation here reduces exactly to the two-tier package.
"""

from repro.ntier.layered import LayeredNetwork, LayerLink
from repro.ntier.problem import NTierInstance
from repro.ntier.offline import solve_ntier_offline
from repro.ntier.greedy import NTierGreedy
from repro.ntier.online import NTierRegularizedOnline, NTierConfig
from repro.ntier.prediction import NTierFHC, NTierRFHC

__all__ = [
    "LayeredNetwork",
    "LayerLink",
    "NTierInstance",
    "solve_ntier_offline",
    "NTierGreedy",
    "NTierRegularizedOnline",
    "NTierConfig",
    "NTierFHC",
    "NTierRFHC",
]
