"""Predictive control for the N-tier problem (extension).

The paper states its Section-IV control algorithms for the general
problem; this module provides the N-tier instantiations with exact
foresight (forecast oracles for layered instances are a thin wrapper —
the controllers accept any callable ``forecast(t, w) -> NTierInstance``
for noisy settings):

* :class:`NTierFHC` — fixed-horizon control (the standard baseline);
* :class:`NTierRFHC` — the regularized version: window endpoints are
  pinned to the N-tier regularized chain, so the cost is bounded by
  the prediction-free N-tier online algorithm's (the Theorem-4
  argument is structure-agnostic: it only needs the pinned problem to
  be optimal between chain states).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ntier.offline import solve_ntier_offline
from repro.ntier.online import NTierConfig, NTierState, NTierSubproblem
from repro.ntier.problem import NTierInstance, NTierTrajectory

ForecastFn = "Callable[[int, int], NTierInstance] | None"


def _exact_forecast(instance: NTierInstance) -> "Callable[[int, int], NTierInstance]":
    def forecast(t: int, w: int) -> NTierInstance:
        return instance.slice(t, min(t + w, instance.horizon))

    return forecast


class NTierFHC:
    """Fixed Horizon Control on a layered instance."""

    name = "ntier-fhc"

    def __init__(self, window: int, forecast: ForecastFn = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.forecast = forecast

    def run(self, instance: NTierInstance) -> NTierTrajectory:
        forecast = self.forecast or _exact_forecast(instance)
        net = instance.network
        X_prev = np.zeros(net.n_upper_nodes)
        Y_prev = np.zeros(net.n_links)
        Xs, Ys, ss = [], [], []
        for start in range(0, instance.horizon, self.window):
            window = forecast(start, self.window)
            res = solve_ntier_offline(window, initial_X=X_prev, initial_Y=Y_prev)
            Xs.append(res.trajectory.X)
            Ys.append(res.trajectory.Y)
            ss.append(res.trajectory.s)
            X_prev = res.trajectory.X[-1]
            Y_prev = res.trajectory.Y[-1]
        return NTierTrajectory(np.vstack(Xs), np.vstack(Ys), np.vstack(ss))


class NTierRFHC:
    """Regularized Fixed Horizon Control on a layered instance.

    Extends the regularized chain through each block with forecast
    data, pins the block's last slot to the chain value, and exactly
    re-optimizes the interior (reconfiguration into the pinned
    terminal included).
    """

    name = "ntier-rfhc"

    def __init__(
        self,
        window: int,
        config: "NTierConfig | None" = None,
        forecast: ForecastFn = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.config = config or NTierConfig()
        self.forecast = forecast

    def run(self, instance: NTierInstance) -> NTierTrajectory:
        forecast = self.forecast or _exact_forecast(instance)
        net = instance.network
        sub = NTierSubproblem(net, self.config)

        # The regularized chain, extended lazily with forecast data.
        chain_states: list[NTierState] = []
        chain_s: list[np.ndarray] = []
        chain_state = NTierState.zeros(net)
        warm = None

        def extend_chain(upto: int) -> None:
            nonlocal chain_state, warm
            while len(chain_states) <= upto:
                tau = len(chain_states)
                one = forecast(tau, 1)
                chain_state, s_t, warm = sub.solve(
                    one.workload[0],
                    one.node_price[0],
                    one.link_price[0],
                    chain_state,
                    warm=warm,
                )
                chain_states.append(chain_state)
                chain_s.append(s_t)

        X_prev = np.zeros(net.n_upper_nodes)
        Y_prev = np.zeros(net.n_links)
        Xs, Ys, ss = [], [], []
        T = instance.horizon
        for start in range(0, T, self.window):
            stop = min(start + self.window, T)
            terminal_slot = stop - 1
            extend_chain(terminal_slot)
            terminal = chain_states[terminal_slot]
            if terminal_slot > start:
                window = forecast(start, terminal_slot - start)
                res = solve_ntier_offline(
                    window,
                    initial_X=X_prev,
                    initial_Y=Y_prev,
                    terminal_X=terminal.X,
                    terminal_Y=terminal.Y,
                )
                Xs.append(res.trajectory.X)
                Ys.append(res.trajectory.Y)
                ss.append(res.trajectory.s)
            Xs.append(terminal.X[None, :])
            Ys.append(terminal.Y[None, :])
            ss.append(chain_s[terminal_slot][None, :])
            X_prev, Y_prev = terminal.X, terminal.Y
        return NTierTrajectory(np.vstack(Xs), np.vstack(Ys), np.vstack(ss))
