"""Offline optimum of the N-tier problem (full-horizon LP)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ntier.problem import NTierInstance, NTierTrajectory
from repro.solvers.lp import LinearProgram


@dataclass
class NTierOfflineResult:
    """Solution of the N-tier LP: trajectory + optimal objective."""

    trajectory: NTierTrajectory
    objective: float


def solve_ntier_offline(
    instance: NTierInstance,
    initial_X: "np.ndarray | None" = None,
    initial_Y: "np.ndarray | None" = None,
    terminal_X: "np.ndarray | None" = None,
    terminal_Y: "np.ndarray | None" = None,
) -> NTierOfflineResult:
    """Solve the N-tier problem over its whole horizon as a sparse LP.

    Same linearization as the two-tier offline LP: increment variables
    ``uX``/``uY`` carry the ``[.]^+`` reconfiguration terms.  Optional
    ``terminal_X``/``terminal_Y`` pin a post-horizon state whose
    reconfiguration from slot ``T-1`` is charged too (the N-tier
    analogue of the pinned problem used by RFHC/RRHC).
    """
    if (terminal_X is None) != (terminal_Y is None):
        raise ValueError("terminal_X and terminal_Y must be given together")
    net = instance.network
    T = instance.horizon
    U, L, P, J = net.n_upper_nodes, net.n_links, net.n_paths, net.n_tier1
    X0 = np.zeros(U) if initial_X is None else np.asarray(initial_X, float)
    Y0 = np.zeros(L) if initial_Y is None else np.asarray(initial_Y, float)

    lp = LinearProgram()
    lp.add_block("X", T * U, lb=0.0, ub=np.tile(net.node_capacity, T),
                 cost=instance.node_price.ravel())
    lp.add_block("Y", T * L, lb=0.0, ub=np.tile(net.link_capacity, T),
                 cost=instance.link_price.ravel())
    lp.add_block("s", T * P, lb=0.0)
    lp.add_block("uX", T * U, lb=0.0, cost=np.tile(net.node_recon_price, T))
    lp.add_block("uY", T * L, lb=0.0, cost=np.tile(net.link_recon_price, T))

    eye_T = sp.identity(T, format="csr")
    # Coverage: origin_incidence s_t >= lambda_t.
    lp.add_rows(
        ">=",
        instance.workload.ravel(),
        s=sp.kron(eye_T, net.origin_incidence, format="csr"),
    )
    # Consistency: node loads <= X, link loads <= Y.
    lp.add_rows(
        "<=",
        np.zeros(T * U),
        s=sp.kron(eye_T, net.path_node_incidence.T, format="csr"),
        X=-sp.identity(T * U, format="csr"),
    )
    lp.add_rows(
        "<=",
        np.zeros(T * L),
        s=sp.kron(eye_T, net.path_link_incidence.T, format="csr"),
        Y=-sp.identity(T * L, format="csr"),
    )
    # Increments.
    if T == 1:
        diff = sp.identity(1, format="csr")
    else:
        diff = (
            sp.identity(T, format="csr")
            - sp.diags([np.ones(T - 1)], [-1], shape=(T, T), format="csr")
        ).tocsr()
    rhs_X = np.zeros(T * U)
    rhs_X[:U] = X0
    rhs_Y = np.zeros(T * L)
    rhs_Y[:L] = Y0
    lp.add_rows(
        "<=",
        rhs_X,
        X=sp.kron(diff, sp.identity(U), format="csr"),
        uX=-sp.identity(T * U, format="csr"),
    )
    lp.add_rows(
        "<=",
        rhs_Y,
        Y=sp.kron(diff, sp.identity(L), format="csr"),
        uY=-sp.identity(T * L, format="csr"),
    )
    if terminal_X is not None:
        terminal_X = np.asarray(terminal_X, dtype=float)
        terminal_Y = np.asarray(terminal_Y, dtype=float)
        lp.add_block("uX_term", U, lb=0.0, cost=net.node_recon_price)
        lp.add_block("uY_term", L, lb=0.0, cost=net.link_recon_price)
        selX = sp.csr_matrix(
            (np.ones(U), (np.arange(U), np.arange((T - 1) * U, T * U))),
            shape=(U, T * U),
        )
        selY = sp.csr_matrix(
            (np.ones(L), (np.arange(L), np.arange((T - 1) * L, T * L))),
            shape=(L, T * L),
        )
        # uX_term >= X_term - X_{T-1}:  -X_{T-1} - uX_term <= -X_term.
        lp.add_rows("<=", -terminal_X, X=-selX, uX_term=-sp.identity(U, format="csr"))
        lp.add_rows("<=", -terminal_Y, Y=-selY, uY_term=-sp.identity(L, format="csr"))
    sol = lp.solve()
    traj = NTierTrajectory(
        X=np.clip(sol["X"].reshape(T, U), 0.0, None),
        Y=np.clip(sol["Y"].reshape(T, L), 0.0, None),
        s=np.clip(sol["s"].reshape(T, P), 0.0, None),
    )
    return NTierOfflineResult(trajectory=traj, objective=float(sol.objective))
