"""Regularized online algorithm for the N-tier problem.

Every node total ``X_u`` (tiers 2..N) and every link total ``Y_e``
carries a relative-entropy regularizer

``(b_u / eta_u) ((X_u + eps) ln((X_u + eps)/(X̂_u + eps)) - X_u)``,

``eta_u = ln(1 + C_u / eps)`` — the direct generalization of P2(t) to
N tiers.  Per-tier hedging constraints extend (3d): for every upper
node ``u`` in tier ``n``, the *other* clouds of tier ``n`` must be
able to absorb the workload overflow ``[Lambda_t - C_u]^+`` (link
hedging (3e) has no single natural N-tier analogue and is part of the
two-tier package only; see DESIGN.md §4).

The reconstructed competitive ratio is
:func:`repro.core.competitive.ntier_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.engine.session import SlotData, SolveSession, source_network
from repro.engine.stats import StatsProbe
from repro.ntier.layered import LayeredNetwork
from repro.ntier.problem import NTierInstance, NTierTrajectory
from repro.solvers.convex import (
    EntropicTerm,
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
)


@dataclass
class NTierConfig:
    """Parameters of the N-tier regularized online algorithm."""

    epsilon: float = 1e-2
    epsilon_prime: "float | None" = None
    hedging: bool = True
    solver: SolverOptions = field(default_factory=SolverOptions)

    def __post_init__(self) -> None:
        if not (self.epsilon > 0):
            raise ValueError("epsilon must be > 0")

    @property
    def eps2(self) -> float:
        return self.epsilon if self.epsilon_prime is None else self.epsilon_prime


@dataclass
class NTierState:
    """Online state: the previous slot's totals (anchors the regularizers)."""

    X: np.ndarray
    Y: np.ndarray

    @classmethod
    def zeros(cls, network: LayeredNetwork) -> "NTierState":
        return cls(np.zeros(network.n_upper_nodes), np.zeros(network.n_links))


class NTierSubproblem:
    """Reusable per-slot regularized subproblem for a layered network."""

    def __init__(self, network: LayeredNetwork, config: NTierConfig) -> None:
        self.network = network
        self.config = config
        U, L, P = network.n_upper_nodes, network.n_links, network.n_paths
        self.n_vars = U + L + P
        self.sl_X = slice(0, U)
        self.sl_Y = slice(U, U + L)
        self.sl_s = slice(U + L, U + L + P)

        self.eta_node = np.log1p(network.node_capacity / config.epsilon)
        self.eta_link = np.log1p(network.link_capacity / config.eps2)
        self.w_node = network.node_recon_price / self.eta_node
        self.w_link = network.link_recon_price / self.eta_link

        self._rows_cov, self._rows_node, self._rows_link = self._static_rows()
        self._hedge = self._hedge_rows() if config.hedging else None
        self.lb = np.zeros(self.n_vars)
        self.ub = np.concatenate(
            [network.node_capacity, network.link_capacity, np.full(P, np.inf)]
        )

    def _static_rows(self):
        net = self.network
        U, L, P = net.n_upper_nodes, net.n_links, net.n_paths
        rows_cov = sp.hstack(
            [sp.csr_matrix((net.n_tier1, U + L)), -net.origin_incidence],
            format="csr",
        )
        rows_node = sp.hstack(
            [-sp.identity(U, format="csr"), sp.csr_matrix((U, L)),
             net.path_node_incidence.T],
            format="csr",
        )
        rows_link = sp.hstack(
            [sp.csr_matrix((L, U)), -sp.identity(L, format="csr"),
             net.path_link_incidence.T],
            format="csr",
        )
        return rows_cov, rows_node, rows_link

    def _hedge_rows(self):
        """Per-tier all-but-one selection over flattened upper nodes."""
        net = self.network
        U, L, P = net.n_upper_nodes, net.n_links, net.n_paths
        blocks = []
        for tier_idx in range(len(net.node_tier_offsets)):
            size = len(net.tiers[tier_idx + 1])
            blocks.append(np.ones((size, size)) - np.eye(size))
        sel = sp.block_diag(blocks, format="csr")  # (U, U)
        return sp.hstack(
            [-sel, sp.csr_matrix((U, L)), sp.csr_matrix((U, P))], format="csr"
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        workload: np.ndarray,
        node_price: np.ndarray,
        link_price: np.ndarray,
        state: NTierState,
        warm: "np.ndarray | None" = None,
        probe=None,
    ) -> "tuple[NTierState, np.ndarray, np.ndarray]":
        """One regularized slot; returns (new state, s, reduced v).

        ``probe`` optionally records the solve's backend, iteration
        count and warm-start outcome (engine statistics).
        """
        net = self.network
        cfg = self.config
        U, L, P = net.n_upper_nodes, net.n_links, net.n_paths
        lam = np.asarray(workload, dtype=float)

        linear = np.concatenate([node_price, link_price, np.zeros(P)])
        entropic = [
            EntropicTerm(np.arange(U), self.w_node, cfg.epsilon, state.X),
            EntropicTerm(np.arange(U, U + L), self.w_link, cfg.eps2, state.Y),
        ]
        objective = SeparableObjective(self.n_vars, linear, entropic)

        A_parts = [self._rows_cov, self._rows_node, self._rows_link]
        b_parts = [-lam, np.zeros(U), np.zeros(L)]
        if self._hedge is not None:
            rhs = np.maximum(float(lam.sum()) - net.node_capacity, 0.0)
            keep = rhs > 0
            if np.any(keep):
                A_parts.append(self._hedge[keep])
                b_parts.append(-rhs[keep])
        prog = SmoothConvexProgram(
            objective,
            sp.vstack(A_parts, format="csr"),
            np.concatenate(b_parts),
            self.lb,
            self.ub,
        )
        v0 = None
        if warm is not None:
            if prog.A.shape[0]:
                slack = prog.b - prog.A @ warm
                ok = slack.size == 0 or float(slack.min()) > 1e-12
            else:  # pragma: no cover
                ok = True
            if ok and np.all(warm - prog.lb > 0) and np.all(prog.ub - warm > 0):
                v0 = warm
        v = prog.solve(v0=v0, options=cfg.solver)
        if probe is not None:
            info = prog.last_info
            probe.record_solve(
                backend=info.backend,
                newton_iters=info.newton_iters,
                warm_attempted=warm is not None,
                warm_used=v0 is not None,
                fallback=info.fallback,
            )
        new_state = NTierState(
            X=np.clip(v[self.sl_X], 0.0, net.node_capacity),
            Y=np.clip(v[self.sl_Y], 0.0, net.link_capacity),
        )
        s = np.clip(v[self.sl_s], 0.0, None)
        return new_state, s, v


@dataclass
class NTierOnlineState:
    """Engine state of the N-tier online controller."""

    subproblem: NTierSubproblem
    state: NTierState
    warm: "np.ndarray | None" = None
    probe: StatsProbe = field(default_factory=StatsProbe)


class NTierRegularizedOnline:
    """Chain of regularized per-slot subproblems over (X, Y, s).

    A :class:`~repro.engine.session.Controller` over the layered
    network; like the two-tier prediction-free algorithm it builds
    from a bare network and streams (``slot.tier2_price`` carries the
    flattened node prices).
    """

    name = "ntier-regularized-online"

    def __init__(self, config: "NTierConfig | None" = None) -> None:
        self.config = config or NTierConfig()

    def make_subproblem(self, instance: NTierInstance) -> NTierSubproblem:
        return NTierSubproblem(instance.network, self.config)

    # ------------------------------------------------------------------
    # Controller protocol
    # ------------------------------------------------------------------
    def make_state(self, source, initial: "NTierState | None" = None) -> NTierOnlineState:
        net = source_network(source)
        return NTierOnlineState(
            subproblem=NTierSubproblem(net, self.config),
            state=initial or NTierState.zeros(net),
        )

    def decide(
        self, st: NTierOnlineState, t: int, slot: SlotData
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One regularized slot; returns the ``(X, Y, s)`` step triple."""
        st.state, s_t, st.warm = st.subproblem.solve(
            slot.workload,
            slot.tier2_price,
            slot.link_price,
            st.state,
            warm=st.warm,
            probe=st.probe,
        )
        return st.state.X.copy(), st.state.Y.copy(), s_t

    def assemble(self, steps: "list[tuple]") -> NTierTrajectory:
        """Stack ``(X, Y, s)`` step triples into an N-tier trajectory."""
        Xs, Ys, ss = zip(*steps)
        return NTierTrajectory(np.stack(Xs), np.stack(Ys), np.stack(ss))

    def run(self, instance: NTierInstance) -> NTierTrajectory:
        """Run the online loop over the whole horizon (engine-driven)."""
        return SolveSession(self, instance).run()
