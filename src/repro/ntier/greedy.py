"""Greedy one-shot control for the N-tier problem."""

from __future__ import annotations

import numpy as np

from repro.ntier.offline import solve_ntier_offline
from repro.ntier.problem import NTierInstance, NTierTrajectory


class NTierGreedy:
    """Per-slot one-shot optimization (reconfiguration-myopic baseline)."""

    name = "ntier-greedy"

    def run(self, instance: NTierInstance) -> NTierTrajectory:
        net = instance.network
        X_prev = np.zeros(net.n_upper_nodes)
        Y_prev = np.zeros(net.n_links)
        Xs, Ys, ss = [], [], []
        for t in range(instance.horizon):
            res = solve_ntier_offline(
                instance.slice(t, t + 1), initial_X=X_prev, initial_Y=Y_prev
            )
            X_prev = res.trajectory.X[0]
            Y_prev = res.trajectory.Y[0]
            Xs.append(X_prev)
            Ys.append(Y_prev)
            ss.append(res.trajectory.s[0])
        return NTierTrajectory(np.stack(Xs), np.stack(Ys), np.stack(ss))
