"""LCP-M: lazy capacity provisioning extended to the multi-cloud problem.

The paper's Section V-A describes the baseline: *"the online algorithm
that we call LCP-M, which, at every time slot, solves both
P1(x <= t) and a related problem with the reconfiguration cost
reversed in time and then applies the lazy capacity principle to every
variable in our problem, following the design of the LCP(0) algorithm
[Lin et al.]."*

Concretely, at slot ``t``:

1. solve the prefix problem ``P1`` over slots ``[0, t]`` with the
   normal (charge-on-increase) reconfiguration cost; its slot-``t``
   decision is the *lower* envelope ``L_t``;
2. solve the same prefix with reconfiguration charged on *decreases*
   (the time-reversed problem); its slot-``t`` decision is the *upper*
   envelope ``U_t``;
3. apply the lazy principle per variable:
   ``v_t = max(L_t, min(U_t, v_{t-1}))``.

Lin et al.'s single-cloud optimality argument does not carry over to
the multi-cloud case (as the paper notes, LCP "is reported to be
unable to be generalized to the multi-cloud case with a guaranteed
competitive ratio"); in particular the per-variable clamp can slightly
violate coupled capacity constraints, which we repair with a
minimal-cost projection LP when it happens.

The prefix problems grow linearly with ``t``; a ``lookback`` window
bounds their size for long horizons (exact LCP-M uses the full
prefix).

Engine shape: a :class:`~repro.engine.session.Controller` whose state
accumulates the applied history (the envelopes need the prefix) and
repairs the clamped decision against the streamed realized slot data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import SlotData, SolveSession
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.feasibility import check_trajectory
from repro.model.instance import Instance
from repro.offline.optimal import solve_offline


@dataclass
class LCPState:
    """Carried state: tie-broken instance plus the applied history."""

    instance: Instance
    stable: Instance
    initial: Allocation
    prev: Allocation
    steps: "list[Allocation]" = field(default_factory=list)
    probe: StatsProbe = field(default_factory=StatsProbe)


class LCPM:
    """Lazy Capacity Provisioning, multi-resource variant (LCP-M)."""

    name = "lcp-m"

    def __init__(self, lookback: "int | None" = None) -> None:
        if lookback is not None and lookback < 1:
            raise ValueError("lookback must be >= 1 or None")
        self.lookback = lookback

    # ------------------------------------------------------------------
    def _prefix_window(self, t: int) -> int:
        if self.lookback is None:
            return 0
        return max(0, t + 1 - self.lookback)

    def _tie_broken(self, instance: Instance) -> Instance:
        """Deterministically perturb prices to stabilize LP routing.

        The per-variable lazy clamp is only meaningful if consecutive
        prefix solves route each tier-1 cloud's workload through the
        *same* edges; degenerate LPs otherwise shuffle routes between
        slots and the clamp accumulates allocations on every route.  A
        tiny edge-indexed price perturbation makes the optimal routing
        unique and consistent (decisions are still scored on the true
        prices by the caller).
        """
        net = instance.network
        scale = float(instance.link_price.mean()) or 1.0
        bump = 1e-7 * scale * (1.0 + np.arange(net.n_edges))
        return instance.with_data(link_price=instance.link_price + bump[None, :])

    # ------------------------------------------------------------------
    # Controller protocol
    # ------------------------------------------------------------------
    def make_state(
        self, instance: Instance, initial: "Allocation | None" = None
    ) -> LCPState:
        """Build the carried state (needs the instance for tie-breaking)."""
        prev = initial or Allocation.zeros(instance.network.n_edges)
        return LCPState(
            instance=instance,
            stable=self._tie_broken(instance),
            initial=prev.copy(),
            prev=prev,
        )

    def decide(self, state: LCPState, t: int, slot: SlotData) -> Allocation:
        """Lazy-clamp the slot-``t`` envelopes and repair if needed."""
        start = self._prefix_window(t)
        prefix = state.stable.slice(start, t + 1)
        # Lower envelope: normal prefix problem.
        start_state = state.initial if start == 0 else state.steps[start - 1]
        low = solve_offline(prefix, initial=start_state).trajectory.step(t - start)
        # Upper envelope: reconfiguration charged on decreases.
        up = solve_offline(
            prefix, initial=start_state, charge_decrease=True
        ).trajectory.step(t - start)
        state.probe.record_solve(backend="lp")
        state.probe.record_solve(backend="lp")
        prev = state.prev
        cur = Allocation(
            x=_lazy(prev.x, low.x, up.x),
            y=_lazy(prev.y, low.y, up.y),
            s=_lazy(prev.s, low.s, up.s),
        )
        cur = self._repair(slot.as_instance(state.instance.network), cur, prev)
        state.steps.append(cur)
        state.prev = cur
        return cur

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run LCP-M over the whole horizon (engine-driven)."""
        return SolveSession(self, instance, initial=initial).run()

    # ------------------------------------------------------------------
    def _repair(
        self, slot_instance: Instance, cand: Allocation, prev: Allocation
    ) -> Allocation:
        """Project a clamped decision back into slot-``t`` feasibility.

        The per-variable clamp preserves the covering constraints (the
        lower envelope is feasible) but can break the *coupled* tier-2
        capacity constraint.  When that happens we solve a small LP
        minimizing the slot's allocation + reconfiguration cost subject
        to slot feasibility and ``s >= s_low`` — i.e. the cheapest
        feasible decision at least as protective as the lazy one.
        ``slot_instance`` is the realized one-slot instance.
        """
        net = slot_instance.network
        one_slot = Trajectory(
            cand.x[None, :], cand.y[None, :], cand.s[None, :]
        )
        report = check_trajectory(slot_instance, one_slot)
        if report.ok:
            return cand
        # Cheapest feasible slot decision with s kept at the clamped level
        # where possible (capped by link capacity).
        s_floor = np.minimum(cand.s, net.edge_capacity)
        lower = Trajectory(
            np.zeros((1, net.n_edges)), s_floor[None, :], s_floor[None, :]
        )
        try:
            res = solve_offline(slot_instance, initial=prev, lower=lower)
            return res.trajectory.step(0)
        except Exception:
            # Final fallback: drop the floor entirely.
            res = solve_offline(slot_instance, initial=prev)
            return res.trajectory.step(0)


def _lazy(prev: np.ndarray, low: np.ndarray, up: np.ndarray) -> np.ndarray:
    """Elementwise lazy clamp ``max(low, min(up, prev))``.

    Degenerate envelopes (``up < low`` from LP ties) resolve to the
    lower envelope, which preserves feasibility.
    """
    up = np.maximum(up, low)
    return np.maximum(low, np.minimum(up, prev))
