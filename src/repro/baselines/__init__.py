"""Baseline algorithms from prior work used in the paper's evaluation."""

from repro.baselines.lcp import LCPM

__all__ = ["LCPM"]
