"""Save and load experiment results as JSON.

Lets `generate_report.py` archive runs and lets regression tooling
compare a fresh run against a recorded baseline (paper-vs-measured
bookkeeping for EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.evaluation.reporting import ExperimentResult

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable dict of an experiment result."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": result.name,
        "headers": list(result.headers),
        "rows": [[_jsonable(v) for v in row] for row in result.rows],
        "series": {k: np.asarray(v).tolist() for k, v in result.series.items()},
        "notes": list(result.notes),
    }


def _jsonable(v):
    if isinstance(v, (np.floating, np.integer)):
        return v.item()
    return v


def save_result(result: ExperimentResult, path: "str | Path") -> None:
    """Write one result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: "str | Path") -> ExperimentResult:
    """Read a result back; series are restored as float arrays."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    return ExperimentResult(
        name=data["name"],
        headers=list(data["headers"]),
        rows=[tuple(row) for row in data["rows"]],
        series={k: np.asarray(v, dtype=float) for k, v in data["series"].items()},
        notes=list(data["notes"]),
    )
