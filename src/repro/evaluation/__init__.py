"""Evaluation harness: experiment configs for every table and figure.

Each experiment in the paper's Section V maps to one function in
:mod:`repro.evaluation.experiments`, returning a structured
:class:`~repro.evaluation.reporting.ExperimentResult` that the
benchmark harness prints and asserts shape properties on.  Default
sizes are laptop-scale; set ``REPRO_FULL_SCALE=1`` for paper scale
(18 tier-2 / 48 tier-1 clouds, 500/600-hour horizons).
"""

from repro.evaluation.scale import ExperimentScale
from repro.evaluation.runner import (
    RunResult,
    run_algorithm,
    run_suite,
    stats_collector,
)
from repro.evaluation.metrics import (
    cost_over_time,
    normalized_costs,
    summarize_costs,
)
from repro.evaluation.reporting import (
    ExperimentResult,
    format_table,
    render_run_stats,
)
from repro.evaluation.persistence import load_result, save_result
from repro.evaluation import experiments

__all__ = [
    "ExperimentScale",
    "RunResult",
    "run_algorithm",
    "run_suite",
    "stats_collector",
    "normalized_costs",
    "cost_over_time",
    "summarize_costs",
    "ExperimentResult",
    "format_table",
    "render_run_stats",
    "save_result",
    "load_result",
    "experiments",
]
