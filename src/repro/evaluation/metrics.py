"""Metrics over run results: normalization, ratios, time series."""

from __future__ import annotations

import numpy as np

from repro.evaluation.runner import RunResult


def normalized_costs(
    results: "dict[str, RunResult]", reference: str = "offline"
) -> "dict[str, float]":
    """Total costs divided by a reference algorithm's total.

    The paper's figures normalize by the offline optimum, so the
    reference row is 1.0 and every other row is its 'actual
    competitive ratio'.
    """
    if reference not in results:
        raise KeyError(f"reference {reference!r} not among results")
    ref = results[reference].total
    if ref <= 0:
        return {k: (1.0 if v.total <= 1e-12 else float("inf")) for k, v in results.items()}
    return {k: v.total / ref for k, v in results.items()}


def cost_over_time(result: RunResult) -> np.ndarray:
    """Cumulative cost series (Fig. 5's y-axis)."""
    return result.cost.cumulative


def summarize_costs(results: "dict[str, RunResult]") -> "list[tuple]":
    """Rows (name, total, alloc, recon, runtime, feasible) for reporting."""
    return [
        (
            name,
            r.total,
            r.cost.allocation_total,
            r.cost.reconfiguration_total,
            r.runtime,
            r.feasible,
        )
        for name, r in results.items()
    ]
