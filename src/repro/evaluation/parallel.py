"""Deterministic process-parallel execution for experiment sweeps.

The paper's figures are grids — (recon-weight x epsilon), SLA size,
prediction window, error rate — whose points are independent solves.
:func:`parallel_map` fans those points out over worker processes while
keeping every observable output identical to a serial run:

* **Ordered results.**  Futures are consumed in submission order, so
  the returned list matches the input order no matter which worker
  finished first.
* **Identical code path.**  With ``jobs`` of ``None``/``0``/``1`` the
  same worker wrapper runs inline in the parent; parallel and serial
  sweeps therefore execute byte-identical work per point (asserted by
  the CLI acceptance test: ``--jobs N`` rows equal serial rows).
* **Deterministic RNG.**  Workers never share a global RNG; when a
  sweep needs randomness, :func:`run_sweep` derives one seed per
  *point* (not per worker) so results are independent of scheduling.
* **Merge-safe statistics.**  The module-global
  :data:`~repro.evaluation.runner.stats_collector` is per-process.
  Each worker collects its own records and returns them alongside the
  result; the parent merges them in submission order, so ``--stats
  --jobs N`` reporting equals the serial output.

Workers are plain module-level functions (picklable); point arguments
should be small tuples of primitives/instances.

* **Config travels in the payload.**  Worker processes must never
  reconstruct a :class:`~repro.core.subproblem.SubproblemConfig` from
  scattered scalars — a rebuilt config silently resets every field the
  payload didn't carry (solver backend, kernel flags) to its default,
  so a ``--backend batched --jobs N`` sweep would quietly run the
  sequential backend in its workers.  Point tuples therefore carry the
  fully-constructed config object (it is a plain dataclass of scalars
  and pickles cheaply); workers at most ``dataclasses.replace`` the
  swept field.

* **Shared solver cache.**  When the parent has a persistent solver
  cache active (``--cache DIR``; :mod:`repro.cache`), its directory is
  captured into the payload and each worker re-activates a store on
  the same directory: workers *read* blobs any prior run (or sibling
  worker) produced, and their writes are atomic single-writer renames
  of deterministic content, so no locking or merge step can change
  what ends up on disk.  Each point additionally returns its cache op
  counts and the coordinator folds them into its own store in
  submission order — ``cache stats`` and the obs counters are
  therefore independent of worker scheduling, exactly like ``--stats``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.cache import runtime as cache_runtime
from repro.evaluation.runner import stats_collector


def _run_point(
    fn: Callable[[Any], Any],
    item: Any,
    seed: "int | None",
    collect: bool,
    cache_dir: "str | None" = None,
) -> "tuple[Any, list, dict]":
    """Execute one sweep point; used both inline and in workers.

    Resets the (per-process) stats collector first: under the ``fork``
    start method a worker inherits the parent's already-collected
    records, which must not be returned (and merged) twice.  The third
    return element is the point's cache op-count delta (empty when no
    cache is active), measured against the process-local store.
    """
    if collect:
        stats_collector.enable()
        stats_collector.records = []
    store = None
    if cache_dir is not None:
        store = cache_runtime.active()
        if store is None or str(store.root) != cache_dir:
            store = cache_runtime.activate(cache_dir)
    before = store.counters.as_dict() if store is not None else {}
    if seed is not None:
        np.random.seed(seed)
    result = fn(item)
    records = stats_collector.clear() if collect else []
    ops: dict = {}
    if store is not None:
        after = store.counters.as_dict()
        ops = {op: after[op] - before.get(op, 0) for op in after}
    return result, records, ops


def _worker(payload: "tuple[Callable, Any, int | None, bool, str | None]"):
    fn, item, seed, collect, cache_dir = payload
    return _run_point(fn, item, seed, collect, cache_dir)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: "int | None" = None,
    seeds: "Sequence[int | None] | None" = None,
) -> list:
    """Map ``fn`` over ``items``, optionally across processes.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one argument.
    items:
        The sweep points.
    jobs:
        Number of worker processes; ``None``/``0``/``1`` runs inline
        (same wrapper, same per-point work).
    seeds:
        Optional per-item RNG seeds (``np.random.seed`` before each
        point); supply one per item so outcomes are scheduling-free.

    Returns the results in input order.  Statistics recorded by the
    points into the per-process :data:`stats_collector` are merged
    back into the parent's collector in submission order, making
    ``--stats`` output independent of ``jobs``.
    """
    items = list(items)
    if seeds is None:
        seeds = [None] * len(items)
    seeds = list(seeds)
    if len(seeds) != len(items):
        raise ValueError(f"expected {len(items)} seeds, got {len(seeds)}")
    collect = stats_collector.enabled
    cache_dir = cache_runtime.active_dir()
    results: list = []
    if not jobs or jobs <= 1 or len(items) <= 1:
        for item, seed in zip(items, seeds):
            saved = stats_collector.records if collect else []
            result, records, _ = _run_point(fn, item, seed, collect, cache_dir)
            if collect:
                stats_collector.records = saved
            results.append(result)
            stats_collector.merge(records)
        return results
    parent_store = cache_runtime.active()
    with ProcessPoolExecutor(max_workers=int(jobs)) as pool:
        futures = [
            pool.submit(_worker, (fn, item, seed, collect, cache_dir))
            for item, seed in zip(items, seeds)
        ]
        for future in futures:  # submission order == input order
            result, records, ops = future.result()
            results.append(result)
            stats_collector.merge(records)
            if parent_store is not None and ops:
                parent_store.merge_counts(ops)
    return results


def run_sweep(
    fn: Callable[[Any], Any],
    grid: Iterable[Any],
    jobs: "int | None" = None,
    base_seed: "int | None" = None,
) -> list:
    """Sweep ``fn`` over ``grid`` with per-point derived seeds.

    ``base_seed`` (when given) seeds point ``i`` with
    ``base_seed + i`` — tied to the grid position, not the worker, so
    a sweep's random draws are reproducible at any ``jobs``.
    """
    grid = list(grid)
    seeds = None if base_seed is None else [base_seed + i for i in range(len(grid))]
    return parallel_map(fn, grid, jobs=jobs, seeds=seeds)
