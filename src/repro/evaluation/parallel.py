"""Deterministic process-parallel execution for experiment sweeps.

The paper's figures are grids — (recon-weight x epsilon), SLA size,
prediction window, error rate — whose points are independent solves.
:func:`parallel_map` fans those points out over worker processes while
keeping every observable output identical to a serial run:

* **Ordered results.**  Futures are consumed in submission order, so
  the returned list matches the input order no matter which worker
  finished first.
* **Identical code path.**  With ``jobs`` of ``None``/``0``/``1`` the
  same worker wrapper runs inline in the parent; parallel and serial
  sweeps therefore execute byte-identical work per point (asserted by
  the CLI acceptance test: ``--jobs N`` rows equal serial rows).
* **Deterministic RNG.**  Workers never share a global RNG; when a
  sweep needs randomness, :func:`run_sweep` derives one seed per
  *point* (not per worker) so results are independent of scheduling.
* **Merge-safe statistics.**  The module-global
  :data:`~repro.evaluation.runner.stats_collector` is per-process.
  Each worker collects its own records and returns them alongside the
  result; the parent merges them in submission order, so ``--stats
  --jobs N`` reporting equals the serial output.

Workers are plain module-level functions (picklable); point arguments
should be small tuples of primitives/instances.

* **Config travels in the payload.**  Worker processes must never
  reconstruct a :class:`~repro.core.subproblem.SubproblemConfig` from
  scattered scalars — a rebuilt config silently resets every field the
  payload didn't carry (solver backend, kernel flags) to its default,
  so a ``--backend batched --jobs N`` sweep would quietly run the
  sequential backend in its workers.  Point tuples therefore carry the
  fully-constructed config object (it is a plain dataclass of scalars
  and pickles cheaply); workers at most ``dataclasses.replace`` the
  swept field.

* **Shared solver cache.**  When the parent has a persistent solver
  cache active (``--cache DIR``; :mod:`repro.cache`), its directory is
  captured into the payload and each worker re-activates a store on
  the same directory: workers *read* blobs any prior run (or sibling
  worker) produced, and their writes are atomic single-writer renames
  of deterministic content, so no locking or merge step can change
  what ends up on disk.  Each point additionally returns its cache op
  counts and the coordinator folds them into its own store in
  submission order — ``cache stats`` and the obs counters are
  therefore independent of worker scheduling, exactly like ``--stats``.

* **Workers publish full registries.**  When the parent has a metrics
  registry active (``--metrics``/``--telemetry``), every worker
  enables a *fresh* registry of its own (dropping the fork-inherited
  parent state, which the parent already owns) and streams it through
  a :class:`~repro.obs.telemetry.TelemetrySink` into a per-call
  scratch directory; after the futures drain, the coordinator runs a
  :class:`~repro.obs.telemetry.TelemetryAggregator` over the sinks
  and folds the merged snapshot into its own registry.  Counter
  totals (engine steps, Newton iterations, backend slots, warm-start
  hits …) therefore equal the serial run's exactly — CI asserts the
  deterministic view of a ``--jobs 2`` sweep is byte-identical to
  serial.  Cache op counters are excluded from the telemetry merge
  (the submission-order ``merge_counts`` fold above already lands
  them) so they are never counted twice.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.cache import runtime as cache_runtime
from repro.evaluation.runner import stats_collector
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry

#: Per-process worker telemetry (one sink per worker per sweep call).
_worker_telemetry: dict = {"dir": None, "sink": None}


def _worker_sink(telemetry_dir: str):
    """The calling worker process's sink for ``telemetry_dir``.

    First call in a given worker (per sweep): sever any fork-inherited
    ambient sink, enable a fresh registry (the inherited one holds the
    parent's counts, which the parent still owns — counting work into
    both would double it after the merge), and open a per-pid sink.
    Subsequent points in the same worker reuse both, so the sink
    streams the worker's cumulative registry.
    """
    if _worker_telemetry["dir"] != telemetry_dir:
        obs_telemetry.forget_inherited()
        if _worker_telemetry["sink"] is not None:
            _worker_telemetry["sink"].close()
        registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
        _worker_telemetry["sink"] = obs_telemetry.TelemetrySink(
            telemetry_dir, registry=registry, label=f"worker-{os.getpid()}"
        )
        _worker_telemetry["dir"] = telemetry_dir
    return _worker_telemetry["sink"]


def _run_point(
    fn: Callable[[Any], Any],
    item: Any,
    seed: "int | None",
    collect: bool,
    cache_dir: "str | None" = None,
    telemetry_dir: "str | None" = None,
) -> "tuple[Any, list, dict]":
    """Execute one sweep point; used both inline and in workers.

    Resets the (per-process) stats collector first: under the ``fork``
    start method a worker inherits the parent's already-collected
    records, which must not be returned (and merged) twice.  The third
    return element is the point's cache op-count delta (empty when no
    cache is active), measured against the process-local store.
    ``telemetry_dir`` is only passed to pool workers: it routes the
    point's metrics into a fresh worker registry streamed to a sink
    the coordinator aggregates (never set on the inline path, where
    points publish directly into the parent registry).
    """
    sink = None
    if telemetry_dir is not None:
        sink = _worker_sink(telemetry_dir)
    if collect:
        stats_collector.enable()
        stats_collector.records = []
    store = None
    if cache_dir is not None:
        store = cache_runtime.active()
        if store is None or str(store.root) != cache_dir:
            store = cache_runtime.activate(cache_dir)
    before = store.counters.as_dict() if store is not None else {}
    if seed is not None:
        np.random.seed(seed)
    result = fn(item)
    records = stats_collector.clear() if collect else []
    ops: dict = {}
    if store is not None:
        after = store.counters.as_dict()
        ops = {op: after[op] - before.get(op, 0) for op in after}
    if sink is not None:
        sink.flush(force=True)
    return result, records, ops


def _worker(
    payload: "tuple[Callable, Any, int | None, bool, str | None, str | None]",
):
    fn, item, seed, collect, cache_dir, telemetry_dir = payload
    return _run_point(fn, item, seed, collect, cache_dir, telemetry_dir)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: "int | None" = None,
    seeds: "Sequence[int | None] | None" = None,
) -> list:
    """Map ``fn`` over ``items``, optionally across processes.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one argument.
    items:
        The sweep points.
    jobs:
        Number of worker processes; ``None``/``0``/``1`` runs inline
        (same wrapper, same per-point work).
    seeds:
        Optional per-item RNG seeds (``np.random.seed`` before each
        point); supply one per item so outcomes are scheduling-free.

    Returns the results in input order.  Statistics recorded by the
    points into the per-process :data:`stats_collector` are merged
    back into the parent's collector in submission order, making
    ``--stats`` output independent of ``jobs``.
    """
    items = list(items)
    if seeds is None:
        seeds = [None] * len(items)
    seeds = list(seeds)
    if len(seeds) != len(items):
        raise ValueError(f"expected {len(items)} seeds, got {len(seeds)}")
    collect = stats_collector.enabled
    cache_dir = cache_runtime.active_dir()
    results: list = []
    if not jobs or jobs <= 1 or len(items) <= 1:
        for item, seed in zip(items, seeds):
            saved = stats_collector.records if collect else []
            result, records, _ = _run_point(fn, item, seed, collect, cache_dir)
            if collect:
                stats_collector.records = saved
            results.append(result)
            stats_collector.merge(records)
        return results
    parent_store = cache_runtime.active()
    parent_registry = obs_metrics.active()
    scratch = None
    telemetry_dir = None
    if parent_registry is not None:
        # Workers stream their registries into a per-call scratch dir;
        # a scratch (not the ambient --telemetry dir) so the parent's
        # own sink remains the single account of this process's
        # registry and external aggregation never sees the same work
        # twice (once from a worker sink, once post-merge).
        scratch = tempfile.TemporaryDirectory(prefix="repro-sweep-telemetry-")
        telemetry_dir = scratch.name
    try:
        with ProcessPoolExecutor(max_workers=int(jobs)) as pool:
            futures = [
                pool.submit(
                    _worker, (fn, item, seed, collect, cache_dir, telemetry_dir)
                )
                for item, seed in zip(items, seeds)
            ]
            for future in futures:  # submission order == input order
                result, records, ops = future.result()
                results.append(result)
                stats_collector.merge(records)
                if parent_store is not None and ops:
                    parent_store.merge_counts(ops)
        if parent_registry is not None:
            aggregator = obs_telemetry.TelemetryAggregator(telemetry_dir)
            aggregator.poll()
            merged = aggregator.merged_snapshot()
            if parent_store is not None:
                # merge_counts above already landed cache ops (in
                # submission order); dropping them here keeps the
                # registry totals single-counted.
                merged = {
                    "schema": merged["schema"],
                    "metrics": [
                        e
                        for e in merged["metrics"]
                        if e["name"] != "solver_cache_ops_total"
                    ],
                }
            obs_telemetry.merge_snapshot_into(parent_registry, merged)
    finally:
        if scratch is not None:
            scratch.cleanup()
    return results


def run_sweep(
    fn: Callable[[Any], Any],
    grid: Iterable[Any],
    jobs: "int | None" = None,
    base_seed: "int | None" = None,
) -> list:
    """Sweep ``fn`` over ``grid`` with per-point derived seeds.

    ``base_seed`` (when given) seeds point ``i`` with
    ``base_seed + i`` — tied to the grid position, not the worker, so
    a sweep's random draws are reproducible at any ``jobs``.
    """
    grid = list(grid)
    seeds = None if base_seed is None else [base_seed + i for i in range(len(grid))]
    return parallel_map(fn, grid, jobs=jobs, seeds=seeds)
