"""Plain-text reporting of experiment results.

The benchmark harness prints, for every reproduced table/figure, the
same rows/series the paper reports; :class:`ExperimentResult` is that
structured payload plus free-form notes recording the expected shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _fmt(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: "list[str]", rows: "list[tuple]") -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
        for c, h in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def render_run_stats(records: "list[tuple[str, object]]") -> str:
    """Render engine :class:`~repro.engine.stats.RunStats` as a table.

    ``records`` are ``(algorithm name, RunStats)`` pairs, e.g. from
    :data:`repro.evaluation.runner.stats_collector`.
    """
    headers = [
        "algorithm",
        "steps",
        "mean step [s]",
        "max step [s]",
        "solves",
        "newton iters",
        "warm hit rate",
        "backends",
    ]
    rows = []
    for name, stats in records:
        if stats.warm_attempts:
            hit = f"{100.0 * stats.warm_hit_rate:.0f}% ({stats.warm_hits}/{stats.warm_attempts})"
        else:
            hit = "n/a"
        rows.append(
            (
                name,
                stats.n_steps,
                stats.mean_step_time,
                stats.max_step_time,
                stats.total_solves,
                stats.total_newton_iters,
                hit,
                ",".join(stats.backends) or "-",
            )
        )
    return format_table(headers, rows)


def render_serve_events(events: "list[dict]") -> str:
    """Render a serve event log (:mod:`repro.serve.events`) as tables.

    Produces the run-level summary plus a per-slot table (slot, serve
    path, wall time, deadline miss, fallback reason) — the report
    surface behind ``repro replay``.
    """
    from repro.serve.events import summarize_events

    summary = summarize_events(events)
    paths = summary["paths"]
    backend = next(
        (
            event["backend"]
            for event in events
            if event.get("event") in ("serve_start", "serve_resume")
            and event.get("backend")
        ),
        None,
    )
    start = next(
        (
            event
            for event in events
            if event.get("event") in ("serve_start", "serve_resume")
        ),
        {},
    )
    shard_rows = []
    if start.get("shards"):
        shard_rows.append(("shards", start["shards"]))
        shard_rows.append(("partition", start.get("partition", "?")))
        for k, assignment in enumerate(start.get("assignments", [])):
            shard_rows.append((f"shard {k} tier-1 clouds", str(assignment)))
        downs = sum(1 for e in events if e.get("event") == "shard_down")
        restarts = sum(1 for e in events if e.get("event") == "shard_restart")
        if downs or restarts:
            shard_rows.append(("shard deaths", downs))
            shard_rows.append(("shard restarts", restarts))
    summary_rows = [
        *([("solver backend", backend)] if backend else []),
        *shard_rows,
        ("slots", summary["slots"]),
        ("served", summary["slots"] - summary["unserved"]),
        ("unserved", summary["unserved"]),
        *[(f"path:{name}", count) for name, count in sorted(paths.items())],
        ("deadline misses", summary["deadline_misses"]),
        ("fallbacks", summary["fallbacks"]),
        ("checkpoints", summary["checkpoints"]),
        ("source errors", summary["source_errors"]),
        ("alerts", summary["alerts"]),
    ]
    parts = [format_table(["metric", "value"], summary_rows)]

    alert_rows = [
        (
            event.get("t", "-"),
            event.get("rule", "?"),
            event.get("value", 0.0),
            event.get("threshold", 0.0),
        )
        for event in events
        if event.get("event") == "alert"
    ]
    if alert_rows:
        parts.append("")
        parts.append(
            format_table(["slot", "alert rule", "value", "threshold"], alert_rows)
        )

    slot_rows = [
        (
            event.get("t", "-"),
            event.get("path", "?"),
            event.get("wall_time", 0.0),
            "yes" if event.get("deadline_missed") else "",
            event.get("error") or "",
        )
        for event in events
        if event.get("event") == "slot_decided"
    ]
    if slot_rows:
        parts.append("")
        parts.append(
            format_table(
                ["slot", "path", "wall [s]", "miss", "fallback reason"], slot_rows
            )
        )
    return "\n".join(parts)


def render_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot (:mod:`repro.obs`) as report tables.

    One table for scalar counters/gauges and one for histograms with
    estimated p50/p95/p99 latencies — the summary ``--metrics`` prints
    after a run.  Delegates to
    :func:`repro.obs.export.describe_snapshot`; :mod:`repro.obs` owns
    the rendering because it must stay importable without numpy.

    When the run recorded ``subproblem_warm_starts_total`` counters, a
    warm-start hit-rate summary line is appended (previously that rate
    was only visible in the perf bench output, not under ``--metrics``);
    likewise a ``solver_cache_ops_total`` summary when the persistent
    solver cache (``--cache``) was active.
    """
    from repro.obs.export import describe_snapshot, with_derived

    snapshot = with_derived(snapshot)
    out = "== metrics ==\n" + describe_snapshot(snapshot)
    warm = {"hit": 0.0, "miss": 0.0, "cold": 0.0}
    cache_ops = {"hit": 0.0, "miss": 0.0, "store": 0.0, "evict": 0.0, "corrupt": 0.0}
    saw_cache = False
    for entry in snapshot.get("metrics", []):
        if entry.get("name") == "subproblem_warm_starts_total":
            outcome = entry.get("labels", {}).get("outcome")
            if outcome in warm:
                warm[outcome] += float(entry.get("value", 0.0))
        elif entry.get("name") == "solver_cache_ops_total":
            op = entry.get("labels", {}).get("op")
            if op in cache_ops:
                saw_cache = True
                cache_ops[op] += float(entry.get("value", 0.0))
    attempts = warm["hit"] + warm["miss"]
    if attempts or warm["cold"]:
        if attempts:
            rate = f"{100.0 * warm['hit'] / attempts:.0f}% ({warm['hit']:.0f}/{attempts:.0f})"
        else:
            rate = "n/a"
        out += (
            f"\n\nwarm-start hit rate: {rate}"
            f"  [cold starts: {warm['cold']:.0f}]"
        )
    if saw_cache:
        lookups = cache_ops["hit"] + cache_ops["miss"]
        rate = (
            f"{100.0 * cache_ops['hit'] / lookups:.0f}%" if lookups else "n/a"
        )
        out += (
            f"\nsolver cache: hit rate {rate} "
            f"({cache_ops['hit']:.0f}/{lookups:.0f}), "
            f"{cache_ops['store']:.0f} stored, "
            f"{cache_ops['evict']:.0f} evicted, "
            f"{cache_ops['corrupt']:.0f} corrupt"
        )
    return out


@dataclass
class ExperimentResult:
    """Structured output of one reproduced table/figure.

    Attributes
    ----------
    name:
        Experiment id (e.g. ``"fig5/wikipedia"``).
    headers, rows:
        The tabular payload (what the paper's figure plots).
    series:
        Optional named time/parameter series backing the rows.
    notes:
        Free-form remarks (expected shape, scale used).
    """

    name: str
    headers: "list[str]"
    rows: "list[tuple]"
    series: "dict[str, np.ndarray]" = field(default_factory=dict)
    notes: "list[str]" = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.name} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> "list":
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]
