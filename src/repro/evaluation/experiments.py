"""Experiment registry: one function per paper table/figure.

Every function returns an :class:`~repro.evaluation.reporting.ExperimentResult`
whose rows are the series the corresponding figure plots.  Absolute
values differ from the paper (synthetic traces, laptop scale); the
*shapes* — who wins, by what rough factor, where crossovers appear —
are asserted by the benchmark harness and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines.lcp import LCPM
from repro.core.competitive import empirical_ratio, theorem1_ratio
from repro.core.online import RegularizedOnline
from repro.core.subproblem import SubproblemConfig
from repro.evaluation.metrics import normalized_costs
from repro.evaluation.parallel import parallel_map
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import (
    OfflineOracle,
    run_algorithm,
    run_suite,
    stats_collector,
)
from repro.evaluation.scale import ExperimentScale
from repro.model.instance import Instance
from repro.prediction.fhc import FixedHorizonControl
from repro.prediction.predictors import ExactPredictor, GaussianNoisePredictor
from repro.prediction.rfhc import RegularizedFixedHorizonControl
from repro.prediction.rhc import RecedingHorizonControl
from repro.prediction.rrhc import RegularizedRecedingHorizonControl
from repro.pricing.bandwidth import bandwidth_price_table
from repro.pricing.electricity import ElectricityPriceModel
from repro.topology.builder import PaperTopologyBuilder
from repro.workloads.wikipedia import WikipediaLikeWorkload
from repro.workloads.worldcup import WorldCupLikeWorkload


# ----------------------------------------------------------------------
# Shared input construction
# ----------------------------------------------------------------------
def make_trace(workload: str, scale: ExperimentScale) -> np.ndarray:
    """The hourly trace for one of the two paper workload regimes."""
    if workload == "wikipedia":
        return WikipediaLikeWorkload(horizon=scale.horizon_wiki).generate()
    if workload == "worldcup":
        return WorldCupLikeWorkload(horizon=scale.horizon_worldcup).generate()
    raise ValueError(f"unknown workload {workload!r}")


def make_instance(
    scale: ExperimentScale,
    workload: str = "wikipedia",
    k: int = 1,
    recon_weight: float = 1e3,
    seed: int = 42,
) -> Instance:
    """Paper-style instance at the requested scale."""
    trace = make_trace(workload, scale)
    builder = PaperTopologyBuilder(
        k=k,
        recon_weight=recon_weight,
        n_tier2=scale.n_tier2,
        n_tier1=scale.n_tier1,
        seed=seed,
    )
    return builder.build(trace)


# ----------------------------------------------------------------------
# Table I / Table II / Fig 4 — inputs
# ----------------------------------------------------------------------
def table1_electricity(horizon: int = 3000, seed: int = 0) -> ExperimentResult:
    """Table I: per-market price statistics, paper vs synthesized."""
    model = ElectricityPriceModel()
    locations = [m.location for m in model.markets]
    series = model.series(locations, horizon, seed=seed)
    rows = []
    for idx, market in enumerate(model.markets):
        s = series[:, idx]
        rows.append(
            (market.name, market.mean, market.std, float(s.mean()), float(s.std()))
        )
    return ExperimentResult(
        name="table1/electricity-prices",
        headers=["market", "mean_paper", "sd_paper", "mean_synth", "sd_synth"],
        rows=rows,
        series={"prices": series},
        notes=[
            "synthesized iid truncated-Gaussian hourly prices; sample moments "
            "must match the table within sampling error (truncation biases "
            "high-variance markets slightly upward)"
        ],
    )


def table2_bandwidth() -> ExperimentResult:
    """Table II: tiered bandwidth price schedule."""
    rows = bandwidth_price_table()
    return ExperimentResult(
        name="table2/bandwidth-prices",
        headers=["capacity_gb_per_month", "price_per_gb"],
        rows=rows,
        notes=["price non-increasing in provisioned capacity (volume discount)"],
    )


def fig4_workloads(scale: "ExperimentScale | None" = None) -> ExperimentResult:
    """Fig 4: the two workload regimes' hourly traces and burstiness."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    series = {}
    for name in ("wikipedia", "worldcup"):
        trace = make_trace(name, scale)
        series[name] = trace
        rows.append(
            (
                name,
                trace.shape[0],
                float(trace.mean()),
                float(trace.max() / max(trace.mean(), 1e-12)),
                float(np.quantile(trace, 0.95) / max(np.median(trace), 1e-12)),
            )
        )
    return ExperimentResult(
        name="fig4/workload-traces",
        headers=["workload", "hours", "mean", "peak_to_mean", "p95_to_median"],
        rows=rows,
        series=series,
        notes=[
            "wikipedia-like: regular diurnal dynamics (low burstiness); "
            "worldcup-like: large spikes (high peak-to-mean)"
        ],
    )


# ----------------------------------------------------------------------
# Fig 5 — cost over time without prediction
# ----------------------------------------------------------------------
def _fig5_point(args) -> "tuple[tuple, dict[str, np.ndarray]]":
    """One Fig-5 grid point (a reconfiguration weight); picklable.

    The point payload carries the *full* :class:`SubproblemConfig`
    (not a bare epsilon): solver backend and kernel flags must survive
    process-pool pickling so ``--jobs N`` runs the identical per-point
    work as a serial sweep.  Same pattern in every ``_fig*_point``.
    """
    scale, workload, b, config, k = args
    instance = make_instance(scale, workload, k=k, recon_weight=b)
    results = run_suite(
        instance,
        {
            "one-shot": _Greedy(),
            "online": RegularizedOnline(config),
            "offline": OfflineOracle(),
        },
    )
    norm = normalized_costs(results, reference="offline")
    row = (
        workload,
        b,
        results["one-shot"].total,
        results["online"].total,
        results["offline"].total,
        norm["one-shot"],
        norm["online"],
    )
    series = {
        f"b={b:g}/{name}/cumulative": r.cost.cumulative
        for name, r in results.items()
    }
    return row, series


def fig5_cost_no_prediction(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    recon_weights: "tuple[float, ...]" = (10.0, 1e2, 1e3, 1e4),
    epsilon: float = 1e-2,
    k: int = 1,
    jobs: "int | None" = None,
    backend: str = "sequential",
) -> ExperimentResult:
    """Fig 5: greedy vs online vs offline, across reconfiguration prices."""
    scale = scale or ExperimentScale.from_env()
    config = SubproblemConfig(epsilon=epsilon, backend=backend)
    points = parallel_map(
        _fig5_point,
        [(scale, workload, b, config, k) for b in recon_weights],
        jobs=jobs,
    )
    rows = []
    series: dict[str, np.ndarray] = {}
    for row, point_series in points:
        rows.append(row)
        series.update(point_series)
    return ExperimentResult(
        name=f"fig5/{workload}",
        headers=[
            "workload",
            "recon_weight",
            "cost_one_shot",
            "cost_online",
            "cost_offline",
            "one_shot/offline",
            "online/offline",
        ],
        rows=rows,
        series=series,
        notes=[
            "expected shape: one-shot ~ offline for small b, diverging as b "
            "grows (paper: up to 9x); online stays within a small factor "
            "(paper: at most 3x) across all b",
        ],
    )


# ----------------------------------------------------------------------
# Fig 6 — actual competitive ratio vs epsilon
# ----------------------------------------------------------------------
def _fig6_point(args) -> "list[tuple]":
    """One Fig-6 recon-weight point: the offline solve is shared by
    the whole epsilon sweep, so the grid parallelizes over ``b``."""
    scale, workload, b, epsilons, k, config = args
    instance = make_instance(scale, workload, k=k, recon_weight=b)
    offline = run_algorithm("offline", OfflineOracle(), instance)
    rows = []
    for eps in epsilons:
        online = run_algorithm(
            "online",
            RegularizedOnline(replace(config, epsilon=eps)),
            instance,
        )
        rows.append(
            (
                workload,
                b,
                eps,
                empirical_ratio(online.total, offline.total),
                theorem1_ratio(instance.network, eps),
            )
        )
    return rows


def fig6_ratio_vs_epsilon(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    epsilons: "tuple[float, ...]" = (1e-3, 1e-2, 1e-1, 1.0, 10.0, 1e2, 1e3),
    recon_weights: "tuple[float, ...]" = (1e2, 1e3, 1e4),
    k: int = 1,
    jobs: "int | None" = None,
    backend: str = "sequential",
) -> ExperimentResult:
    """Fig 6: empirical ratio vs epsilon, with the Theorem-1 bound."""
    scale = scale or ExperimentScale.from_env()
    config = SubproblemConfig(backend=backend)
    rows = []
    for point_rows in parallel_map(
        _fig6_point,
        [(scale, workload, b, epsilons, k, config) for b in recon_weights],
        jobs=jobs,
    ):
        rows.extend(point_rows)
    return ExperimentResult(
        name=f"fig6/{workload}",
        headers=["workload", "recon_weight", "epsilon", "actual_ratio", "thm1_bound"],
        rows=rows,
        notes=[
            "expected shape: actual ratio stays small (paper: < 3) and is "
            "non-monotone in epsilon (valley); the Theorem-1 bound decreases "
            "monotonically in epsilon and dominates the actual ratio",
        ],
    )


# ----------------------------------------------------------------------
# Fig 7 — SLA size sweep (k) incl. LCP-M
# ----------------------------------------------------------------------
def _fig7_point(args) -> tuple:
    """One Fig-7 SLA-size point; picklable."""
    scale, workload, k, recon_weight, config, lcp_lookback = args
    instance = make_instance(scale, workload, k=k, recon_weight=recon_weight)
    results = run_suite(
        instance,
        {
            "one-shot": _Greedy(),
            "online": RegularizedOnline(config),
            "lcp-m": LCPM(lookback=lcp_lookback),
            "offline": OfflineOracle(),
        },
    )
    norm = normalized_costs(results, reference="offline")
    return (
        k,
        norm["one-shot"],
        norm["online"],
        norm["lcp-m"],
        results["offline"].total,
    )


def fig7_sla(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    ks: "tuple[int, ...]" = (1, 2, 3, 4),
    recon_weight: float = 1e3,
    epsilon: float = 1e-2,
    lcp_lookback: "int | None" = 24,
    jobs: "int | None" = None,
    backend: str = "sequential",
) -> ExperimentResult:
    """Fig 7: total cost vs SLA size k, including the LCP-M baseline."""
    scale = scale or ExperimentScale.from_env()
    config = SubproblemConfig(epsilon=epsilon, backend=backend)
    rows = parallel_map(
        _fig7_point,
        [(scale, workload, k, recon_weight, config, lcp_lookback) for k in ks],
        jobs=jobs,
    )
    return ExperimentResult(
        name=f"fig7/{workload}",
        headers=["k", "one_shot/offline", "online/offline", "lcpm/offline", "cost_offline"],
        rows=rows,
        notes=[
            "expected shape: online approaches offline as k grows (more room "
            "to optimize); LCP-M does not track the offline optimum as well "
            "as the regularized online algorithm",
        ],
    )


# ----------------------------------------------------------------------
# Figs 8-10 — prediction-based control
# ----------------------------------------------------------------------
def _predictor(error: float, seed: int):
    if error <= 0:
        return ExactPredictor()
    return GaussianNoisePredictor(error, seed=seed)


def _predictive_suite(window: int, config: SubproblemConfig, error: float, seed: int):
    return {
        "fhc": FixedHorizonControl(window, predictor=_predictor(error, seed)),
        "rhc": RecedingHorizonControl(window, predictor=_predictor(error, seed)),
        "rfhc": RegularizedFixedHorizonControl(
            window, config, predictor=_predictor(error, seed)
        ),
        "rrhc": RegularizedRecedingHorizonControl(
            window, config, predictor=_predictor(error, seed)
        ),
    }


def _fig8_point(args) -> tuple:
    """One Fig-8/9 window point; the offline/online anchor totals are
    solved once in the parent and shipped in as floats."""
    instance, w, config, error, seed, offline_total, online_total = args
    results = run_suite(instance, _predictive_suite(w, config, error, seed))
    return (
        w,
        results["fhc"].total / offline_total,
        results["rhc"].total / offline_total,
        results["rfhc"].total / offline_total,
        results["rrhc"].total / offline_total,
        online_total / offline_total,
    )


def fig8_prediction_window(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    windows: "tuple[int, ...]" = (2, 4, 6, 8, 10),
    recon_weight: float = 1e3,
    epsilon: float = 1e-3,
    k: int = 1,
    error: float = 0.0,
    seed: int = 7,
    jobs: "int | None" = None,
    backend: str = "sequential",
) -> ExperimentResult:
    """Fig 8 (error=0) / Fig 9 (error=0.15): cost vs prediction window."""
    scale = scale or ExperimentScale.from_env()
    config = SubproblemConfig(epsilon=epsilon, backend=backend)
    instance = make_instance(scale, workload, k=k, recon_weight=recon_weight)
    offline = run_algorithm("offline", OfflineOracle(), instance)
    online = run_algorithm("online", RegularizedOnline(config), instance)
    rows = parallel_map(
        _fig8_point,
        [
            (instance, w, config, error, seed, offline.total, online.total)
            for w in windows
        ],
        jobs=jobs,
    )
    tag = "fig9" if error > 0 else "fig8"
    return ExperimentResult(
        name=f"{tag}/{workload}/error={error:g}",
        headers=["window", "fhc", "rhc", "rfhc", "rrhc", "online_no_pred"],
        rows=rows,
        notes=[
            "all columns normalized by the offline optimum",
            "expected shape (accurate predictions): rfhc/rrhc <= online for "
            "every window; fhc/rhc may stay above online when ramp-down "
            "phases exceed the window",
        ],
    )


def fig9_noisy_prediction(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    windows: "tuple[int, ...]" = (2, 4, 6, 8, 10),
    error: float = 0.15,
    **kwargs,
) -> ExperimentResult:
    """Fig 9: the Fig-8 sweep under 15 % prediction error."""
    return fig8_prediction_window(
        scale, workload, windows, error=error, **kwargs
    )


def _fig10_point(args) -> tuple:
    """One Fig-10 error-rate point; picklable."""
    instance, window, config, error, seed, offline_total, online_total = args
    results = run_suite(instance, _predictive_suite(window, config, error, seed))
    return (
        error,
        results["fhc"].total / offline_total,
        results["rhc"].total / offline_total,
        results["rfhc"].total / offline_total,
        results["rrhc"].total / offline_total,
        online_total / offline_total,
    )


def fig10_error_sweep(
    scale: "ExperimentScale | None" = None,
    workload: str = "wikipedia",
    errors: "tuple[float, ...]" = (0.0, 0.05, 0.10, 0.15),
    window: int = 2,
    recon_weight: float = 1e3,
    epsilon: float = 1e-3,
    k: int = 1,
    seed: int = 7,
    jobs: "int | None" = None,
    backend: str = "sequential",
) -> ExperimentResult:
    """Fig 10: cost vs prediction error at a fixed (short) window."""
    scale = scale or ExperimentScale.from_env()
    config = SubproblemConfig(epsilon=epsilon, backend=backend)
    instance = make_instance(scale, workload, k=k, recon_weight=recon_weight)
    offline = run_algorithm("offline", OfflineOracle(), instance)
    online = run_algorithm("online", RegularizedOnline(config), instance)
    rows = parallel_map(
        _fig10_point,
        [
            (instance, window, config, error, seed, offline.total, online.total)
            for error in errors
        ],
        jobs=jobs,
    )
    return ExperimentResult(
        name=f"fig10/{workload}/w={window}",
        headers=["error", "fhc", "rhc", "rfhc", "rrhc", "online_no_pred"],
        rows=rows,
        notes=[
            "all columns normalized by the offline optimum",
            "expected shape: rfhc/rrhc nearly flat in the error rate; fhc/rhc "
            "degrade markedly (paper: ~40%/~20% at 15% error); at short "
            "windows, noisy rfhc/rrhc may exceed the prediction-free online "
            "algorithm",
        ],
    )


# ----------------------------------------------------------------------
# Theorems 2-3 — adversarial V-shaped workloads
# ----------------------------------------------------------------------
def theorem23_adversarial(
    recon_prices: "tuple[float, ...]" = (1.0, 10.0, 1e2, 1e3),
    window: int = 3,
    ramp: int = 12,
    n_valleys: int = 4,
) -> ExperimentResult:
    """Theorems 2-3: greedy/FHC/RHC blow up on V-shaped workloads.

    Uses the scalar problem (closed forms + LPs).  A single valley
    bounds the myopic controllers' excess by one re-buy of the ramp;
    repeating the valley ``n_valleys`` times makes them re-buy it every
    time while the offline optimum (for large enough reconfiguration
    price) holds the peak throughout — the ratio grows with both the
    reconfiguration price and the number of valleys, while the
    regularized online algorithm stays bounded.
    """
    from repro.core.single import (
        SingleResourceProblem,
        single_fhc,
        single_greedy,
        single_offline_optimal,
        single_online_decay,
        single_rhc,
        vee_workload,
    )

    one = vee_workload(peak=1.0, valley=0.05, down_length=ramp, up_length=ramp)
    lam = np.concatenate([one] + [one[1:]] * (max(n_valleys, 1) - 1))
    rows = []
    for b in recon_prices:
        prob = SingleResourceProblem(lam, prices=0.05, capacity=1.0, recon_price=b)
        _, opt = single_offline_optimal(prob)
        rows.append(
            (
                b,
                prob.cost(single_greedy(prob)) / opt,
                prob.cost(single_fhc(prob, window)) / opt,
                prob.cost(single_rhc(prob, window)) / opt,
                prob.cost(single_online_decay(prob, epsilon=1e-2)) / opt,
            )
        )
    return ExperimentResult(
        name=f"thm2-3/vee(ramp={ramp},w={window})",
        headers=["recon_price", "greedy/opt", "fhc/opt", "rhc/opt", "online/opt"],
        rows=rows,
        notes=[
            "expected shape: greedy, FHC and RHC ratios grow with the "
            "reconfiguration price (unbounded in the limit); the regularized "
            "online ratio stays bounded",
        ],
    )


class _Greedy:
    """Local import indirection to avoid a cycle at module import."""

    name = "one-shot"

    def run(self, instance: Instance):
        from repro.offline.greedy import GreedyOneShot

        return GreedyOneShot().run(instance)


# ----------------------------------------------------------------------
# Section III-E — N-tier generalization (reconstruction)
# ----------------------------------------------------------------------
def ntier_generalization(
    n_edge: int = 6,
    n_mid: int = 4,
    n_top: int = 3,
    horizon: int = 24,
    epsilon: float = 1e-2,
    seed: int = 17,
) -> ExperimentResult:
    """3-tier instance: online vs greedy vs offline, plus the bound.

    Builds a metro -> regional -> core hierarchy with a V-shaped
    workload (the regime where smoothing matters) and checks that the
    two-tier orderings carry over.
    """
    from repro.core.competitive import ntier_ratio
    from repro.model.network import Cloud
    from repro.ntier import (
        LayeredNetwork,
        LayerLink,
        NTierConfig,
        NTierGreedy,
        NTierInstance,
        NTierRegularizedOnline,
        solve_ntier_offline,
    )

    rng = np.random.default_rng(seed)
    edge = [Cloud(f"e{j}", np.inf) for j in range(n_edge)]
    mid = [Cloud(f"m{u}", 8.0, 60.0) for u in range(n_mid)]
    top = [Cloud(f"t{u}", 12.0, 90.0) for u in range(n_top)]
    links = []
    for j in range(n_edge):
        for u in {j % n_mid, (j + 1) % n_mid}:
            links.append(LayerLink(1, j, u, 6.0, 40.0))
    for u in range(n_mid):
        for v in {u % n_top, (u + 1) % n_top}:
            links.append(LayerLink(2, u, v, 8.0, 40.0))
    net = LayeredNetwork([edge, mid, top], links)

    half = horizon // 2
    vee = np.concatenate(
        [np.linspace(1.8, 0.1, half), np.linspace(0.1, 1.8, horizon - half + 1)[1:]]
    )
    lam = vee[:, None] * (1 + 0.1 * rng.random((horizon, n_edge)))
    inst = NTierInstance(
        net,
        lam,
        0.05 * (1 + 0.3 * rng.random((horizon, net.n_upper_nodes))),
        0.02 * np.ones((horizon, net.n_links)),
    )

    off = solve_ntier_offline(inst)
    online = NTierRegularizedOnline(NTierConfig(epsilon=epsilon)).run(inst)
    # N-tier trajectories don't go through run_algorithm (two-tier
    # scoring); feed the stats collector directly so --stats covers it.
    stats_collector.add("ntier-online", online.run_stats)
    greedy = NTierGreedy().run(inst)
    c_on, c_gr = inst.cost(online), inst.cost(greedy)
    stage1_links = sum(1 for l in links if l.stage == 1)
    bound = ntier_ratio(
        [net.node_capacity[:n_mid], net.node_capacity[n_mid:]],
        [net.link_capacity[:stage1_links], net.link_capacity[stage1_links:]],
        epsilon,
    )
    rows = [
        ("offline", off.objective, 1.0),
        ("online", c_on, c_on / off.objective),
        ("greedy", c_gr, c_gr / off.objective),
    ]
    return ExperimentResult(
        name=f"ntier/3-tier({n_edge}x{n_mid}x{n_top})",
        headers=["algorithm", "total_cost", "vs_offline"],
        rows=rows,
        notes=[
            f"reconstructed N-tier competitive bound: {bound:.1f}x",
            "expected shape: offline <= online < greedy on V-shaped "
            "workloads with expensive reconfiguration",
        ],
    )
