"""Run algorithms on instances and collect scored results.

Algorithms driven through the solve engine attach per-step solver
statistics (:class:`~repro.engine.stats.RunStats`) to their
trajectories; :func:`run_algorithm` lifts those onto the
:class:`RunResult` and, when the module-level :data:`stats_collector`
is enabled (the CLI's ``--stats`` flag), records them for later
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.stats import RunStats
from repro.model.allocation import Trajectory
from repro.model.costs import CostBreakdown, evaluate_cost
from repro.model.feasibility import check_trajectory
from repro.model.instance import Instance
from repro.util.timing import Timer


class StatsCollector:
    """Opt-in sink for the engine statistics of scored runs.

    Disabled by default (zero overhead); the CLI enables it for
    ``--stats`` and renders/clears it after each experiment.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.records: "list[tuple[str, RunStats]]" = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> "list[tuple[str, RunStats]]":
        """Return and forget everything collected so far."""
        records, self.records = self.records, []
        return records

    def add(self, name: str, stats: RunStats) -> None:
        if self.enabled:
            self.records.append((name, stats))

    def merge(self, records: "list[tuple[str, RunStats]]") -> None:
        """Append records collected in another process.

        The parallel sweep runner (:mod:`repro.evaluation.parallel`)
        runs points in worker processes whose own module-global
        collector gathers that point's records; the parent merges them
        back **in submission order**, so ``--stats --jobs N`` output is
        identical to a serial run.
        """
        if self.enabled:
            self.records.extend(records)


#: Process-wide collector the CLI's ``--stats`` flag switches on.
stats_collector = StatsCollector()


@dataclass
class RunResult:
    """A scored algorithm run.

    ``total`` is the realized cost on the *true* instance data
    (controllers may have planned on forecasts).  ``stats`` carries
    the engine's per-step solver statistics when the algorithm ran
    through a :class:`~repro.engine.session.SolveSession` (every
    built-in controller does), else ``None``.
    """

    name: str
    trajectory: Trajectory
    cost: CostBreakdown
    total: float
    runtime: float
    feasible: bool
    feasibility_detail: str
    stats: "RunStats | None" = None


def run_algorithm(name: str, algorithm, instance: Instance) -> RunResult:
    """Run one algorithm (anything with ``.run(instance)``) and score it."""
    with Timer() as timer:
        trajectory = algorithm.run(instance)
    cost = evaluate_cost(instance, trajectory)
    report = check_trajectory(instance, trajectory)
    stats = getattr(trajectory, "run_stats", None)
    if stats is not None:
        stats_collector.add(name, stats)
    return RunResult(
        name=name,
        trajectory=trajectory,
        cost=cost,
        total=cost.total,
        runtime=timer.elapsed,
        feasible=report.ok,
        feasibility_detail=report.describe(),
        stats=stats,
    )


def run_suite(
    instance: Instance, algorithms: "dict[str, object]"
) -> "dict[str, RunResult]":
    """Run several algorithms on the same instance."""
    return {
        name: run_algorithm(name, algo, instance)
        for name, algo in algorithms.items()
    }


class OfflineOracle:
    """Adapter exposing the offline LP through the ``.run`` protocol."""

    name = "offline-optimal"

    def run(self, instance: Instance) -> Trajectory:
        """Solve the full-horizon LP and return its trajectory."""
        from repro.offline.optimal import solve_offline

        return solve_offline(instance).trajectory
