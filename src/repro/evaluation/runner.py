"""Run algorithms on instances and collect scored results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.allocation import Trajectory
from repro.model.costs import CostBreakdown, evaluate_cost
from repro.model.feasibility import check_trajectory
from repro.model.instance import Instance
from repro.util.timing import Timer


@dataclass
class RunResult:
    """A scored algorithm run.

    ``total`` is the realized cost on the *true* instance data
    (controllers may have planned on forecasts).
    """

    name: str
    trajectory: Trajectory
    cost: CostBreakdown
    total: float
    runtime: float
    feasible: bool
    feasibility_detail: str


def run_algorithm(name: str, algorithm, instance: Instance) -> RunResult:
    """Run one algorithm (anything with ``.run(instance)``) and score it."""
    with Timer() as timer:
        trajectory = algorithm.run(instance)
    cost = evaluate_cost(instance, trajectory)
    report = check_trajectory(instance, trajectory)
    return RunResult(
        name=name,
        trajectory=trajectory,
        cost=cost,
        total=cost.total,
        runtime=timer.elapsed,
        feasible=report.ok,
        feasibility_detail=report.describe(),
    )


def run_suite(
    instance: Instance, algorithms: "dict[str, object]"
) -> "dict[str, RunResult]":
    """Run several algorithms on the same instance."""
    return {
        name: run_algorithm(name, algo, instance)
        for name, algo in algorithms.items()
    }


class OfflineOracle:
    """Adapter exposing the offline LP through the ``.run`` protocol."""

    name = "offline-optimal"

    def run(self, instance: Instance) -> Trajectory:
        """Solve the full-horizon LP and return its trajectory."""
        from repro.offline.optimal import solve_offline

        return solve_offline(instance).trajectory
