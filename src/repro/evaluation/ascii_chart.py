"""Terminal charts: sparklines and multi-series line plots in text.

No plotting library ships in the target environment, so the CLI and
examples render figures directly in the terminal.  Two primitives:

* :func:`sparkline` — a one-line unicode summary of a series;
* :func:`line_chart` — a fixed-size character canvas with multiple
  labelled series, y-axis ticks, and distinct glyphs per series.
"""

from __future__ import annotations

import numpy as np

_SPARKS = "▁▂▃▄▅▆▇█"
_GLYPHS = "*o+x#@%&"


def sparkline(values: np.ndarray, width: "int | None" = None) -> str:
    """One-line unicode sparkline of a series.

    ``width`` optionally downsamples (bucket means) to that many
    characters.  Constant series render as a flat mid-level line.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if width is not None and width > 0 and values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-15:
        return _SPARKS[3] * values.size
    idx = ((values - lo) / (hi - lo) * (len(_SPARKS) - 1)).round().astype(int)
    return "".join(_SPARKS[i] for i in idx)


def line_chart(
    series: "dict[str, np.ndarray]",
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series character line chart.

    Each named series is resampled to ``width`` columns and drawn with
    its own glyph on a shared y-scale.  Returns a multi-line string
    ending with a legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 3:
        raise ValueError("canvas too small")
    arrays = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    if any(a.size == 0 for a in arrays.values()):
        raise ValueError("series must be non-empty")
    lo = min(float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())
    if hi - lo < 1e-15:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, a), glyph in zip(arrays.items(), _GLYPHS):
        xs = np.linspace(0, a.size - 1, width)
        ys = np.interp(xs, np.arange(a.size), a)
        rows = ((ys - lo) / (hi - lo) * (height - 1)).round().astype(int)
        for col, row in enumerate(rows):
            canvas[height - 1 - row][col] = glyph

    lines = []
    for r, row in enumerate(canvas):
        if r == 0:
            tick = f"{hi:10.4g} |"
        elif r == height - 1:
            tick = f"{lo:10.4g} |"
        elif r == height // 2:
            tick = f"{(lo + hi) / 2:10.4g} |"
        else:
            tick = " " * 10 + " |"
        lines.append(tick + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    legend = "   ".join(
        f"{glyph} {name}" for (name, _), glyph in zip(arrays.items(), _GLYPHS)
    )
    if y_label:
        legend = f"[{y_label}]  " + legend
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
