"""Experiment sizing: laptop-scale defaults, paper scale on request."""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes used by the experiment registry.

    ``from_env`` returns paper scale when ``REPRO_FULL_SCALE=1`` is
    set (18 tier-2 clouds, 48 tier-1 clouds, 500/600-hour horizons)
    and a reduced but structurally identical configuration otherwise.
    The reduction keeps every qualitative property the paper's figures
    exhibit: multi-day horizons (diurnal + weekly structure), SLA
    subsets with k up to 4, and both workload regimes.
    """

    n_tier2: "int | None"
    n_tier1: "int | None"
    horizon_wiki: int
    horizon_worldcup: int
    full: bool

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        if os.environ.get("REPRO_FULL_SCALE", "0") == "1":
            return cls(
                n_tier2=None,  # all 18
                n_tier1=None,  # all 48
                horizon_wiki=500,
                horizon_worldcup=600,
                full=True,
            )
        return cls(
            n_tier2=6,
            n_tier1=12,
            horizon_wiki=96,
            horizon_worldcup=120,
            full=False,
        )

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Very small scale for unit tests of the experiment registry."""
        return cls(n_tier2=3, n_tier1=5, horizon_wiki=30, horizon_worldcup=36, full=False)
