"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro list
    python -m repro run fig5 --workload worldcup
    python -m repro run fig6 --full
    python -m repro run all

Every experiment prints the same rows the corresponding paper figure
plots (see EXPERIMENTS.md for recorded outputs).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evaluation import ExperimentScale, experiments


def _registry(scale: ExperimentScale, jobs: "int | None" = None):
    windows = (2, 4, 6, 8, 10) if scale.full else (2, 4, 6)
    return {
        "table1": lambda a: experiments.table1_electricity(),
        "table2": lambda a: experiments.table2_bandwidth(),
        "fig4": lambda a: experiments.fig4_workloads(scale),
        "fig5": lambda a: experiments.fig5_cost_no_prediction(
            scale, a.workload, jobs=jobs
        ),
        "fig6": lambda a: experiments.fig6_ratio_vs_epsilon(
            scale, a.workload, jobs=jobs
        ),
        "fig7": lambda a: experiments.fig7_sla(
            scale, a.workload, lcp_lookback=12, jobs=jobs
        ),
        "fig8": lambda a: experiments.fig8_prediction_window(
            scale, a.workload, windows=windows, jobs=jobs
        ),
        "fig9": lambda a: experiments.fig9_noisy_prediction(
            scale, a.workload, windows=windows, jobs=jobs
        ),
        "fig10": lambda a: experiments.fig10_error_sweep(
            scale, a.workload, jobs=jobs
        ),
        "thm23": lambda a: experiments.theorem23_adversarial(),
        "ntier": lambda a: experiments.ntier_generalization(
            horizon=48 if scale.full else 24
        ),
    }


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument(
        "--workload",
        choices=["wikipedia", "worldcup"],
        default="wikipedia",
        help="workload regime for the figure experiments",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="paper scale (18x48 clouds, 500/600 h) instead of reduced",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="render the experiment's series as terminal charts",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print per-step solver statistics (wall time, Newton "
        "iterations, warm-start hit rate) for each algorithm run",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run sweep points on N worker processes (results and "
        "--stats output are identical to a serial run)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        scale = ExperimentScale.from_env()
        for name in _registry(scale):
            print(name)
        return 0

    scale = (
        ExperimentScale(None, None, 500, 600, True)
        if getattr(args, "full", False)
        else ExperimentScale.from_env()
    )
    registry = _registry(scale, jobs=getattr(args, "jobs", None))
    if args.experiment == "all":
        names = list(registry)
    elif args.experiment in registry:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    want_stats = getattr(args, "stats", False)
    if want_stats:
        from repro.evaluation.runner import stats_collector

        stats_collector.enable()
    for name in names:
        start = time.perf_counter()
        result = registry[name](args)
        print(result.render())
        if want_stats:
            from repro.evaluation.reporting import render_run_stats
            from repro.evaluation.runner import stats_collector

            records = stats_collector.clear()
            if records:
                print()
                print(f"-- engine stats: {name} --")
                print(render_run_stats(records))
        if getattr(args, "plot", False) and result.series:
            from repro.evaluation.ascii_chart import line_chart

            # Chart at most four series to keep the terminal readable.
            subset = dict(list(result.series.items())[:4])
            print()
            print(line_chart(subset))
        print(f"[{name}: {time.perf_counter() - start:.1f}s]")
        print()
    return 0
