"""Command-line interface: experiments and the serving runtime.

Usage::

    python -m repro list
    python -m repro run fig5 --workload worldcup
    python -m repro run fig6 --full
    python -m repro run all
    python -m repro serve --trace demand.csv --deadline-ms 500 \\
        --checkpoint run.ckpt --events run_events.jsonl
    python -m repro replay run_events.jsonl

``run`` prints the same rows the corresponding paper figure plots (see
EXPERIMENTS.md for recorded outputs); ``serve`` drives the
fault-tolerant streaming runtime over an hourly-CSV trace (see
docs/SERVING.md); ``replay`` renders a recorded serve event log.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.evaluation import ExperimentScale, experiments


def _registry(
    scale: ExperimentScale,
    jobs: "int | None" = None,
    backend: str = "sequential",
):
    windows = (2, 4, 6, 8, 10) if scale.full else (2, 4, 6)
    return {
        "table1": lambda a: experiments.table1_electricity(),
        "table2": lambda a: experiments.table2_bandwidth(),
        "fig4": lambda a: experiments.fig4_workloads(scale),
        "fig5": lambda a: experiments.fig5_cost_no_prediction(
            scale, a.workload, jobs=jobs, backend=backend
        ),
        "fig6": lambda a: experiments.fig6_ratio_vs_epsilon(
            scale, a.workload, jobs=jobs, backend=backend
        ),
        "fig7": lambda a: experiments.fig7_sla(
            scale, a.workload, lcp_lookback=12, jobs=jobs, backend=backend
        ),
        "fig8": lambda a: experiments.fig8_prediction_window(
            scale, a.workload, windows=windows, jobs=jobs, backend=backend
        ),
        "fig9": lambda a: experiments.fig9_noisy_prediction(
            scale, a.workload, windows=windows, jobs=jobs, backend=backend
        ),
        "fig10": lambda a: experiments.fig10_error_sweep(
            scale, a.workload, jobs=jobs, backend=backend
        ),
        "thm23": lambda a: experiments.theorem23_adversarial(),
        "ntier": lambda a: experiments.ntier_generalization(
            horizon=48 if scale.full else 24
        ),
    }


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.solvers.backends import available_backends

    parser.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="sequential",
        help="solver backend for the regularized subproblems: "
        "'sequential' solves each slot as one coupled program (the "
        "reference), 'batched' splits it into SLA components solved by "
        "closed forms and batched block-diagonal Newton (same "
        "decisions, faster; see docs/SOLVER_BACKENDS.md)",
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persistent solver-state cache directory: repeated runs "
        "replay byte-identical per-slot solves instead of re-running "
        "Newton (see docs/CACHING.md and the 'cache' subcommand)",
    )
    parser.add_argument(
        "--cache-max",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest cache entries beyond N solve blobs "
        "(default: unbounded)",
    )


def _add_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="enable the observability layer for this run and write "
        "Prometheus-format metrics to PATH (plus a JSONL span trace "
        "to PATH.trace.jsonl); see docs/OBSERVABILITY.md",
    )


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="enable the metrics registry and stream delta-encoded "
        "snapshots of it into a per-process sink under DIR; follow "
        "live with 'repro telemetry watch DIR' "
        "(see docs/OBSERVABILITY.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures, or serve "
        "a workload trace through the streaming runtime.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument(
        "--workload",
        choices=["wikipedia", "worldcup"],
        default="wikipedia",
        help="workload regime for the figure experiments",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="paper scale (18x48 clouds, 500/600 h) instead of reduced",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="render the experiment's series as terminal charts",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print per-step solver statistics (wall time, Newton "
        "iterations, warm-start hit rate) for each algorithm run",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run sweep points on N worker processes (results and "
        "--stats output are identical to a serial run)",
    )
    _add_backend_flag(run)
    _add_metrics_flag(run)
    _add_telemetry_flag(run)
    _add_cache_flag(run)

    serve = sub.add_parser(
        "serve",
        help="stream a workload trace through the fault-tolerant runtime",
    )
    serve.add_argument(
        "--trace", required=True, help="hourly demand trace (CSV)"
    )
    serve.add_argument(
        "--column", type=int, default=-1, help="CSV column holding the counts"
    )
    serve.add_argument(
        "--horizon", type=int, default=None, metavar="T",
        help="serve at most the first T slots of the trace",
    )
    serve.add_argument("--k", type=int, default=2, help="SLA edges per tier-1 cloud")
    serve.add_argument(
        "--n-tier2", type=int, default=6, help="tier-2 clouds (<= 18)"
    )
    serve.add_argument(
        "--n-tier1", type=int, default=12, help="tier-1 clouds (<= 48)"
    )
    serve.add_argument(
        "--epsilon", type=float, default=1e-2, help="regularization epsilon"
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-slot solve budget in milliseconds",
    )
    serve.add_argument(
        "--enforce", choices=["thread", "cooperative"], default="thread",
        help="deadline enforcement: abandon over-budget solves (thread) "
        "or record misses only (cooperative)",
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file; with --resume, continue a killed run from it",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="write the checkpoint every N slots (default 1)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists",
    )
    serve.add_argument(
        "--events", default=None, metavar="PATH",
        help="write the JSONL event log here (see 'repro replay')",
    )
    serve.add_argument(
        "--record-feed", default=None, metavar="PATH",
        help="also record the slot stream as a replayable JSONL feed",
    )
    serve.add_argument(
        "--inject-stall", type=float, default=0.0, metavar="P",
        help="inject solver stalls with per-slot probability P",
    )
    serve.add_argument(
        "--inject-fail", type=float, default=0.0, metavar="P",
        help="inject solver failures with per-slot probability P",
    )
    serve.add_argument(
        "--inject-seed", type=int, default=0, help="fault-injection seed"
    )
    serve.add_argument(
        "--watch", action="store_true",
        help="repaint a live top-style console view (per-phase latency, "
        "ops counters, health gauges) after every slot",
    )
    serve.add_argument(
        "--alert", action="append", default=None, metavar="RULE",
        help="health alert rule 'metric>threshold[:slots]', e.g. "
        "'competitive_ratio>1.5:3'; fires an 'alert' event into the "
        "event log (may be given multiple times)",
    )
    serve.add_argument(
        "--slo-target", type=float, default=0.1, metavar="FRAC",
        help="allowed deadline-miss fraction; the health burn-rate "
        "gauge is the windowed miss rate divided by this (default 0.1)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the tier-1 clouds across N worker processes; "
        "merged decisions and metrics are byte-identical to --shards 1 "
        "(see docs/SERVING.md)",
    )
    serve.add_argument(
        "--partition", choices=["round-robin", "load-balanced", "affinity"],
        default="round-robin",
        help="shard partitioning policy: deal SLA components cyclically "
        "(round-robin), balance by historical demand (load-balanced), or "
        "keep neighbouring regions together (affinity)",
    )
    serve.add_argument(
        "--kill-shard", action="append", default=None, metavar="K:T",
        help="fault injection: hard-kill shard K after it serves slot T "
        "(may be given multiple times); the coordinator restarts it from "
        "its checkpoint and the merged output is unchanged",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=60.0, metavar="S",
        help="restart a shard whose messages stall for S seconds "
        "(default 60)",
    )
    serve.add_argument(
        "--decisions", default=None, metavar="PATH",
        help="write the merged per-slot decisions as one .npy stack "
        "(byte-comparable across --shards values; CI's parity check)",
    )
    _add_backend_flag(serve)
    _add_metrics_flag(serve)
    _add_telemetry_flag(serve)
    _add_cache_flag(serve)

    replay = sub.add_parser(
        "replay", help="render a recorded serve event log"
    )
    replay.add_argument("events", help="JSONL event log written by 'repro serve'")
    _add_metrics_flag(replay)
    _add_cache_flag(replay)

    telem = sub.add_parser(
        "telemetry",
        help="watch or merge a telemetry directory written with --telemetry",
    )
    telem.add_argument(
        "action", choices=["watch", "merge"],
        help="'watch' repaints a live merged view; 'merge' aggregates "
        "every sink once and renders/exports the combined registry",
    )
    telem.add_argument("dir", help="telemetry directory (the --telemetry DIR)")
    telem.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="watch refresh interval in seconds (default 1.0)",
    )
    telem.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop the watch after N repaints (default: until Ctrl-C)",
    )
    telem.add_argument(
        "--out", default=None, metavar="PATH",
        help="merge only: also write the merged registry as "
        "Prometheus text to PATH",
    )

    scenario = sub.add_parser(
        "scenario",
        help="list, describe or run the named workload scenarios "
        "(deterministic continent-scale corpus; see docs/SCENARIOS.md)",
    )
    scenario.add_argument(
        "action", choices=["list", "describe", "run"],
        help="'list' the registry, 'describe' one scenario (details, "
        "shapes, golden fingerprints), or 'run' it through evaluation "
        "or the serve runtime",
    )
    scenario.add_argument(
        "name", nargs="?", default=None,
        help="scenario name (required for describe/run; see 'list')",
    )
    scenario.add_argument(
        "--size", choices=["smoke", "full"], default="smoke",
        help="size point: 'smoke' (tiny, seconds) or 'full' "
        "(continent scale, hundreds of edge clouds)",
    )
    scenario.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's default seed (golden fingerprints "
        "are pinned at the default)",
    )
    scenario.add_argument(
        "--mode", choices=["eval", "serve"], default="eval",
        help="'eval' scores the algorithm suite on the scenario; "
        "'serve' streams it through the serve runtime",
    )
    scenario.add_argument(
        "--horizon", type=int, default=None, metavar="T",
        help="run only the first T slots of the built scenario",
    )
    scenario.add_argument(
        "--epsilon", type=float, default=1e-2, help="regularization epsilon"
    )
    scenario.add_argument(
        "--offline", action="store_true",
        help="eval mode: include the offline optimum even at full size "
        "(slow; smoke size includes it by default)",
    )
    scenario.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="serve mode: partition across N worker processes "
        "(merged decisions byte-identical to --shards 1)",
    )
    scenario.add_argument(
        "--partition", choices=["round-robin", "load-balanced", "affinity"],
        default="round-robin", help="serve mode: shard partitioning policy",
    )
    scenario.add_argument(
        "--decisions", default=None, metavar="PATH",
        help="serve mode: write per-slot decisions as one .npy stack "
        "(byte-comparable across --shards values)",
    )
    _add_backend_flag(scenario)
    _add_metrics_flag(scenario)
    _add_telemetry_flag(scenario)
    _add_cache_flag(scenario)

    cache = sub.add_parser(
        "cache", help="inspect or clear a solver-state cache directory"
    )
    cache.add_argument(
        "action", choices=["stats", "clear"], help="what to do with the cache"
    )
    cache.add_argument("dir", help="cache directory (the --cache DIR of a run)")

    shard = sub.add_parser(
        "shard", help="inspect a sharded serve run's telemetry"
    )
    shard.add_argument(
        "action", choices=["status"],
        help="'status' renders per-shard liveness/progress from the "
        "shared telemetry directory",
    )
    shard.add_argument(
        "dir", help="telemetry directory the sharded serve streams into"
    )
    return parser


def _cmd_scenario(args) -> int:
    """``repro scenario list|describe|run [NAME]``."""
    from repro import scenarios

    if args.action == "list":
        rows = [
            (s.name, f"{s.tiers}-tier", "yes" if s.serveable else "no", s.summary)
            for s in scenarios.all_scenarios()
        ]
        from repro.evaluation.reporting import format_table

        print(format_table(["scenario", "model", "serveable", "summary"], rows))
        return 0

    if args.name is None:
        print(f"scenario {args.action} requires a NAME; try 'scenario list'",
              file=sys.stderr)
        return 2
    try:
        scenario = scenarios.get_scenario(args.name)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.action == "describe":
        built = scenario.build(args.size, args.seed)
        print(f"{scenario.name}: {scenario.summary}")
        print()
        print(scenario.details)
        print()
        print(f"model:       {scenario.tiers}-tier"
              + ("" if scenario.serveable else " (evaluation-only)"))
        print(f"size:        {built.size} ({built.describe_shape()})")
        print(f"seed:        {built.seed}"
              + (" (default)" if args.seed is None else ""))
        for note in built.notes:
            print(f"note:        {note}")
        print(f"fingerprint: {built.fingerprint()}")
        return 0

    # run
    built = scenario.build(args.size, args.seed)
    print(f"{built.name} [{built.size}, seed {built.seed}]: "
          f"{built.describe_shape()}")
    print(f"fingerprint: {built.fingerprint()}")
    if args.mode == "eval":
        rows = scenarios.evaluate(
            built,
            backend=args.backend,
            epsilon=args.epsilon,
            include_offline=True if args.offline else None,
        )
        print(scenarios.render_evaluation(rows))
        return 0

    # serve mode
    if not scenario.serveable:
        print(f"scenario {scenario.name!r} is evaluation-only "
              "(N-tier model); use --mode eval", file=sys.stderr)
        return 2
    from repro.core import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.serve import InstanceSource, ServeConfig, ServeLoop

    instance = built.instance
    if args.horizon is not None:
        if not (1 <= args.horizon <= instance.horizon):
            print(f"--horizon must be in [1, {instance.horizon}]",
                  file=sys.stderr)
            return 2
        instance = instance.slice(0, args.horizon)
    source = InstanceSource(instance)
    controller = RegularizedOnline(
        SubproblemConfig(epsilon=args.epsilon, backend=args.backend)
    )
    try:
        if args.shards > 1:
            from repro.shard import ShardedServeConfig, ShardedServeLoop

            config = ShardedServeConfig(
                n_shards=args.shards,
                partition=args.partition,
                telemetry_dir=args.telemetry,
            )
            report = ShardedServeLoop(controller, source, config).run()
        else:
            report = ServeLoop(controller, source, ServeConfig()).run()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.describe())
    if args.decisions and report.trajectory is not None:
        _write_decisions(args.decisions, report.trajectory)
        print(f"decisions: {args.decisions}")
    return 0 if report.summary["unserved"] == 0 and report.error is None else 1


def _cmd_cache(args) -> int:
    """``repro cache stats|clear DIR``."""
    from repro.cache import SolverStateStore

    root = Path(args.dir)
    if not root.is_dir():
        print(f"no cache directory at {root}", file=sys.stderr)
        return 1
    store = SolverStateStore(root)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached blobs from {root}")
        return 0
    stats = store.stats()
    entries = stats["entries"]
    print(f"cache {stats['root']}")
    print(
        f"  solve blobs: {entries['solve']}  session blobs: {entries['state']}"
        f"  ({stats['bytes'] / 1024:.1f} KiB)"
    )
    cap = stats["max_entries"]
    print(f"  max entries: {'unbounded' if cap is None else cap}")
    return 0


def _parse_kill_shard(specs: "list[str] | None") -> "dict[int, int]":
    """Parse repeated ``--kill-shard K:T`` flags into ``{K: T}``."""
    kills: "dict[int, int]" = {}
    for spec in specs or []:
        try:
            k_str, t_str = spec.split(":", 1)
            kills[int(k_str)] = int(t_str)
        except ValueError:
            raise ValueError(
                f"--kill-shard expects SHARD:SLOT (e.g. '1:4'), got {spec!r}"
            ) from None
    return kills


def _write_decisions(path: str, trajectory) -> None:
    """Dump merged decisions as one deterministic ``.npy`` stack.

    ``np.save`` of a plain float array is a pure function of the data,
    so two runs that made the same decisions write byte-identical
    files — the CI shard-smoke job compares them with ``cmp``.
    """
    import numpy as np

    stack = np.stack([trajectory.x, trajectory.y, trajectory.s])
    with open(path, "wb") as fh:
        np.save(fh, stack)


def _cmd_serve(args) -> int:
    """Run the streaming serve loop over an hourly-CSV trace."""
    from repro.core import RegularizedOnline
    from repro.core.subproblem import SubproblemConfig
    from repro.obs import metrics as obs_metrics
    from repro.obs.health import HealthMonitor
    from repro.serve import (
        EventLog,
        FaultInjector,
        ServeConfig,
        ServeLoop,
        TraceCSVSource,
        write_feed,
    )

    source = TraceCSVSource(
        args.trace,
        column=args.column,
        horizon=args.horizon,
        k=args.k,
        n_tier2=args.n_tier2,
        n_tier1=args.n_tier1,
    )
    controller = RegularizedOnline(
        SubproblemConfig(epsilon=args.epsilon, backend=args.backend)
    )
    injector = None
    if args.inject_stall or args.inject_fail:
        injector = FaultInjector(
            stall_prob=args.inject_stall,
            fail_prob=args.inject_fail,
            seed=args.inject_seed,
        )
    sharded = args.shards > 1
    try:
        kills = _parse_kill_shard(args.kill_shard)
        if sharded:
            from repro.shard import ShardedServeConfig

            config = ShardedServeConfig(
                n_shards=args.shards,
                partition=args.partition,
                deadline_s=(
                    None if args.deadline_ms is None else args.deadline_ms / 1e3
                ),
                enforce=args.enforce,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
                injector=injector,
                telemetry_dir=args.telemetry,
                kill_shard=kills,
                heartbeat_timeout_s=args.heartbeat_timeout,
            )
        else:
            config = ServeConfig(
                deadline_s=(
                    None if args.deadline_ms is None else args.deadline_ms / 1e3
                ),
                enforce=args.enforce,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
                injector=injector,
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.record_feed:
        n = write_feed(args.record_feed, source)
        print(f"recorded {n}-slot feed to {args.record_feed}")
    try:
        health = HealthMonitor(
            source.network,
            rules=args.alert or [],
            slo_target=args.slo_target,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    on_slot = None
    if args.watch:
        from repro.obs.telemetry import CLEAR_SCREEN, render_watch

        clear = sys.stdout.isatty()

        def on_slot(loop, outcome) -> None:
            reg = obs_metrics.active()
            if reg is None:
                return
            t = loop.t if sharded else loop.session.t
            frame = render_watch(reg.snapshot(), title=f"serve slot {t}")
            sys.stdout.write((CLEAR_SCREEN if clear else "") + frame + "\n")
            sys.stdout.flush()

    with EventLog(args.events) as log:
        try:
            if sharded:
                report = _run_sharded_serve(
                    args, controller, source, config, log, health, on_slot
                )
            else:
                report = _run_single_serve(
                    args, controller, source, config, log, health, on_slot
                )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    print(report.describe())
    for alert in health.alerts:
        print(
            f"ALERT t={alert['t']}: {alert['rule']} "
            f"(value {alert['value']:.4g})"
        )
    if args.decisions and report.trajectory is not None:
        _write_decisions(args.decisions, report.trajectory)
        print(f"decisions: {args.decisions}")
    if args.events:
        print(f"event log: {args.events}")
    return 0 if report.summary["unserved"] == 0 and report.error is None else 1


def _run_single_serve(args, controller, source, config, log, health, on_slot):
    from repro.serve import ServeLoop

    if args.resume and args.checkpoint and Path(args.checkpoint).exists():
        loop = ServeLoop.resume(
            controller, source, args.checkpoint, config=config,
            event_log=log, health=health, on_slot=on_slot,
        )
        print(f"resumed from {args.checkpoint} at slot {loop.session.t}")
    else:
        loop = ServeLoop(
            controller, source, config=config, event_log=log,
            health=health, on_slot=on_slot,
        )
    return loop.run()


def _run_sharded_serve(args, controller, source, config, log, health, on_slot):
    from repro.shard import ShardedServeLoop

    if args.resume and args.checkpoint and Path(args.checkpoint).exists():
        loop = ShardedServeLoop.resume(
            controller, source, args.checkpoint, config=config,
            event_log=log, health=health, on_slot=on_slot,
        )
        print(
            f"resumed sharded run from {args.checkpoint} at slot {loop.t} "
            f"({loop.plan.n_shards} shards, {loop.plan.policy})"
        )
    else:
        loop = ShardedServeLoop(
            controller, source, config=config, event_log=log,
            health=health, on_slot=on_slot,
        )
        print(
            f"sharded serve: {loop.plan.n_shards} shards ({loop.plan.policy}); "
            "assignments "
            + "; ".join(
                f"{k}:{list(a)}" for k, a in enumerate(loop.plan.assignments)
            )
        )
    return loop.run()


def _cmd_telemetry(args) -> int:
    """``repro telemetry watch|merge DIR``."""
    from repro.obs import telemetry as obs_telemetry

    if args.action == "watch":
        obs_telemetry.watch(
            args.dir,
            interval_s=args.interval,
            iterations=args.iterations,
            clear=sys.stdout.isatty(),
        )
        return 0
    from repro.evaluation.reporting import render_metrics

    aggregator = obs_telemetry.TelemetryAggregator(args.dir)
    records = aggregator.poll()
    snapshot = aggregator.merged_snapshot()
    if not snapshot["metrics"]:
        print(f"no telemetry found under {args.dir}", file=sys.stderr)
        return 1
    print(
        f"merged {records} records from {len(aggregator.sink_ids())} "
        f"sinks under {args.dir}"
    )
    print(render_metrics(snapshot))
    if args.out:
        from repro.obs.export import write_prometheus

        write_prometheus(snapshot, args.out)
        print(f"merged metrics: {args.out}")
    return 0


def _cmd_replay(args) -> int:
    """Render a recorded serve event log."""
    from repro.evaluation.reporting import render_serve_events
    from repro.serve import read_events
    from repro.serve.events import publish_event

    events = read_events(args.events)
    if not events:
        print(f"no events found in {args.events}", file=sys.stderr)
        return 1
    # Re-aggregate the recorded events into the metrics registry (a
    # no-op unless --metrics enabled it), so a replayed log exports the
    # same serve_* counters the live run would have.
    for event in events:
        publish_event(event)
    print(render_serve_events(events))
    return 0


def _cmd_shard(args) -> int:
    """``repro shard status DIR``."""
    from repro.shard import render_shard_status

    if not Path(args.dir).is_dir():
        print(f"no telemetry directory at {args.dir}", file=sys.stderr)
        return 1
    print(render_shard_status(args.dir))
    return 0


def _dispatch(args, parser: argparse.ArgumentParser) -> int:
    """Route a parsed command line to its command handler."""
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "shard":
        return _cmd_shard(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "list":
        scale = ExperimentScale.from_env()
        for name in _registry(scale):
            print(name)
        return 0

    scale = (
        ExperimentScale(None, None, 500, 600, True)
        if getattr(args, "full", False)
        else ExperimentScale.from_env()
    )
    registry = _registry(
        scale,
        jobs=getattr(args, "jobs", None),
        backend=getattr(args, "backend", "sequential"),
    )
    if args.experiment == "all":
        names = list(registry)
    elif args.experiment in registry:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    want_stats = getattr(args, "stats", False)
    if want_stats:
        from repro.evaluation.runner import stats_collector

        stats_collector.enable()
    for name in names:
        start = time.perf_counter()
        result = registry[name](args)
        print(result.render())
        if want_stats:
            from repro.evaluation.reporting import render_run_stats
            from repro.evaluation.runner import stats_collector

            records = stats_collector.clear()
            if records:
                print()
                print(f"-- engine stats: {name} --")
                print(render_run_stats(records))
        if getattr(args, "plot", False) and result.series:
            from repro.evaluation.ascii_chart import line_chart

            # Chart at most four series to keep the terminal readable.
            subset = dict(list(result.series.items())[:4])
            print()
            print(line_chart(subset))
        print(f"[{name}: {time.perf_counter() - start:.1f}s]")
        print()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    When the command carries ``--metrics PATH``, the observability
    layer is enabled around the dispatch: metrics land in PATH in
    Prometheus text format, spans in ``PATH.trace.jsonl``, and a
    human-readable summary is printed after the command's own output.

    ``--cache DIR`` activates the persistent solver-state cache around
    the dispatch (see :mod:`repro.cache`); a one-line op summary is
    printed when the command used it.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = getattr(args, "cache", None)
    if cache_dir is not None:
        from repro.cache import runtime as cache_runtime

        store = cache_runtime.activate(
            cache_dir, max_entries=getattr(args, "cache_max", None)
        )
        try:
            code = _main_with_metrics(args, parser)
        finally:
            cache_runtime.deactivate()
        print(f"cache {store.root}: {store.counters.describe()}")
        return code
    return _main_with_metrics(args, parser)


def _main_with_metrics(args, parser: argparse.ArgumentParser) -> int:
    """Dispatch with the observability layer wrapped around it.

    The registry is enabled when any of ``--metrics``, ``--telemetry``
    or serve's ``--watch`` needs it; ``--telemetry DIR`` additionally
    attaches an ambient sink under DIR that the engine/serve loops
    flush at their own cadence (final state flushed on detach).
    """
    metrics_path = getattr(args, "metrics", None)
    telemetry_dir = getattr(args, "telemetry", None)
    watch = getattr(args, "watch", False)
    if metrics_path is None and telemetry_dir is None and not watch:
        return _dispatch(args, parser)

    from repro.evaluation.reporting import render_metrics
    from repro.obs import metrics as obs_metrics
    from repro.obs import telemetry as obs_telemetry
    from repro.obs import tracing as obs_tracing
    from repro.obs.export import write_prometheus

    obs_metrics.enable()
    if metrics_path is not None:
        obs_tracing.enable(path=f"{metrics_path}.trace.jsonl")
    if telemetry_dir is not None:
        obs_telemetry.attach(telemetry_dir)
    try:
        code = _dispatch(args, parser)
    finally:
        snapshot = obs_metrics.active().snapshot()
        if telemetry_dir is not None:
            obs_telemetry.detach()
        obs_tracing.disable()
        obs_metrics.disable()
        if metrics_path is not None:
            write_prometheus(snapshot, metrics_path)
    if metrics_path is not None:
        print()
        print(render_metrics(snapshot))
        print(f"metrics: {metrics_path}")
        print(f"trace:   {metrics_path}.trace.jsonl")
    if telemetry_dir is not None:
        print(f"telemetry: {telemetry_dir}")
    return code
