"""The paper's primary contribution: regularization-based online algorithms.

* :mod:`repro.core.subproblem` — the per-slot regularized convex
  subproblem P2(t) (Section III-B);
* :mod:`repro.core.online` — the prediction-free online algorithm that
  chains the subproblems (Theorem 1);
* :mod:`repro.core.single` — the single-resource special case with its
  closed-form exponential-decay recursion (Section III-C) and the
  adversarial constructions of Lemma 2 / Theorems 2-3;
* :mod:`repro.core.competitive` — competitive-ratio formulas
  (Theorem 1 and the N-tier generalization).
"""

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.core.online import RegularizedOnline
from repro.core.single import (
    SingleResourceProblem,
    single_greedy,
    single_offline_optimal,
    single_online_decay,
    single_fhc,
    single_rhc,
    vee_workload,
)
from repro.core.competitive import (
    capacity_term,
    empirical_ratio,
    theorem1_ratio,
    theorem1_ratio_normalized,
)

__all__ = [
    "RegularizedSubproblem",
    "SubproblemConfig",
    "RegularizedOnline",
    "SingleResourceProblem",
    "single_online_decay",
    "single_greedy",
    "single_offline_optimal",
    "single_fhc",
    "single_rhc",
    "vee_workload",
    "capacity_term",
    "theorem1_ratio",
    "theorem1_ratio_normalized",
    "empirical_ratio",
]


def __getattr__(name: str):
    if name == "OnlineConfig":
        # Deprecated alias removed after its one-release grace period.
        raise AttributeError(
            "OnlineConfig was removed; use SubproblemConfig "
            "(from repro.core import SubproblemConfig)"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
