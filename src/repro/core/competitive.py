"""Competitive-ratio formulas (Theorem 1 and the N-tier generalization).

Theorem 1: the regularized online algorithm is ``r``-competitive with

.. math::

    r = 1 + |I| \\, (C(\\varepsilon) + B(\\varepsilon')), \\qquad
    C(\\varepsilon) = \\max_i (C_i + \\varepsilon)\\ln(1 + C_i/\\varepsilon), \\\\
    B(\\varepsilon') = \\max_{(i,j)} (B_{ij} + \\varepsilon')
        \\ln(1 + B_{ij}/\\varepsilon').

The bound decreases as epsilon grows and scales with the capacities;
per the paper's Remarks, inputs can always be normalized (divide
workloads and capacities by the largest capacity) before applying the
formula, which is what :func:`theorem1_ratio_normalized` does.
"""

from __future__ import annotations

import numpy as np

from repro.model.network import CloudNetwork


def capacity_term(capacities: np.ndarray, epsilon: float) -> float:
    """``max_k (cap_k + eps) * ln(1 + cap_k/eps)`` over an array of capacities."""
    if not (epsilon > 0):
        raise ValueError("epsilon must be > 0")
    caps = np.atleast_1d(np.asarray(capacities, dtype=float))
    if caps.size == 0:
        return 0.0
    return float(np.max((caps + epsilon) * np.log1p(caps / epsilon)))


def theorem1_ratio(
    network: CloudNetwork,
    epsilon: float,
    epsilon_prime: "float | None" = None,
) -> float:
    """The worst-case competitive ratio of Theorem 1 for a network."""
    eps2 = epsilon if epsilon_prime is None else epsilon_prime
    C_eps = capacity_term(network.tier2_capacity, epsilon)
    B_eps = capacity_term(network.edge_capacity, eps2)
    return 1.0 + network.n_tier2 * (C_eps + B_eps)


def theorem1_ratio_normalized(
    network: CloudNetwork,
    epsilon: float,
    epsilon_prime: "float | None" = None,
) -> float:
    """Theorem 1 after normalizing all capacities by the largest one.

    The paper's Remarks: the problem can always be rescaled so that
    capacities (and hence workloads) lie in ``[0, 1]``, giving a much
    smaller ratio; decisions translate back by the same scale.  The
    epsilon arguments are interpreted in normalized units.
    """
    scale = float(
        max(network.tier2_capacity.max(), network.edge_capacity.max())
    )
    eps2 = epsilon if epsilon_prime is None else epsilon_prime
    C_eps = capacity_term(network.tier2_capacity / scale, epsilon)
    B_eps = capacity_term(network.edge_capacity / scale, eps2)
    return 1.0 + network.n_tier2 * (C_eps + B_eps)


def ntier_ratio(
    tier_capacities: "list[np.ndarray]",
    link_capacities: "list[np.ndarray]",
    epsilon: float,
    epsilon_prime: "float | None" = None,
) -> float:
    """Reconstructed N-tier generalization of Theorem 1 (Section III-E).

    The paper's supplementary file (unavailable) states the N-tier
    ratio; we reconstruct the natural extension of the Step-4 argument:
    every regularized node tier ``n >= 2`` contributes a
    ``C^(n)(eps)`` term and every inter-tier link stage a
    ``B^(n)(eps')`` term, each multiplied by the maximum number of
    clouds in any single tier (the union bound over dual variables).
    For ``N = 2`` this reduces exactly to Theorem 1.

    Parameters
    ----------
    tier_capacities:
        One capacity array per *regularized node tier* (tiers 2..N in
        the paper's numbering).
    link_capacities:
        One capacity array per inter-tier link stage (stage n connects
        tier n and n+1).
    """
    eps2 = epsilon if epsilon_prime is None else epsilon_prime
    if not tier_capacities and not link_capacities:
        return 1.0
    widths = [np.atleast_1d(c).size for c in tier_capacities]
    m = max(widths) if widths else 1
    total = sum(capacity_term(c, epsilon) for c in tier_capacities)
    total += sum(capacity_term(c, eps2) for c in link_capacities)
    return 1.0 + m * total


def empirical_ratio(algorithm_cost: float, offline_cost: float) -> float:
    """The 'actual' competitive ratio reported in Fig. 6.

    Ratio of the algorithm's realized total cost to the offline
    optimum.  Zero offline cost (a trivial instance) yields 1.0 when
    the algorithm's cost is also ~0, else ``inf``.
    """
    if offline_cost <= 0:
        return 1.0 if algorithm_cost <= 1e-12 else float("inf")
    return float(algorithm_cost / offline_cost)
