"""The prediction-free regularized online algorithm (Section III).

At every slot ``t`` the algorithm solves the regularized subproblem
P2(t), anchored at the *previous subproblem's* optimal decision, and
applies the result.  Lemma 1 guarantees every per-slot decision is
feasible for P1 at ``t``; Theorem 1 bounds the chained cost by
``r = 1 + |I| (C(eps) + B(eps'))`` times the offline optimum.

Behaviour in one sentence: when the workload rises the algorithm
follows it exactly, and when the workload falls it releases resources
along a controlled exponential-decay curve so that a future rise does
not pay full reconfiguration cost again.
"""

from __future__ import annotations

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance

# Re-export under the algorithm-facing name.
OnlineConfig = SubproblemConfig


class RegularizedOnline:
    """Online algorithm: chain P2(1), P2(2), ... (no prediction).

    Parameters
    ----------
    config:
        Subproblem parameters (epsilon, capacity caps, hedging, solver
        backend).  Defaults match the paper's evaluation
        (``epsilon = epsilon' = 1e-2``).

    Example
    -------
    ``RegularizedOnline(OnlineConfig(epsilon=1e-2)).run(instance)``
    returns a feasible :class:`~repro.model.allocation.Trajectory`.
    """

    name = "regularized-online"

    def __init__(self, config: "OnlineConfig | None" = None) -> None:
        self.config = config or OnlineConfig()

    # ------------------------------------------------------------------
    def step(
        self,
        subproblem: RegularizedSubproblem,
        instance: Instance,
        t: int,
        previous: Allocation,
    ) -> Allocation:
        """Solve P2(t) for slot ``t`` of ``instance`` given the previous decision.

        One-slot convenience API; the run loop and the RFHC/RRHC chain
        use the warm-started ``solve_reduced`` path directly.
        """
        return subproblem.solve(
            workload=instance.workload[t],
            tier2_price=instance.tier2_price[t],
            link_price=instance.link_price[t],
            previous=previous,
        )

    def make_subproblem(self, instance: Instance) -> RegularizedSubproblem:
        """Build the reusable subproblem structure for an instance's network."""
        return RegularizedSubproblem(instance.network, self.config)

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run the online loop over the whole horizon.

        Parameters
        ----------
        instance:
            Problem inputs; only slot-``t`` data is used at step ``t``
            (the algorithm is genuinely online).
        initial:
            Decision at slot ``-1``; defaults to all-zero as in the
            paper (``x_0 = y_0 = 0``).
        """
        sub = self.make_subproblem(instance)
        prev = initial or Allocation.zeros(instance.network.n_edges)
        steps: list[Allocation] = []
        warm = None
        for t in range(instance.horizon):
            prev, warm = sub.solve_reduced(
                workload=instance.workload[t],
                tier2_price=instance.tier2_price[t],
                link_price=instance.link_price[t],
                previous=prev,
                warm=warm,
            )
            steps.append(prev)
        return Trajectory.from_steps(steps)
