"""The prediction-free regularized online algorithm (Section III).

At every slot ``t`` the algorithm solves the regularized subproblem
P2(t), anchored at the *previous subproblem's* optimal decision, and
applies the result.  Lemma 1 guarantees every per-slot decision is
feasible for P1 at ``t``; Theorem 1 bounds the chained cost by
``r = 1 + |I| (C(eps) + B(eps'))`` times the offline optimum.

Behaviour in one sentence: when the workload rises the algorithm
follows it exactly, and when the workload falls it releases resources
along a controlled exponential-decay curve so that a future rise does
not pay full reconfiguration cost again.

The algorithm is a :class:`~repro.engine.session.Controller`: the
per-slot loop, warm-start threading and statistics live in the shared
:class:`~repro.engine.session.SolveSession` engine.  Because it needs
no foresight, its state builds from a bare network and it can be
driven slot-at-a-time from live data::

    session = SolveSession(RegularizedOnline(config), network)
    decision = session.step(SlotData(workload, tier2_price, link_price))

The config type is
:class:`~repro.core.subproblem.SubproblemConfig` (re-exported by
:mod:`repro.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.subproblem import RegularizedSubproblem, SubproblemConfig
from repro.engine.session import SlotData, SolveSession, source_network
from repro.engine.stats import StatsProbe
from repro.model.allocation import Allocation, Trajectory
from repro.model.instance import Instance


def __getattr__(name: str):
    if name == "OnlineConfig":
        # Deprecated alias removed after its one-release grace period.
        raise AttributeError(
            "OnlineConfig was removed; use SubproblemConfig "
            "(from repro.core.subproblem import SubproblemConfig)"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class OnlineState:
    """Carried state of the prediction-free controller.

    ``prev`` anchors the next slot's regularizers; ``warm`` is the
    previous reduced solution vector (seeds the barrier path).
    """

    subproblem: RegularizedSubproblem
    prev: Allocation
    warm: "np.ndarray | None" = None
    probe: StatsProbe = field(default_factory=StatsProbe)


class RegularizedOnline:
    """Online algorithm: chain P2(1), P2(2), ... (no prediction).

    Parameters
    ----------
    config:
        Subproblem parameters (epsilon, capacity caps, hedging, solver
        backend).  Defaults match the paper's evaluation
        (``epsilon = epsilon' = 1e-2``).

    Example
    -------
    ``RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(instance)``
    returns a feasible :class:`~repro.model.allocation.Trajectory`.
    """

    name = "regularized-online"

    def __init__(self, config: "SubproblemConfig | None" = None) -> None:
        self.config = config or SubproblemConfig()

    # ------------------------------------------------------------------
    # Controller protocol
    # ------------------------------------------------------------------
    def make_state(self, source, initial: "Allocation | None" = None) -> OnlineState:
        """Build the carried state from an instance or bare network."""
        net = source_network(source)
        return OnlineState(
            subproblem=RegularizedSubproblem(net, self.config),
            prev=initial or Allocation.zeros(net.n_edges),
        )

    def decide(self, state: OnlineState, t: int, slot: SlotData) -> Allocation:
        """Solve P2(t) for the streamed slot and advance the state."""
        alloc, state.warm = state.subproblem.solve_reduced(
            workload=slot.workload,
            tier2_price=slot.tier2_price,
            link_price=slot.link_price,
            previous=state.prev,
            warm=state.warm,
            probe=state.probe,
        )
        state.prev = alloc
        return alloc

    def observe(
        self, state: OnlineState, t: int, slot: SlotData, decision: Allocation
    ) -> None:
        """An externally-imposed decision (serve fallback) was applied.

        The next subproblem anchors its regularizers at what actually
        ran, and the warm-start vector is dropped — it was the reduced
        optimum of a decision that never took effect.
        """
        state.prev = decision
        state.warm = None

    # ------------------------------------------------------------------
    # Checkpoint hooks (serve runtime)
    # ------------------------------------------------------------------
    def export_state(self, state: OnlineState) -> dict:
        """Flat array snapshot of the carried state.

        The subproblem's compiled structures are *not* serialized —
        they are deterministic functions of the network and config, so
        :meth:`restore_state` rebuilds them and the resumed run's
        solves are bitwise-identical to the uninterrupted run's.
        """
        return {
            "prev_x": state.prev.x.copy(),
            "prev_y": state.prev.y.copy(),
            "prev_s": state.prev.s.copy(),
            "warm": None if state.warm is None else state.warm.copy(),
            "backend": self.config.backend,
        }

    def restore_state(self, source, snapshot: dict) -> OnlineState:
        """Inverse of :meth:`export_state` (fresh subproblem structure).

        When the snapshot records a solver backend (it always does for
        checkpoints written by this version) the restored subproblem
        uses it, overriding the config's — so resuming a checkpoint
        continues bitwise-identically on the backend that wrote it even
        if the resuming process was launched with a different default.
        """
        net = source_network(source)
        warm = snapshot.get("warm")
        config = self.config
        recorded = snapshot.get("backend")
        if recorded is not None and str(recorded) != config.backend:
            config = replace(config, backend=str(recorded))
        return OnlineState(
            subproblem=RegularizedSubproblem(net, config),
            prev=Allocation(
                snapshot["prev_x"], snapshot["prev_y"], snapshot["prev_s"]
            ),
            warm=None if warm is None else np.asarray(warm, dtype=float),
        )

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def step(
        self,
        subproblem: RegularizedSubproblem,
        instance: Instance,
        t: int,
        previous: Allocation,
    ) -> Allocation:
        """Solve P2(t) for slot ``t`` of ``instance`` given the previous decision.

        One-slot convenience API; the engine-driven loop uses the
        warm-started ``solve_reduced`` path through :meth:`decide`.
        """
        return subproblem.solve(
            workload=instance.workload[t],
            tier2_price=instance.tier2_price[t],
            link_price=instance.link_price[t],
            previous=previous,
        )

    def make_subproblem(self, instance: Instance) -> RegularizedSubproblem:
        """Build the reusable subproblem structure for an instance's network."""
        return RegularizedSubproblem(instance.network, self.config)

    def run(
        self,
        instance: Instance,
        initial: "Allocation | None" = None,
    ) -> Trajectory:
        """Run the online loop over the whole horizon.

        Thin wrapper over the engine: builds a
        :class:`~repro.engine.session.SolveSession` and feeds each
        slot through its streaming ``step``.  The returned trajectory
        carries per-step solver statistics as ``run_stats``.

        Parameters
        ----------
        instance:
            Problem inputs; only slot-``t`` data is used at step ``t``
            (the algorithm is genuinely online).
        initial:
            Decision at slot ``-1``; defaults to all-zero as in the
            paper (``x_0 = y_0 = 0``).
        """
        return SolveSession(self, instance, initial=initial).run()
