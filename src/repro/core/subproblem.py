"""The regularized per-slot subproblem P2(t) (Section III-B).

P2(t) replaces each ``[.]^+`` reconfiguration term of P1 with a
relative-entropy regularizer anchored at the previous slot's decision:

.. math::

    \\min \\; \\sum_i a_{it} X_i + \\sum_e c_{et} y_e
    + \\sum_i \\frac{b_i}{\\eta_i}\\Big((X_i+\\varepsilon)
        \\ln\\frac{X_i+\\varepsilon}{\\hat X_i+\\varepsilon} - X_i\\Big)
    + \\sum_e \\frac{d_e}{\\eta'_e}\\Big((y_e+\\varepsilon')
        \\ln\\frac{y_e+\\varepsilon'}{\\hat y_e+\\varepsilon'} - y_e\\Big)

with :math:`\\eta_i = \\ln(1 + C_i/\\varepsilon)`,
:math:`\\eta'_e = \\ln(1 + B_e/\\varepsilon')`.

**Reduced variable space.** In the paper's formulation the tier-2
variables are per-edge ``x_ij``; however both the objective and every
constraint involve ``x`` only through the per-cloud totals
``X_i = sum_{j in J_i} x_ij`` together with ``x_ij >= s_ij``.  We
therefore solve over ``v = [X (I,), y (E,), s (E,)]`` with the
equivalent constraint ``sum_{j in J_i} s_ij <= X_i``, and split ``X_i``
back onto edges afterwards (``x_ij = s_ij + proportional share of the
slack``).  The split provably affects neither the cost, nor any P1
constraint, nor the next subproblem (whose regularizer sees only
``X_i`` and ``y_e``).

Constraints (all reduced to ``A v <= b`` plus box bounds):

* (3b)  ``y_e >= s_e``;
* (3c)  ``sum_{e in I_j} s_e >= lambda_j``;
* (3a)+(1b) reduced: ``sum_{e in J_i} s_e <= X_i``;
* (3d)  hedging: ``sum_{k != i} X_k >= [sum_j lambda_j - C_i]^+``;
* (3e)  hedging: ``sum_{k in I_j, k != i} y_kj >= [lambda_j - B_e]^+``;
* box:  ``0 <= X_i <= C_i``, ``0 <= y_e <= B_e``, ``s_e >= 0``
  (capacity caps are implied at the optimum by Lemma 1; imposing them
  explicitly keeps every iterate feasible and is the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.cache import fingerprint as cache_fingerprint
from repro.cache import runtime as cache_runtime
from repro.model.allocation import Allocation
from repro.model.network import CloudNetwork
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.solvers import backends as solver_backends
from repro.solvers.convex import (
    EntropicTerm,
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
)


@dataclass
class SubproblemConfig:
    """Parameters of the regularized subproblem.

    Attributes
    ----------
    epsilon:
        The tier-2 regularization parameter ``epsilon > 0``.
    epsilon_prime:
        The link regularization parameter; ``None`` means "same as
        ``epsilon``" (the paper's evaluation always sets them equal).
    capacity_caps:
        Impose ``X_i <= C_i`` and ``y_e <= B_e`` explicitly.
    hedging:
        Include the overflow-covering constraints (3d)/(3e).  These are
        part of the paper's algorithm (they make the dual mapping of
        the competitive proof work and hedge against demand shifts);
        disabling them is exposed for ablation studies.
    solver:
        Options forwarded to the convex solver.
    reuse_structure:
        Cache the compiled convex program (constraint matrix, objective
        arrays, barrier workspace, phase-I point) per constraint
        structure and update only the per-slot data — right-hand side,
        linear costs, regularizer anchors — between slots.  Disable to
        rebuild everything every slot (the measured perf baseline, see
        ``benchmarks/perf/``).
    fused_kernels:
        Use the fused objective kernels
        (:class:`~repro.solvers.convex.SeparableObjective` with
        ``fused=True``); disable for the per-term loop reference.
    backend:
        Name of the solver backend (see
        :mod:`repro.solvers.backends`): ``"sequential"`` (the coupled
        reference solve, default) or ``"batched"`` (component-split
        closed forms + batched block-diagonal Newton).
    """

    epsilon: float = 1e-2
    epsilon_prime: float | None = None
    capacity_caps: bool = True
    hedging: bool = True
    solver: SolverOptions = field(default_factory=SolverOptions)
    reuse_structure: bool = True
    fused_kernels: bool = True
    backend: str = "sequential"

    def __post_init__(self) -> None:
        if not (self.epsilon > 0):
            raise ValueError("epsilon must be > 0")
        if self.epsilon_prime is not None and not (self.epsilon_prime > 0):
            raise ValueError("epsilon_prime must be > 0")
        if self.backend not in solver_backends.available_backends():
            # Same message as get_backend, but at config-construction
            # time (CLI parse, checkpoint restore) instead of mid-run.
            solver_backends.get_backend(self.backend)

    @property
    def eps2(self) -> float:
        """The effective link-side epsilon'."""
        return self.epsilon if self.epsilon_prime is None else self.epsilon_prime


class RegularizedSubproblem:
    """Builds and solves P2(t) for one slot of a two-tier instance.

    The constraint structure depends only on the network, so a single
    instance of this class is reused across slots: per-slot data
    (prices, workload, previous allocation) enter through
    :meth:`solve`.
    """

    def __init__(self, network: CloudNetwork, config: SubproblemConfig) -> None:
        self.network = network
        self.config = config
        n_i, n_e = network.n_tier2, network.n_edges
        self.n_vars = n_i + 2 * n_e
        # Variable layout: [X (I,) | y (E,) | s (E,)].
        self.sl_X = slice(0, n_i)
        self.sl_y = slice(n_i, n_i + n_e)
        self.sl_s = slice(n_i + n_e, n_i + 2 * n_e)

        self.eta_tier2 = np.log1p(network.tier2_capacity / config.epsilon)
        self.eta_link = np.log1p(network.edge_capacity / config.eps2)
        # Regularizer weights b_i/eta_i and d_e/eta'_e.
        self.weight_tier2 = network.tier2_recon_price / self.eta_tier2
        self.weight_link = network.edge_recon_price / self.eta_link

        self._A_static = self._build_static_rows()
        self._bounds = self._build_bounds()
        # Compiled programs keyed by hedging keep-pattern; see build().
        self._slot_cache: dict[tuple[bytes, bytes], SmoothConvexProgram] = {}

        # The solver backend and its compiled per-structure handle;
        # solve_reduced() dispatches every slot through it.
        self.backend = solver_backends.get_backend(config.backend)
        self._backend_handle = self.backend.compile(self)

        # Persistent cross-run solve cache (repro.cache): bound at
        # construction so a subproblem's cache membership is stable for
        # its lifetime.  The structure fingerprint keys every solve of
        # this (network, config) pair; it covers the backend name and
        # all solver flags, so a shared cache directory never serves a
        # blob produced under different semantics.
        self.cache = cache_runtime.active()
        self._structure_fp = (
            None
            if self.cache is None
            else cache_fingerprint.structure_fingerprint(network, config)
        )

    # ------------------------------------------------------------------
    # Constraint assembly
    # ------------------------------------------------------------------
    def _build_static_rows(self) -> dict[str, sp.csr_matrix]:
        """Constraint matrices that do not depend on slot data."""
        net = self.network
        n_i, n_e = net.n_tier2, net.n_edges
        I_E = sp.identity(n_e, format="csr")
        Z_ie = sp.csr_matrix((n_e, n_i))
        Z_ee = sp.csr_matrix((n_e, n_e))

        # (3b) s - y <= 0, rows: E.
        rows_sy = sp.hstack([Z_ie, -I_E, I_E], format="csr")

        # coverage: -sum_{e in I_j} s_e <= -lambda_j, rows: J.
        MJ = net.tier1_incidence
        rows_cov = sp.hstack(
            [sp.csr_matrix((net.n_tier1, n_i)), sp.csr_matrix((net.n_tier1, n_e)), -MJ],
            format="csr",
        )

        # x>=s reduced: sum_{e in J_i} s_e - X_i <= 0, rows: I.
        MI = net.tier2_incidence
        rows_xs = sp.hstack(
            [-sp.identity(n_i, format="csr"), sp.csr_matrix((n_i, n_e)), MI],
            format="csr",
        )

        # (3d): -(sum_k X_k - X_i) <= -[Lambda - C_i]^+, rows: I.
        ones_off_diag = sp.csr_matrix(np.ones((n_i, n_i)) - np.eye(n_i))
        rows_hedge_x = sp.hstack(
            [-ones_off_diag, sp.csr_matrix((n_i, n_e)), sp.csr_matrix((n_i, n_e))],
            format="csr",
        )

        # (3e): -(sum_{k in I_j} y_kj - y_e) <= -[lambda_j - B_e]^+, rows: E.
        # Row e selects edges sharing e's tier-1 endpoint, excluding e.
        MJ_rows = MJ[net.edge_j]  # (E, E): row e has 1s on edges of j(e)
        rows_hedge_y = sp.hstack(
            [Z_ie, -(MJ_rows - I_E), Z_ee], format="csr"
        )

        return {
            "s_le_y": rows_sy,
            "coverage": rows_cov,
            "s_le_X": rows_xs,
            "hedge_x": rows_hedge_x,
            "hedge_y": rows_hedge_y,
        }

    def _build_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        net = self.network
        lb = np.zeros(self.n_vars)
        ub = np.full(self.n_vars, np.inf)
        if self.config.capacity_caps:
            ub[self.sl_X] = net.tier2_capacity
            ub[self.sl_y] = net.edge_capacity
            ub[self.sl_s] = net.edge_capacity  # implied by s <= y <= B
        return lb, ub

    def build(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Allocation,
    ) -> SmoothConvexProgram:
        """Assemble the convex program for one slot.

        Parameters
        ----------
        workload:
            ``(J,)`` — ``lambda_{jt}``.
        tier2_price, link_price:
            ``(I,)`` and ``(E,)`` — the slot's allocation prices.
        previous:
            The previous slot's decision (edge space); its tier-2
            totals anchor the regularizers.

        With ``config.reuse_structure`` (the default) programs are
        cached per hedging keep-pattern — the only thing that changes
        the constraint *structure* across slots — and subsequent slots
        with the same pattern get the **same (mutated) program object**
        with only ``b``, the linear costs, and the entropic anchors
        rewritten.  This keeps the compiled objective arrays, the
        barrier workspace (``A^T``, Hessian buffers, sparse symbolic
        structure) and the cached phase-I interior point alive across
        slots.  Callers must therefore not hold a built program across
        a later ``build()`` call expecting it to stay frozen; set
        ``reuse_structure=False`` for that (perf-baseline) behaviour.
        """
        net = self.network
        cfg = self.config
        n_i, n_e = net.n_tier2, net.n_edges
        workload = np.asarray(workload, dtype=float)

        X_prev = previous.tier2_totals(net)
        y_prev = np.asarray(previous.y, dtype=float)

        rhs_x = rhs_y = None
        keep_x = keep_y = None
        if cfg.hedging:
            total = float(workload.sum())
            rhs_x = np.maximum(total - net.tier2_capacity, 0.0)
            keep_x = rhs_x > 0
            lam_e = workload[net.edge_j]
            rhs_y = np.maximum(lam_e - net.edge_capacity, 0.0)
            keep_y = rhs_y > 0

        if not cfg.reuse_structure:
            return self._assemble(
                workload, tier2_price, link_price, X_prev, y_prev,
                rhs_x, keep_x, rhs_y, keep_y,
            )

        key = (
            keep_x.tobytes() if keep_x is not None else b"",
            keep_y.tobytes() if keep_y is not None else b"",
        )
        prog = self._slot_cache.get(key)
        if prog is None:
            prog = self._assemble(
                workload, tier2_price, link_price, X_prev, y_prev,
                rhs_x, keep_x, rhs_y, keep_y,
            )
            self._slot_cache[key] = prog
            return prog

        # Cache hit: same structure, new slot data — update in place.
        linear = prog.objective.linear
        linear[self.sl_X] = tier2_price
        linear[self.sl_y] = link_price
        prog.objective.set_slot_data(refs=[X_prev, y_prev])
        b = prog.b
        n_j = net.n_tier1
        np.negative(workload, out=b[n_e : n_e + n_j])
        off = n_e + n_j + n_i
        if keep_x is not None and np.any(keep_x):
            kx = int(np.count_nonzero(keep_x))
            np.negative(rhs_x[keep_x], out=b[off : off + kx])
            off += kx
        if keep_y is not None and np.any(keep_y):
            ky = int(np.count_nonzero(keep_y))
            np.negative(rhs_y[keep_y], out=b[off : off + ky])
        return prog

    def _assemble(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        X_prev: np.ndarray,
        y_prev: np.ndarray,
        rhs_x: "np.ndarray | None",
        keep_x: "np.ndarray | None",
        rhs_y: "np.ndarray | None",
        keep_y: "np.ndarray | None",
    ) -> SmoothConvexProgram:
        """Compile a fresh program for one hedging keep-pattern."""
        net = self.network
        cfg = self.config
        n_i, n_e = net.n_tier2, net.n_edges

        linear = np.zeros(self.n_vars)
        linear[self.sl_X] = tier2_price
        linear[self.sl_y] = link_price

        entropic = [
            EntropicTerm(
                indices=np.arange(n_i),
                weight=self.weight_tier2,
                eps=cfg.epsilon,
                ref=X_prev,
            ),
            EntropicTerm(
                indices=np.arange(n_i, n_i + n_e),
                weight=self.weight_link,
                eps=cfg.eps2,
                ref=y_prev,
            ),
        ]
        objective = SeparableObjective(
            self.n_vars, linear, entropic, fused=cfg.fused_kernels
        )

        A_parts = [self._A_static["s_le_y"], self._A_static["coverage"],
                   self._A_static["s_le_X"]]
        b_parts = [np.zeros(n_e), -workload, np.zeros(n_i)]

        if keep_x is not None and np.any(keep_x):
            A_parts.append(self._A_static["hedge_x"][keep_x])
            b_parts.append(-rhs_x[keep_x])
        if keep_y is not None and np.any(keep_y):
            A_parts.append(self._A_static["hedge_y"][keep_y])
            b_parts.append(-rhs_y[keep_y])

        A = sp.vstack(A_parts, format="csr")
        b = np.concatenate(b_parts)
        lb, ub = self._bounds
        return SmoothConvexProgram(objective, A, b, lb, ub)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def _interior_candidate(
        self, prog: SmoothConvexProgram, workload: np.ndarray
    ) -> "np.ndarray | None":
        """Cheap strictly-interior point; None if the heuristic fails.

        Spreads each tier-1 cloud's demand over its SLA edges in
        proportion to link capacity, then places y and X strictly
        between the induced lower requirement and the capacity.
        """
        net = self.network
        lam = np.asarray(workload, dtype=float)
        link_sum = net.aggregate_tier1(net.edge_capacity)  # (J,)
        share = net.edge_capacity / np.maximum(link_sum[net.edge_j], 1e-300)
        floor = 1e-9 * (1.0 + net.edge_capacity)
        s = np.maximum((lam[net.edge_j] * share) * 1.02, floor)
        y = 0.5 * (s + net.edge_capacity)  # strictly between s and B
        S_i = net.aggregate_tier2(s)
        X = 0.5 * (S_i + net.tier2_capacity)  # strictly between
        v = np.empty(self.n_vars)
        v[self.sl_X] = X
        v[self.sl_y] = y
        v[self.sl_s] = s
        # Strict interiority check.
        if prog.A.shape[0]:
            slack = prog.b - prog.A @ v
            if slack.size and float(slack.min()) <= 1e-12:
                return None
        if np.any(v - prog.lb <= 0) or np.any(prog.ub - v <= 0):
            return None
        return v

    # ------------------------------------------------------------------
    def solve(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Allocation,
        warm: "np.ndarray | None" = None,
        probe=None,
    ) -> Allocation:
        """Solve P2(t) and return the slot's decision in edge space."""
        alloc, _ = self.solve_reduced(
            workload, tier2_price, link_price, previous, warm, probe=probe
        )
        return alloc

    def solve_reduced(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Allocation,
        warm: "np.ndarray | None" = None,
        probe=None,
    ) -> "tuple[Allocation, np.ndarray]":
        """Solve P2(t); also return the reduced solution vector.

        Dispatches through the configured solver backend
        (``config.backend``; :mod:`repro.solvers.backends`).  The
        ``sequential`` default runs :meth:`_solve_reduced_coupled`
        directly.

        ``warm`` may be the previous slot's reduced solution: decisions
        change slowly, so blending it with the interior candidate gives
        a strictly interior near-optimal start and the barrier path can
        begin at a larger ``tau`` (~25 % fewer Newton steps, measured;
        results identical to solver tolerance).

        ``probe`` is an optional
        :class:`~repro.engine.stats.StatsProbe`-shaped recorder (any
        object with ``record_solve``); when given, the solve's backend,
        Newton iteration count and warm-start outcome are recorded.

        With a persistent cache active (``--cache DIR``;
        :mod:`repro.cache`) the solve is memoized on its *exact*
        inputs: a hit replays the stored decision — byte-identical to
        re-solving, because backends are deterministic — with zero
        Newton iterations, and a miss stores the freshly solved result
        for later runs.  A cache hit is recorded as a warm-start hit
        (it is the warmest possible start: the optimum itself).
        """
        cache = self.cache
        if cache is None:
            return self.backend.solve(
                self._backend_handle,
                workload,
                tier2_price,
                link_price,
                previous,
                warm,
                probe=probe,
            )
        key = cache_fingerprint.solve_key(
            self._structure_fp, workload, tier2_price, link_price, previous, warm
        )
        cached = cache.get_solve(key)
        if cached is not None:
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter(
                    "subproblem_warm_starts_total",
                    help="warm-start outcomes per subproblem solve",
                    outcome="hit",
                ).inc()
            if probe is not None:
                probe.record_solve(
                    backend="cache",
                    newton_iters=0,
                    warm_attempted=True,
                    warm_used=True,
                )
            return cached
        alloc, v = self.backend.solve(
            self._backend_handle,
            workload,
            tier2_price,
            link_price,
            previous,
            warm,
            probe=probe,
        )
        cache.put_solve(key, alloc, v)
        return alloc, v

    def _solve_reduced_coupled(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Allocation,
        warm: "np.ndarray | None" = None,
        probe=None,
    ) -> "tuple[Allocation, np.ndarray]":
        """The reference path: one coupled barrier solve over all clouds.

        This is both the ``sequential`` backend's implementation and
        the fallback every other backend routes structurally surprising
        slots through.
        """
        prog = self.build(workload, tier2_price, link_price, previous)
        cand = self._interior_candidate(prog, workload)
        v0 = cand
        options = self.config.solver
        warm_attempted = warm is not None and cand is not None
        warm_used = False
        if warm_attempted:
            blend = 0.9 * warm + 0.1 * cand
            if prog.A.shape[0]:
                slack = prog.b - prog.A @ blend
                interior = slack.size == 0 or float(slack.min()) > 1e-12
            else:  # pragma: no cover - subproblems always have rows
                interior = True
            if (
                interior
                and np.all(blend - prog.lb > 0)
                and np.all(prog.ub - blend > 0)
            ):
                v0 = blend
                warm_used = True
                if options.backend == "barrier":
                    options = replace(options, barrier_t0=max(options.barrier_t0, 1e3))
        reg = obs_metrics.active()
        if reg is not None:
            outcome = (
                "cold" if warm is None else ("hit" if warm_used else "miss")
            )
            reg.counter(
                "subproblem_warm_starts_total",
                help="warm-start outcomes per subproblem solve",
                outcome=outcome,
            ).inc()
        with obs_tracing.span("subproblem.solve") as span:
            v = prog.solve(v0=v0, options=options)
            span.set(
                backend=prog.last_info.backend,
                warm_attempted=warm_attempted,
                warm_used=warm_used,
                fallback=prog.last_info.fallback,
                newton_iters=prog.last_info.newton_iters,
            )
        if probe is not None:
            info = prog.last_info
            probe.record_solve(
                backend=info.backend,
                newton_iters=info.newton_iters,
                warm_attempted=warm_attempted,
                warm_used=warm_used,
                fallback=info.fallback,
            )
        return self.split(v, workload), v

    def split(self, v: np.ndarray, workload: np.ndarray) -> Allocation:
        """Map a reduced solution back to edge-space ``(x, y, s)``.

        ``x_e = s_e + share_e * (X_i - sum_{e' in J_i} s_{e'})`` with
        shares proportional to ``s`` (uniform when all ``s`` are zero
        for the cloud).  Any split is equivalent for cost, feasibility
        and the algorithm's future decisions.
        """
        net = self.network
        X = np.maximum(v[self.sl_X], 0.0)
        y = np.maximum(v[self.sl_y], 0.0)
        s = np.maximum(v[self.sl_s], 0.0)
        s = np.minimum(s, y)  # tidy round-off: s <= y exactly

        S_i = net.aggregate_tier2(s)
        slack = np.maximum(X - S_i, 0.0)  # per-cloud spare allocation
        # Shares: proportional to s when the cloud serves anything,
        # otherwise uniform over the cloud's edges.  A cloud with no
        # SLA edges has counts == 0 and S_i == 0; clamp the denominator
        # so it never divides by zero (such a cloud's slack has no edge
        # to land on and is simply dropped).
        counts = net.aggregate_tier2(np.ones(net.n_edges))
        denom = np.maximum(np.where(S_i > 0, S_i, counts), 1e-300)
        base = np.where(S_i[net.edge_i] > 0, s, 1.0)
        share = base / denom[net.edge_i]
        x = s + slack[net.edge_i] * share
        return Allocation(x=x, y=y, s=s)
