"""Single-resource special case (Section III-C) and adversarial constructions.

The simplified problem (4) is

.. math::

    \\min \\; \\sum_t a_t x_t + b \\sum_t [x_t - x_{t-1}]^+
    \\quad \\text{s.t.} \\quad \\lambda_t \\le x_t \\le C, \\; x_0 = 0.

Its regularized subproblem has the closed-form constraint-free
minimizer (eq. (6))

.. math::

    \\bar x_t = (1 + C/\\varepsilon)^{-a_t/b} (x_{t-1} + \\varepsilon)
        - \\varepsilon,

so the online decision is ``x_t = max(lambda_t, bar_x_t)`` — follow
the workload on the way up, exponential decay on the way down.  This
module implements that recursion exactly (no convex solver needed),
plus the greedy / offline / FHC / RHC counterparts used by Lemma 2 and
Theorems 2-3, and the V-shaped adversarial workload of Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.lp import LinearProgram
from repro.util.validation import check_nonnegative


@dataclass
class SingleResourceProblem:
    """Inputs of the simplified problem (4).

    Attributes
    ----------
    workload:
        ``(T,)`` array of per-slot demand ``lambda_t`` (each ``<= capacity``).
    prices:
        ``(T,)`` array of allocation prices ``a_t > 0`` (or a scalar).
    capacity:
        The resource capacity ``C``.
    recon_price:
        The reconfiguration price ``b >= 0``.
    """

    workload: np.ndarray
    prices: np.ndarray
    capacity: float
    recon_price: float

    def __post_init__(self) -> None:
        self.workload = check_nonnegative("workload", np.atleast_1d(self.workload))
        T = self.workload.shape[0]
        self.prices = np.broadcast_to(
            check_nonnegative("prices", np.atleast_1d(self.prices)), (T,)
        ).copy()
        if not (self.capacity > 0):
            raise ValueError("capacity must be > 0")
        if self.recon_price < 0:
            raise ValueError("recon_price must be >= 0")
        if np.any(self.workload > self.capacity * (1 + 1e-12)):
            raise ValueError("workload exceeds capacity")

    @property
    def horizon(self) -> int:
        return self.workload.shape[0]

    def cost(self, x: np.ndarray, x0: float = 0.0) -> float:
        """Total allocation + reconfiguration cost of a decision sequence."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        prev = np.concatenate([[x0], x[:-1]])
        return float(
            self.prices @ x + self.recon_price * np.maximum(x - prev, 0.0).sum()
        )

    def is_feasible(self, x: np.ndarray, atol: float = 1e-9) -> bool:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return bool(
            np.all(x >= self.workload - atol) and np.all(x <= self.capacity + atol)
        )


# ----------------------------------------------------------------------
# Algorithms
# ----------------------------------------------------------------------
def single_online_decay(
    problem: SingleResourceProblem, epsilon: float, x0: float = 0.0
) -> np.ndarray:
    """The paper's online algorithm via the exact recursion (6).

    ``x_t = max(lambda_t, (1 + C/eps)^(-a_t/b) (x_{t-1} + eps) - eps)``,
    clipped into ``[0, C]``.  With ``b = 0`` the decay is instantaneous
    and the algorithm reduces to greedy workload-following.
    """
    if not (epsilon > 0):
        raise ValueError("epsilon must be > 0")
    lam, a = problem.workload, problem.prices
    C, b = problem.capacity, problem.recon_price
    T = lam.shape[0]
    x = np.empty(T)
    prev = float(x0)
    base = 1.0 + C / epsilon
    for t in range(T):
        if b > 0:
            # For b near underflow the exponent overflows to -inf and
            # the decay factor correctly collapses to 0 (greedy limit).
            with np.errstate(over="ignore"):
                decay = base ** (-a[t] / b)
            x_bar = decay * (prev + epsilon) - epsilon
        else:
            x_bar = 0.0
        prev = min(max(lam[t], x_bar, 0.0), C)
        x[t] = prev
    return x


def single_greedy(problem: SingleResourceProblem) -> np.ndarray:
    """One-shot optimization per slot: always ``x_t = lambda_t``.

    (For any ``a_t > 0`` the one-shot slice is minimized by allocating
    exactly the workload — reconfiguration between slots is ignored.)
    """
    return problem.workload.copy()


def single_offline_optimal(
    problem: SingleResourceProblem,
    x0: float = 0.0,
    terminal: "float | None" = None,
) -> tuple[np.ndarray, float]:
    """Offline optimum of (4) via LP; returns ``(x, cost)``.

    ``terminal`` optionally pins a final state whose reconfiguration
    from ``x_{T-1}`` is also charged (used by the windowed algorithms).
    """
    T = problem.horizon
    lp = LinearProgram()
    lp.add_block(
        "x", T, lb=problem.workload, ub=problem.capacity, cost=problem.prices
    )
    lp.add_block("u", T, lb=0.0, cost=problem.recon_price)
    # u_t >= x_t - x_{t-1}  <=>  x_t - x_{t-1} - u_t <= 0.
    import scipy.sparse as sp

    eye = sp.identity(T, format="csr")
    shift = sp.diags([np.ones(T - 1)], [-1], shape=(T, T), format="csr")
    rhs = np.zeros(T)
    rhs[0] = -x0  # x_1 - x0 - u_1 <= 0
    lp.add_rows("<=", rhs, x=eye - shift, u=-eye)
    if terminal is not None:
        lp.add_block("u_term", 1, lb=0.0, cost=problem.recon_price)
        # u_term >= terminal - x_{T-1}  <=>  -x_{T-1} - u_term <= -terminal.
        last = sp.csr_matrix(([-1.0], ([0], [T - 1])), shape=(1, T))
        lp.add_rows("<=", np.array([-terminal]), x=last, u_term=-sp.identity(1))
    sol = lp.solve()
    return sol["x"].copy(), float(sol.objective)


def single_fhc(
    problem: SingleResourceProblem, window: int, x0: float = 0.0
) -> np.ndarray:
    """Fixed Horizon Control on the scalar problem (exact predictions).

    Solves the windowed problem at ``t = 0, w, 2w, ...`` and applies
    the whole block.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    T = problem.horizon
    x = np.empty(T)
    prev = x0
    for start in range(0, T, window):
        stop = min(start + window, T)
        sub = SingleResourceProblem(
            problem.workload[start:stop],
            problem.prices[start:stop],
            problem.capacity,
            problem.recon_price,
        )
        xs, _ = single_offline_optimal(sub, x0=prev)
        x[start:stop] = xs
        prev = xs[-1]
    return x


def single_rhc(
    problem: SingleResourceProblem, window: int, x0: float = 0.0
) -> np.ndarray:
    """Receding Horizon Control on the scalar problem (exact predictions).

    At every ``t`` solves over ``[t, t+w)`` and applies only slot ``t``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    T = problem.horizon
    x = np.empty(T)
    prev = x0
    for t in range(T):
        stop = min(t + window, T)
        sub = SingleResourceProblem(
            problem.workload[t:stop],
            problem.prices[t:stop],
            problem.capacity,
            problem.recon_price,
        )
        xs, _ = single_offline_optimal(sub, x0=prev)
        prev = float(xs[0])
        x[t] = prev
    return x


# ----------------------------------------------------------------------
# Adversarial constructions (Lemma 2, Theorems 2-3)
# ----------------------------------------------------------------------
def vee_workload(
    peak: float,
    valley: float,
    down_length: int,
    up_length: int,
) -> np.ndarray:
    """The V-shaped workload of Lemma 2.

    Strictly decreases from ``peak`` to ``valley`` over ``down_length``
    slots, then strictly increases back to ``peak`` over ``up_length``
    slots.  Greedy control re-buys the entire ramp on the way up and
    its cost ratio vs the offline optimum grows without bound as the
    reconfiguration price grows (Theorem 2); FHC/RHC suffer the same
    fate whenever the prediction window is shorter than the ramp
    (Theorem 3).
    """
    if not (0 <= valley < peak):
        raise ValueError("need 0 <= valley < peak")
    if down_length < 2 or up_length < 2:
        raise ValueError("each ramp needs at least 2 slots")
    down = np.linspace(peak, valley, down_length)
    up = np.linspace(valley, peak, up_length)
    return np.concatenate([down, up[1:]])
